//! Scheduler comparison: one panel of the paper's Figure 5 — throughput of
//! RTS vs TFA vs TFA+Backoff on a chosen benchmark at high contention, as
//! the node count grows.
//!
//! ```text
//! cargo run --release --example scheduler_comparison [benchmark] [max_nodes]
//! ```

use closed_nesting_dstm::harness::runner::{run_cells, Cell};
use closed_nesting_dstm::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let benchmark = args
        .get(1)
        .and_then(|s| Benchmark::from_name(s))
        .unwrap_or(Benchmark::Dht);
    let max_nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(30);

    let schedulers = [
        SchedulerKind::Rts,
        SchedulerKind::Tfa,
        SchedulerKind::TfaBackoff,
    ];
    let node_counts: Vec<usize> = (10..=max_nodes).step_by(10).collect();

    println!(
        "{} at high contention (10% reads), {} txns/node",
        benchmark.label(),
        15
    );
    println!(
        "{:>6}  {:>10}  {:>10}  {:>12}",
        "nodes", "RTS", "TFA", "TFA+Backoff"
    );

    let mut cells = Vec::new();
    for &n in &node_counts {
        for s in schedulers {
            cells.push(Cell::new(benchmark, s, n, 0.1).with_txns(15));
        }
    }
    let results = run_cells(cells, None);

    for (row, &n) in node_counts.iter().enumerate() {
        let base = row * schedulers.len();
        let tputs: Vec<f64> = (0..3).map(|i| results[base + i].throughput()).collect();
        println!(
            "{n:>6}  {:>10.2}  {:>10.2}  {:>12.2}   (RTS {:+.0}% vs TFA)",
            tputs[0],
            tputs[1],
            tputs[2],
            100.0 * (tputs[0] / tputs[1] - 1.0)
        );
    }
}
