//! Quickstart: build an 8-node D-STM deployment, run the Bank benchmark
//! under the RTS scheduler, and inspect the run metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use closed_nesting_dstm::prelude::*;

fn main() {
    // 1. The workload: the Bank benchmark (nested withdraw/deposit
    //    transfers + audits), 10 transactions per node, 90% reads.
    let params = WorkloadParams {
        nodes: 8,
        txns_per_node: 10,
        read_ratio: 0.9,
        ..Default::default()
    };

    // 2. The network: the paper's static testbed — every pair of nodes gets
    //    a fixed delay drawn uniformly from 1..=50 ms.
    let mut rng = SimRng::new(2026);
    let topo = Topology::uniform_random(params.nodes, 1, 50, &mut rng);

    // 3. The D-STM configuration: RTS scheduling with the Bank peak tuning.
    let (threshold, slack) = Benchmark::Bank.rts_tuning();
    let mut cfg = DstmConfig::default().with_scheduler(SchedulerKind::Rts);
    cfg.cl_threshold = threshold;
    cfg.queue_deadline_percent = slack;

    // 4. Build and run to completion (deterministic: same seed, same run).
    let mut system = SystemBuilder::new(topo, cfg)
        .seed(2026)
        .build(Benchmark::Bank.generate(&params));
    let metrics = system.run_default();
    assert!(system.all_done(), "workload must drain");

    // 5. Report.
    let m = &metrics.merged;
    println!("== quickstart: Bank on 8 nodes under RTS ==");
    println!("virtual time elapsed   {}", metrics.elapsed);
    println!("throughput             {:.1} txns/s", metrics.throughput());
    println!("commits                {}", m.commits);
    println!("nested commits         {}", m.nested_commits);
    println!(
        "aborts (fv/cv/sched/qt) {}/{}/{}/{}",
        m.aborts_forward_validation,
        m.aborts_commit_validation,
        m.aborts_scheduler,
        m.aborts_queue_timeout
    );
    println!(
        "nested aborts own/parent {}/{} (rate {:.2})",
        m.nested_aborts_own,
        m.nested_aborts_parent,
        metrics.nested_abort_rate()
    );
    println!("RTS enqueues / served  {}/{}", m.enqueued, m.queue_served);
    println!("protocol messages      {}", metrics.messages);
    println!("mean commit latency    {:.1} ms", m.commit_latency.mean());

    // 6. The whole point of transactions: the money is still all there.
    let state = system.object_state();
    let total = closed_nesting_dstm::benchmarks::bank::total_balance(&state);
    let expected = closed_nesting_dstm::benchmarks::bank::expected_total(&params);
    assert_eq!(total, expected, "serializability violated!");
    println!("bank invariant         OK ({total} == {expected})");
}
