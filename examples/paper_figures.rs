//! Regenerate a compact version of the paper's whole evaluation in one go:
//! Table I, one Figure-4/5 panel per benchmark, and the Figure-6 speedup
//! summary — at a reduced scale suitable for a laptop run.
//!
//! For the full-scale sweeps use the bench targets
//! (`cargo bench -p dstm-bench --bench fig4_throughput_low` etc.).
//!
//! ```text
//! cargo run --release --example paper_figures
//! ```

use closed_nesting_dstm::harness::experiments::{speedup, table1, Scale};

fn main() {
    let scale = Scale {
        node_counts: vec![10, 20, 30],
        table1_nodes: 20,
        txns_per_node: 12,
    };

    println!(
        "=== Table I (reduced scale: {} nodes) ===\n",
        scale.table1_nodes
    );
    let t1 = table1::run(&scale, None);
    println!("{}", t1.render());
    println!(
        "mean nested-abort-rate reduction under RTS: {:.0}% (paper ≈60%)\n",
        100.0 * t1.mean_reduction()
    );

    println!("=== Figures 4 & 5 (reduced scale) ===\n");
    let (low, high, summary) = speedup::run(&scale, None);
    println!("{}", low.render());
    println!("{}", high.render());

    println!("=== Figure 6 — speedup summary ===\n");
    println!("{}", summary.render());
    println!(
        "speedup range {:.2}x – {:.2}x (paper: up to 1.53x low / 1.88x high contention)",
        summary.min_speedup(),
        summary.max_speedup()
    );
}
