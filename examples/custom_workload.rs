//! Custom workload: implement [`TxProgram`] by hand and run it on the
//! D-STM — a tiny replicated "leaderboard" where each transaction reads a
//! player's score in a closed-nested child, then bumps the global top score
//! at parent level if the player beat it.
//!
//! Demonstrates the public API a downstream user targets: resumable
//! transaction programs, object payloads, and system assembly.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use closed_nesting_dstm::prelude::*;

const TOP_SCORE: ObjectId = ObjectId(1);
const PLAYER_BASE: u64 = 100;
const PLAYERS: u64 = 12;

fn player_oid(i: u64) -> ObjectId {
    ObjectId(PLAYER_BASE + i)
}

/// One "report a new score" transaction.
#[derive(Clone)]
struct ReportScore {
    player: u64,
    new_score: i64,
    st: St,
    seen_player_score: i64,
    seen_top: i64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum St {
    Begin,
    ChildOpened,
    GotPlayer,
    PlayerWritten,
    ChildClosed,
    GotTop,
    TopWritten,
    Done,
}

impl ReportScore {
    fn new(player: u64, new_score: i64) -> Self {
        ReportScore {
            player,
            new_score,
            st: St::Begin,
            seen_player_score: 0,
            seen_top: 0,
        }
    }
}

impl TxProgram for ReportScore {
    fn kind(&self) -> TxKind {
        TxKind(100)
    }

    fn label(&self) -> &'static str {
        "report-score"
    }

    fn clone_box(&self) -> BoxedProgram {
        Box::new(self.clone())
    }

    fn step(&mut self, input: StepInput<'_>) -> StepOutput {
        match self.st {
            St::Begin => {
                // Update the player's record inside a closed-nested child:
                // if it conflicts, only the child retries.
                self.st = St::ChildOpened;
                StepOutput::OpenNested(TxKind(101))
            }
            St::ChildOpened => {
                self.st = St::GotPlayer;
                StepOutput::Acquire(player_oid(self.player), AccessMode::Write)
            }
            St::GotPlayer => {
                let StepInput::Value(Payload::Scalar(s)) = input else {
                    panic!("player record must be a scalar")
                };
                self.seen_player_score = *s;
                self.st = St::PlayerWritten;
                StepOutput::WriteLocal(
                    player_oid(self.player),
                    Payload::Scalar(self.new_score.max(self.seen_player_score)),
                )
            }
            St::PlayerWritten => {
                self.st = St::ChildClosed;
                StepOutput::CloseNested
            }
            St::ChildClosed => {
                // Parent-level: check the global top score.
                self.st = St::GotTop;
                StepOutput::Acquire(TOP_SCORE, AccessMode::Write)
            }
            St::GotTop => {
                let StepInput::Value(Payload::Scalar(top)) = input else {
                    panic!("top score must be a scalar")
                };
                self.seen_top = *top;
                if self.new_score > self.seen_top {
                    self.st = St::TopWritten;
                    StepOutput::WriteLocal(TOP_SCORE, Payload::Scalar(self.new_score))
                } else {
                    self.st = St::Done;
                    StepOutput::Finish
                }
            }
            St::TopWritten | St::Done => {
                self.st = St::Done;
                StepOutput::Finish
            }
        }
    }
}

fn main() {
    let nodes = 6;
    let mut rng = SimRng::new(7);
    let topo = Topology::uniform_random(nodes, 1, 30, &mut rng);
    let cfg = DstmConfig::default().with_scheduler(SchedulerKind::Rts);

    // Objects: the top-score cell plus one record per player, all zeroed.
    let mut objects = vec![(TOP_SCORE, Payload::Scalar(0))];
    for i in 0..PLAYERS {
        objects.push((player_oid(i), Payload::Scalar(0)));
    }

    // Workload: every node reports a few random scores.
    let mut expected_top = 0i64;
    let mut programs: Vec<Vec<BoxedProgram>> = Vec::new();
    for node in 0..nodes {
        let mut queue: Vec<BoxedProgram> = Vec::new();
        for k in 0..5 {
            let player = rng.below(PLAYERS);
            let score = (10 * (node as i64 + 1) + k as i64) * 7 % 301;
            expected_top = expected_top.max(score);
            queue.push(Box::new(ReportScore::new(player, score)));
        }
        programs.push(queue);
    }

    let mut system = SystemBuilder::new(topo, cfg)
        .seed(7)
        .build(WorkloadSource { objects, programs });
    let metrics = system.run_default();
    assert!(system.all_done());

    let state = system.object_state();
    let top = state[&TOP_SCORE].0.as_scalar();
    println!("== custom workload: distributed leaderboard ==");
    println!("commits      {}", metrics.merged.commits);
    println!("aborts       {}", metrics.merged.total_aborts());
    println!("top score    {top} (expected {expected_top})");
    assert_eq!(top, expected_top, "lost update on the leaderboard!");

    let best_player = (0..PLAYERS)
        .map(|i| state[&player_oid(i)].0.as_scalar())
        .max()
        .unwrap();
    assert_eq!(best_player, expected_top);
    println!("per-player maxima consistent: OK");
}
