//! # closed-nesting-dstm
//!
//! A from-scratch Rust reproduction of **"Scheduling Closed-Nested
//! Transactions in Distributed Transactional Memory"** (Kim & Ravindran,
//! IPDPS 2012): the **Reactive Transactional Scheduler (RTS)** and the
//! entire dataflow D-STM stack it runs on — a HyFlow-style framework with
//! the TFA protocol, closed nesting, a cache-coherence protocol with
//! migrating objects, the paper's six benchmarks, and a deterministic
//! discrete-event network simulator standing in for the original 80-node
//! testbed.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] (`dstm-sim`) | deterministic discrete-event kernel: virtual time, actor world, RNG streams |
//! | [`net`] (`dstm-net`) | metric-space topologies, 1–50 ms static delay matrices |
//! | [`hyflow`] (`hyflow-dstm`) | the D-STM substrate: versioned objects, ownership migration, TFA, closed nesting, transaction executor |
//! | [`rts`] (`rts-core`) | the paper's contribution: contention levels, scheduling table, conflict policies (TFA / TFA+Backoff / RTS), stats table, makespan analysis |
//! | [`benchmarks`] (`dstm-benchmarks`) | Vacation, Bank, Linked-List, BST, RB-Tree, DHT |
//! | [`harness`] (`dstm-harness`) | experiment sweeps regenerating every table and figure |
//!
//! ## Quickstart
//!
//! ```
//! use closed_nesting_dstm::prelude::*;
//!
//! // A 4-node system running the Bank benchmark under RTS.
//! let params = WorkloadParams { nodes: 4, txns_per_node: 5, ..Default::default() };
//! let mut rng = SimRng::new(42);
//! let topo = Topology::uniform_random(4, 1, 50, &mut rng);
//! let cfg = DstmConfig::default().with_scheduler(SchedulerKind::Rts);
//! let mut system = SystemBuilder::new(topo, cfg)
//!     .seed(42)
//!     .build(Benchmark::Bank.generate(&params));
//! let metrics = system.run_default();
//! assert!(system.all_done());
//! assert_eq!(metrics.merged.commits, 20);
//! ```

pub use dstm_benchmarks as benchmarks;
pub use dstm_harness as harness;
pub use dstm_net as net;
pub use dstm_sim as sim;
pub use hyflow_dstm as hyflow;
pub use rts_core as rts;

/// The most common imports for building and running systems.
pub mod prelude {
    pub use dstm_benchmarks::{Benchmark, WorkloadParams};
    pub use dstm_net::Topology;
    pub use dstm_sim::{SimDuration, SimRng, SimTime};
    pub use hyflow_dstm::{
        AccessMode, BoxedProgram, ConflictScope, DstmConfig, NestingMode, PartitionStrategy,
        Payload, RunMetrics, StepInput, StepOutput, System, SystemBuilder, TxProgram,
        WorkloadSource,
    };
    pub use rts_core::{ObjectId, SchedulerKind, TxId, TxKind};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_builds_a_system() {
        let params = WorkloadParams {
            nodes: 3,
            txns_per_node: 2,
            ..Default::default()
        };
        let mut rng = SimRng::new(1);
        let topo = Topology::uniform_random(3, 1, 10, &mut rng);
        let cfg = DstmConfig::default().with_scheduler(SchedulerKind::Tfa);
        let mut system = SystemBuilder::new(topo, cfg)
            .seed(1)
            .build(Benchmark::Dht.generate(&params));
        let m = system.run_default();
        assert!(system.all_done());
        assert_eq!(m.merged.commits, 6);
    }
}
