//! Differential tests for the conservative sharded executor.
//!
//! `GenericWorld::run_sharded` (surfaced as `Cell::with_shards` /
//! `--shards`) is a pure host-parallelism knob: a sharded run must be
//! **bit-identical** to the serial run — same commits/aborts, same Table-I
//! nested splits, same message counts, same latency histograms, same
//! virtual end time, and the same protocol trace byte-for-byte — for every
//! shard count, every scheduler, every partitioner (round-robin and the
//! locality-greedy one behind `--partition`), and with tracing on or off.
//! The per-shard-pair lookahead matrix and the node→shard assignment are
//! pure performance knobs; neither may leak into simulated results. Same
//! bar the queue-backend and data-layout refactors had to clear
//! (`layout_differential.rs`), extended to parallel execution.

use closed_nesting_dstm::harness::runner::{run_cell, run_cell_traced, Cell, TopologySpec};
use closed_nesting_dstm::prelude::*;
use proptest::prelude::*;
use rts_core::SchedulerKind;

const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Rts,
    SchedulerKind::Tfa,
    SchedulerKind::TfaBackoff,
];

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

const PARTITIONS: [PartitionStrategy; 2] =
    [PartitionStrategy::RoundRobin, PartitionStrategy::Locality];

/// FNV-1a over a byte string (stable, dependency-free).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn small_cell(benchmark: Benchmark, scheduler: SchedulerKind, seed: u64) -> Cell {
    let mut cell = Cell::new(benchmark, scheduler, 6, 0.5)
        .with_txns(5)
        .with_seed(seed);
    cell.params.objects_per_node = 4;
    cell
}

/// Every observable outcome of a traced run, trace hashed in its lossless
/// JSONL form.
fn traced_digest(cell: Cell) -> String {
    let (r, trace) = run_cell_traced(cell);
    assert!(r.completed, "cell stalled");
    let m = &r.metrics;
    format!(
        "commits={} aborts={} nested_commits={} nested_own={} nested_parent={} \
         messages={} elapsed={} ended_at={} trace_records={} trace_fnv={:016x}",
        m.merged.commits,
        m.merged.total_aborts(),
        m.merged.nested_commits,
        m.merged.nested_aborts_own,
        m.merged.nested_aborts_parent,
        m.messages,
        m.elapsed.as_nanos(),
        m.ended_at.as_nanos(),
        trace.records.len(),
        fnv1a(trace.to_jsonl().as_bytes()),
    )
}

#[test]
fn sharded_traced_runs_match_serial_across_schedulers() {
    for benchmark in [Benchmark::Bank, Benchmark::Vacation] {
        for scheduler in SCHEDULERS {
            let serial = traced_digest(small_cell(benchmark, scheduler, 7));
            for shards in SHARD_COUNTS {
                for partition in PARTITIONS {
                    let sharded = traced_digest(
                        small_cell(benchmark, scheduler, 7)
                            .with_shards(shards)
                            .with_partition(partition),
                    );
                    assert_eq!(
                        serial,
                        sharded,
                        "{}/{} diverged at {shards} shards under {}",
                        benchmark.label(),
                        scheduler.label(),
                        partition.label()
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_untraced_runs_match_serial_including_histograms() {
    // Whole-struct comparison: NodeMetrics PartialEq covers every counter
    // *and* every latency histogram bucket.
    let serial = run_cell(small_cell(Benchmark::Bank, SchedulerKind::Rts, 11));
    assert!(serial.completed);
    for shards in SHARD_COUNTS {
        for partition in PARTITIONS {
            let sharded = run_cell(
                small_cell(Benchmark::Bank, SchedulerKind::Rts, 11)
                    .with_shards(shards)
                    .with_partition(partition),
            );
            assert!(
                sharded.completed,
                "sharded({shards}, {}) stalled",
                partition.label()
            );
            assert_eq!(serial.metrics.merged, sharded.metrics.merged);
            assert_eq!(serial.metrics.messages, sharded.metrics.messages);
            assert_eq!(serial.metrics.elapsed, sharded.metrics.elapsed);
            assert_eq!(serial.metrics.ended_at, sharded.metrics.ended_at);
        }
    }
}

#[test]
fn sharding_composes_with_queue_backend_and_topology() {
    // The orthogonal execution knobs — shard count, partitioner, queue
    // backend, network representation — must all leave the outcome
    // untouched. The hashed topology matters here: its lookahead matrix is
    // the generator-floor lower bound, not the exact pairwise minimum.
    let mk = |shards, partition, backend| {
        let mut c = small_cell(Benchmark::Bank, SchedulerKind::Rts, 3)
            .with_queue_backend(backend)
            .with_topology(TopologySpec::HashedRandom {
                min_ms: 1,
                max_ms: 50,
            })
            .with_shards(shards)
            .with_partition(partition);
        c.params.objects_per_node = 3;
        c
    };
    let want = traced_digest(mk(
        1,
        PartitionStrategy::RoundRobin,
        hyflow_dstm::QueueBackend::BinaryHeap,
    ));
    for backend in [
        hyflow_dstm::QueueBackend::BinaryHeap,
        hyflow_dstm::QueueBackend::Calendar,
    ] {
        for shards in [2, 4] {
            for partition in PARTITIONS {
                assert_eq!(
                    want,
                    traced_digest(mk(shards, partition, backend)),
                    "diverged at {shards} shards / {} on {backend:?}",
                    partition.label()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// Randomized sweep of the whole determinism claim: any seed, any
    /// scheduler, any shard count, either partitioner, tracing on or off —
    /// sharded equals serial.
    #[test]
    fn serial_vs_sharded_digest_equality(
        seed in 1u64..10_000,
        sched in 0usize..3,
        shards in 2usize..=8,
        partition in 0usize..2,
        traced in 0u8..2,
    ) {
        let traced = traced == 1;
        let partition = PARTITIONS[partition];
        let mk = |shards: usize| {
            let mut c = Cell::new(Benchmark::Bank, SCHEDULERS[sched], 5, 0.5)
                .with_txns(4)
                .with_seed(seed)
                .with_shards(shards)
                .with_partition(partition);
            c.params.objects_per_node = 3;
            c
        };
        if traced {
            prop_assert_eq!(traced_digest(mk(1)), traced_digest(mk(shards)));
        } else {
            let serial = run_cell(mk(1));
            let sharded = run_cell(mk(shards));
            prop_assert!(serial.completed && sharded.completed);
            prop_assert_eq!(&serial.metrics.merged, &sharded.metrics.merged);
            prop_assert_eq!(serial.metrics.messages, sharded.metrics.messages);
            prop_assert_eq!(serial.metrics.ended_at, sharded.metrics.ended_at);
        }
    }

    /// Regression guard on the event-order contract the executor rests on:
    /// `EventKey::compose` is a total order, lexicographic on
    /// `(time, issuer, per-actor seq)` — stable under any packing change.
    #[test]
    fn event_key_order_is_total_and_stable(
        ta in 0u64..1_000, ia in 0u32..512, sa in 0u64..1_000,
        tb in 0u64..1_000, ib in 0u32..512, sb in 0u64..1_000,
    ) {
        use dstm_sim::{EventKey, SimTime};
        let ka = EventKey::compose(SimTime(ta), ia, sa);
        let kb = EventKey::compose(SimTime(tb), ib, sb);
        // Exactly the lexicographic order on the triple.
        prop_assert_eq!(ka.cmp(&kb), (ta, ia, sa).cmp(&(tb, ib, sb)));
        // Antisymmetric + roundtrip: distinct triples give distinct keys.
        prop_assert_eq!(kb.cmp(&ka), ka.cmp(&kb).reverse());
        prop_assert_eq!((ka.time, ka.issuer(), ka.local_seq()), (SimTime(ta), ia, sa));
    }
}
