//! End-to-end serializability checks across the whole stack: every
//! benchmark's application-level invariant must hold on the committed state
//! under every scheduler, on a real multi-node run with contention.

use closed_nesting_dstm::benchmarks::{bank, bst, dht, list, rbtree, vacation};
use closed_nesting_dstm::harness::runner::Cell;
use closed_nesting_dstm::prelude::*;

const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Rts,
    SchedulerKind::Tfa,
    SchedulerKind::TfaBackoff,
];

fn run_and_state(
    benchmark: Benchmark,
    scheduler: SchedulerKind,
    seed: u64,
) -> (
    std::collections::HashMap<ObjectId, (Payload, u64)>,
    WorkloadParams,
    u64,
) {
    let mut cell = Cell::new(benchmark, scheduler, 6, 0.3)
        .with_txns(8)
        .with_seed(seed);
    cell.params.objects_per_node = 5;
    let params = cell.params.clone();
    let mut system = closed_nesting_dstm::harness::runner::build_system(&cell);
    let metrics = system.run_default();
    assert!(
        system.all_done(),
        "{} under {scheduler:?} stalled",
        benchmark.label()
    );
    assert_eq!(
        metrics.merged.commits,
        48,
        "{} under {scheduler:?} lost commits",
        benchmark.label()
    );
    (system.object_state(), params, metrics.merged.commits)
}

#[test]
fn bank_conserves_money_under_all_schedulers() {
    for s in SCHEDULERS {
        let (state, params, _) = run_and_state(Benchmark::Bank, s, 11);
        assert_eq!(
            bank::total_balance(&state),
            bank::expected_total(&params),
            "money leaked under {s:?}"
        );
    }
}

#[test]
fn vacation_billing_matches_inventory() {
    for s in SCHEDULERS {
        let (state, params, _) = run_and_state(Benchmark::Vacation, s, 12);
        assert!(
            vacation::billing_matches_inventory(&state, &params),
            "billing/inventory mismatch under {s:?}"
        );
    }
}

#[test]
fn linked_list_stays_sorted_and_acyclic() {
    for s in SCHEDULERS {
        let (state, _, _) = run_and_state(Benchmark::LinkedList, s, 13);
        let values = list::collect_list(&state);
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "list corrupted under {s:?}: {values:?}"
        );
    }
}

#[test]
fn bst_keeps_search_order() {
    for s in SCHEDULERS {
        let (state, _, _) = run_and_state(Benchmark::Bst, s, 14);
        let values = bst::collect_inorder(&state);
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "BST corrupted under {s:?}"
        );
    }
}

#[test]
fn rb_tree_keeps_red_black_invariants() {
    for s in SCHEDULERS {
        let (state, _, _) = run_and_state(Benchmark::RbTree, s, 15);
        rbtree::check_rb(&state).unwrap_or_else(|e| panic!("RB broken under {s:?}: {e}"));
    }
}

#[test]
fn dht_keys_stay_in_their_buckets() {
    for s in SCHEDULERS {
        let (state, params, _) = run_and_state(Benchmark::Dht, s, 16);
        dht::check_placement(&state, params.total_objects() as u64)
            .unwrap_or_else(|e| panic!("DHT broken under {s:?}: {e}"));
    }
}

#[test]
fn single_writable_copy_invariant() {
    // `object_state` panics internally if any object has two owners; make
    // that an explicit end-to-end check on a contended run.
    for s in SCHEDULERS {
        let (_state, _, commits) = run_and_state(Benchmark::Bank, s, 17);
        assert!(commits > 0);
    }
}
