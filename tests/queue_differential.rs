//! Differential property tests for the kernel's pending-event-set backends.
//!
//! The queue backend is a pure performance knob: for any sequence of pushes
//! and pops — including patterns that force the calendar queue to resize and
//! to fall back to its sparse far-future scan — [`BinaryHeapQueue`] and
//! [`CalendarQueue`] must emit the exact same events in the exact same order,
//! and a whole actor world driven through both (messages, timers, and timer
//! cancellations) must follow a bit-identical trajectory.

use closed_nesting_dstm::sim::{
    Actor, ActorId, BinaryHeapQueue, CalendarQueue, Ctx, EventKey, EventQueue, GenericWorld,
    Sequenced, SimDuration, SimTime, TimerToken,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Queue-level differential test
// ---------------------------------------------------------------------------

/// Interpret each op word as a push (with one of three time regimes) or a
/// pop, checking `peek_key` against every pop on the way, and return the full
/// popped sequence (drained at the end).
fn apply_ops<Q: EventQueue<u32>>(mut q: Q, ops: &[u64]) -> Vec<(EventKey, u32)> {
    let mut popped = Vec::new();
    let mut now = 0u64; // last popped time: pushes must not go into the past
    let mut seq = 0u64;
    for &op in ops {
        let kind = op % 8;
        let body = op / 8;
        if kind < 5 {
            // Three regimes: dense same-day (bucket collisions), spread
            // across the calendar year (rotation + resize), and far future
            // (the sparse global-min fallback).
            let off = match kind {
                0 | 1 => body % 10_000,
                2 | 3 => (body % 1_000) * 1_000_000,
                _ => 1_000_000_000_000 + (body % 1_000) * 7_919,
            };
            q.push(Sequenced::new(SimTime(now + off), seq, seq as u32));
            seq += 1;
        } else {
            let peeked = q.peek_key();
            match q.pop() {
                Some(ev) => {
                    assert_eq!(peeked, Some(ev.key), "peek_key disagreed with pop");
                    now = ev.key.time.0;
                    popped.push((ev.key, ev.payload));
                }
                None => assert_eq!(peeked, None),
            }
        }
    }
    while let Some(ev) = q.pop() {
        popped.push((ev.key, ev.payload));
    }
    popped
}

// ---------------------------------------------------------------------------
// World-level differential test
// ---------------------------------------------------------------------------

const CHAOS_ACTORS: u64 = 3;

/// An actor that randomly sends, arms timers, and cancels previously armed
/// timers, logging everything it observes. Budgets (`msg` counts down)
/// guarantee termination.
struct Chaos {
    tokens: Vec<TimerToken>,
    log: Vec<(u64, u32)>,
}

impl Chaos {
    fn new() -> Self {
        Chaos {
            tokens: Vec::new(),
            log: Vec::new(),
        }
    }
}

impl Actor for Chaos {
    type Msg = u32;
    type Timer = u32;

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u32>, _from: ActorId, msg: u32) {
        self.log.push((ctx.now().0, msg));
        if msg == 0 {
            return;
        }
        match ctx.rng().below(4) {
            0 => {
                let d = SimDuration::from_micros(ctx.rng().below(5_000));
                let token = ctx.set_timer(d, msg - 1);
                self.tokens.push(token);
            }
            1 => {
                if let Some(token) = self.tokens.pop() {
                    ctx.cancel_timer(token);
                }
                let to = ActorId(ctx.rng().below(CHAOS_ACTORS) as u32);
                let d = SimDuration::from_micros(1 + ctx.rng().below(2_000));
                ctx.send(to, msg - 1, d);
            }
            _ => {
                let to = ActorId(ctx.rng().below(CHAOS_ACTORS) as u32);
                let d = SimDuration::from_micros(1 + ctx.rng().below(2_000));
                ctx.send(to, msg - 1, d);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32, u32>, timer: u32) {
        self.log.push((ctx.now().0, 1_000_000 + timer));
        if timer > 0 {
            let to = ActorId(ctx.rng().below(CHAOS_ACTORS) as u32);
            let d = SimDuration::from_micros(1 + ctx.rng().below(3_000));
            ctx.send(to, timer - 1, d);
        }
    }
}

type ChaosEvent = closed_nesting_dstm::sim::KernelEvent<u32, u32>;

/// (per-actor logs, messages delivered, timers fired, final virtual time).
type ChaosOutcome = (Vec<Vec<(u64, u32)>>, u64, u64, u64);

fn run_chaos<Q: EventQueue<ChaosEvent>>(queue: Q, seed: u64, budget: u32) -> ChaosOutcome {
    let actors = (0..CHAOS_ACTORS).map(|_| Chaos::new()).collect();
    let mut w = GenericWorld::with_queue(actors, seed, queue);
    for i in 0..CHAOS_ACTORS {
        w.send_external(ActorId(i as u32), budget, SimDuration::from_micros(i * 100));
    }
    w.run();
    (
        w.actors().iter().map(|a| a.log.clone()).collect(),
        w.messages_delivered(),
        w.timers_fired(),
        w.now().0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn queue_backends_pop_identically(
        ops in proptest::collection::vec(0u64..1_000_000_000, 1..400),
    ) {
        let heap = apply_ops(BinaryHeapQueue::new(), &ops);
        let cal = apply_ops(CalendarQueue::new(), &ops);
        prop_assert_eq!(&heap, &cal);
        // And the total order is really a total order.
        for w in heap.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "pop order not strictly increasing");
        }
    }

    #[test]
    fn queue_backends_agree_from_tiny_calendars(
        ops in proptest::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        // Start the calendar deliberately mis-parameterized (2 buckets, 1 ns
        // days) so nearly every case exercises resize and re-estimation.
        let heap = apply_ops(BinaryHeapQueue::new(), &ops);
        let cal = apply_ops(CalendarQueue::with_params(2, 1), &ops);
        prop_assert_eq!(heap, cal);
    }

    #[test]
    fn chaos_worlds_are_bit_identical_across_backends(
        seed in 0u64..100_000,
        budget in 1u32..24,
    ) {
        let heap = run_chaos(BinaryHeapQueue::new(), seed, budget);
        let cal = run_chaos(CalendarQueue::new(), seed, budget);
        prop_assert_eq!(heap, cal);
    }
}
