//! End-to-end closed-nesting semantics: constructed multi-node scenarios
//! driving the real protocol stack through partial aborts.

use closed_nesting_dstm::hyflow::program::{ScriptOp, ScriptProgram};
use closed_nesting_dstm::prelude::*;

/// Two-node system: one object at each node (by id search), programs given
/// per node.
fn two_node_system(
    objects: Vec<(ObjectId, Payload)>,
    programs: Vec<Vec<BoxedProgram>>,
    scheduler: SchedulerKind,
) -> System {
    let topo = Topology::complete(2, 10);
    let cfg = DstmConfig {
        scheduler,
        concurrency_per_node: 2,
        ..DstmConfig::default()
    };
    SystemBuilder::new(topo, cfg)
        .seed(3)
        .build(WorkloadSource { objects, programs })
}

fn oid_at(node: u32) -> ObjectId {
    (1..)
        .map(ObjectId)
        .find(|o| o.home(2) == node)
        .expect("found")
}

#[test]
fn nested_writes_are_atomic_with_parent() {
    // A parent does two nested increments on objects at different nodes.
    // Whatever retries happen, both increments land exactly once.
    let a = oid_at(0);
    let b = oid_at(1);
    let mk = |x: ObjectId, y: ObjectId| -> BoxedProgram {
        Box::new(ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::OpenNested(TxKind(2)),
                ScriptOp::Write(x),
                ScriptOp::AddScalar(x, 1),
                ScriptOp::CloseNested,
                ScriptOp::Compute(SimDuration::from_millis(3)),
                ScriptOp::OpenNested(TxKind(2)),
                ScriptOp::Write(y),
                ScriptOp::AddScalar(y, 1),
                ScriptOp::CloseNested,
            ],
        ))
    };
    let mut sys = two_node_system(
        vec![(a, Payload::Scalar(0)), (b, Payload::Scalar(0))],
        vec![vec![mk(a, b), mk(b, a)], vec![mk(a, b), mk(b, a)]],
        SchedulerKind::Rts,
    );
    let m = sys.run(10_000_000);
    assert!(sys.all_done());
    assert_eq!(m.merged.commits, 4);
    let state = sys.object_state();
    assert_eq!(state[&a].0.as_scalar(), 4);
    assert_eq!(state[&b].0.as_scalar(), 4);
}

#[test]
fn nested_commit_counts_surface_in_metrics() {
    let a = oid_at(0);
    let prog = || -> BoxedProgram {
        Box::new(ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::OpenNested(TxKind(2)),
                ScriptOp::Read(a),
                ScriptOp::CloseNested,
                ScriptOp::OpenNested(TxKind(2)),
                ScriptOp::Read(a),
                ScriptOp::CloseNested,
            ],
        ))
    };
    let mut sys = two_node_system(
        vec![(a, Payload::Scalar(7))],
        vec![vec![prog()], vec![prog()]],
        SchedulerKind::Tfa,
    );
    let m = sys.run(10_000_000);
    assert!(sys.all_done());
    assert_eq!(m.merged.commits, 2);
    // Each parent committed two children; retries may add more, never fewer.
    assert!(m.merged.nested_commits >= 4, "nested commits undercounted");
}

#[test]
fn deep_nesting_three_levels() {
    // Parent -> child -> grandchild, each touching its own object, all
    // merged into one atomic commit.
    let a = oid_at(0);
    let b = oid_at(1);
    let c = ObjectId(
        (1..)
            .find(|i| ObjectId(*i).home(2) == 0 && ObjectId(*i) != a)
            .unwrap(),
    );
    let prog: BoxedProgram = Box::new(ScriptProgram::new(
        TxKind(1),
        vec![
            ScriptOp::Write(a),
            ScriptOp::AddScalar(a, 1),
            ScriptOp::OpenNested(TxKind(2)),
            ScriptOp::Write(b),
            ScriptOp::AddScalar(b, 10),
            ScriptOp::OpenNested(TxKind(3)),
            ScriptOp::Write(c),
            ScriptOp::AddScalar(c, 100),
            ScriptOp::CloseNested,
            ScriptOp::CloseNested,
        ],
    ));
    let mut sys = two_node_system(
        vec![
            (a, Payload::Scalar(0)),
            (b, Payload::Scalar(0)),
            (c, Payload::Scalar(0)),
        ],
        vec![vec![prog], vec![]],
        SchedulerKind::Rts,
    );
    let m = sys.run(10_000_000);
    assert!(sys.all_done());
    assert_eq!(m.merged.commits, 1);
    assert_eq!(m.merged.nested_commits, 2);
    let state = sys.object_state();
    assert_eq!(state[&a].0.as_scalar(), 1);
    assert_eq!(state[&b].0.as_scalar(), 10);
    assert_eq!(state[&c].0.as_scalar(), 100);
    // All three written objects share the committing transaction's version.
    assert_eq!(state[&a].1, state[&b].1);
    assert_eq!(state[&b].1, state[&c].1);
}

#[test]
fn deep_nesting_under_cache_stays_atomic_and_fresh() {
    // Both nodes run the 3-deep program concurrently over a shared
    // footprint with the remote-read cache ON. Conflicts partially abort
    // child/grandchild levels; a replayed level must re-validate its reads
    // rather than reuse copies the aborted attempt cached, so the final
    // state is exact and no node retains a copy newer than the owner's.
    let a = oid_at(0);
    let b = oid_at(1);
    let mk = |x: ObjectId, y: ObjectId| -> BoxedProgram {
        Box::new(ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::Write(x),
                ScriptOp::AddScalar(x, 1),
                ScriptOp::OpenNested(TxKind(2)),
                ScriptOp::Write(y),
                ScriptOp::AddScalar(y, 10),
                ScriptOp::Compute(SimDuration::from_millis(2)),
                ScriptOp::OpenNested(TxKind(3)),
                ScriptOp::Read(x),
                ScriptOp::Write(y),
                ScriptOp::AddScalar(y, 100),
                ScriptOp::Compute(SimDuration::from_millis(2)),
                ScriptOp::CloseNested,
                ScriptOp::CloseNested,
            ],
        ))
    };
    let topo = Topology::complete(2, 10);
    let cfg = DstmConfig {
        scheduler: SchedulerKind::Rts,
        concurrency_per_node: 2,
        cache: true,
        ..DstmConfig::default()
    };
    let mut sys = SystemBuilder::new(topo, cfg).seed(3).build(WorkloadSource {
        objects: vec![(a, Payload::Scalar(0)), (b, Payload::Scalar(0))],
        programs: vec![vec![mk(a, b), mk(b, a)], vec![mk(a, b), mk(b, a)]],
    });
    let m = sys.run(50_000_000);
    assert!(sys.all_done());
    assert_eq!(m.merged.commits, 4);
    assert!(
        m.merged.nested_commits >= 8,
        "each commit carries its child and grandchild (got {})",
        m.merged.nested_commits
    );
    assert!(
        m.merged.total_nested_aborts() > 0,
        "the contended cell never partially aborted — nothing was replayed"
    );
    // Each of the 4 transactions adds 1 to one object and 110 to the other.
    let state = sys.object_state();
    assert_eq!(state[&a].0.as_scalar(), 2 + 220);
    assert_eq!(state[&b].0.as_scalar(), 2 + 220);
    assert!(
        m.merged.cache_hits > 0,
        "the contended 3-deep cell never exercised the cache"
    );
    // No node may be left holding a cached copy newer than the owner's
    // authoritative version (an aborted level leaking its reads would).
    for node in sys.world().actors() {
        for (oid, copy) in node.cached_copies() {
            assert!(
                copy.version <= state[&oid].1,
                "cached copy of {oid:?} at v{} is ahead of owner v{}",
                copy.version,
                state[&oid].1
            );
        }
    }
}

#[test]
fn read_only_parents_do_not_bump_versions() {
    let a = oid_at(0);
    let reader = || -> BoxedProgram {
        Box::new(ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::OpenNested(TxKind(2)),
                ScriptOp::Read(a),
                ScriptOp::CloseNested,
            ],
        ))
    };
    let mut sys = two_node_system(
        vec![(a, Payload::Scalar(5))],
        vec![vec![reader()], vec![reader()]],
        SchedulerKind::Rts,
    );
    let m = sys.run(10_000_000);
    assert!(sys.all_done());
    assert_eq!(m.merged.commits, 2);
    let state = sys.object_state();
    assert_eq!(state[&a].1, 0, "read-only commits must not create versions");
    assert_eq!(state[&a].0.as_scalar(), 5);
}
