//! Differential tests for the epoch-sampling telemetry layer.
//!
//! The sampler (`Cell::with_telemetry` / `--telemetry`) must be a pure
//! observer: a run with telemetry on must be **bit-identical** to the same
//! run with it off — same metrics (including the always-on wasted-work
//! ledger), same message count, same virtual end time, same protocol trace
//! byte-for-byte — for every shard count and partitioner. The epoch series
//! itself is part of the determinism contract: it samples sim-time, so the
//! merged series must not depend on how the host parallelised the run.
//! Same bar the sharded executor had to clear (`shard_differential.rs`),
//! extended to the observability layer.

use closed_nesting_dstm::harness::experiments::scenarios::run_collision;
use closed_nesting_dstm::harness::runner::{run_cell, run_cell_telemetry, run_cell_traced, Cell};
use closed_nesting_dstm::hyflow::merge_epoch_series;
use closed_nesting_dstm::prelude::*;
use proptest::prelude::*;
use rts_core::SchedulerKind;

const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Rts,
    SchedulerKind::Tfa,
    SchedulerKind::TfaBackoff,
];

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

const PARTITIONS: [PartitionStrategy; 2] =
    [PartitionStrategy::RoundRobin, PartitionStrategy::Locality];

/// FNV-1a over a byte string (stable, dependency-free).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A small contended cell: high write ratio and few objects so the epoch
/// series carries aborts and wasted work, not just commits.
fn contended_cell(scheduler: SchedulerKind, seed: u64) -> Cell {
    let mut cell = Cell::new(Benchmark::Bank, scheduler, 6, 0.2)
        .with_txns(5)
        .with_seed(seed);
    cell.params.objects_per_node = 3;
    cell
}

/// Every observable outcome of a traced run, trace hashed in its lossless
/// JSONL form.
fn traced_digest(cell: Cell) -> String {
    let (r, trace) = run_cell_traced(cell);
    assert!(r.completed, "cell stalled");
    let m = &r.metrics;
    format!(
        "commits={} aborts={} nested_own={} nested_parent={} wasted_ns={} \
         wasted_msgs={} attributed={} messages={} ended_at={} trace_fnv={:016x}",
        m.merged.commits,
        m.merged.total_aborts(),
        m.merged.nested_aborts_own,
        m.merged.nested_aborts_parent,
        m.merged.wasted_work_ns,
        m.merged.wasted_msgs,
        m.merged.aborts_attributed,
        m.messages,
        m.ended_at.as_nanos(),
        fnv1a(trace.to_jsonl().as_bytes()),
    )
}

#[test]
fn telemetry_on_matches_off_across_shards_and_partitioners() {
    for scheduler in SCHEDULERS {
        let baseline = run_cell(contended_cell(scheduler, 13));
        assert!(baseline.completed);
        let mut series_digest: Option<String> = None;
        for shards in SHARD_COUNTS {
            for partition in PARTITIONS {
                let cell = contended_cell(scheduler, 13)
                    .with_shards(shards)
                    .with_partition(partition);
                let (r, reports) = run_cell_telemetry(cell);
                assert!(r.completed);
                // Whole-struct comparison: NodeMetrics PartialEq covers
                // every counter (wasted-work ledger included) and every
                // latency histogram bucket.
                assert_eq!(
                    baseline.metrics.merged,
                    r.metrics.merged,
                    "{} diverged with telemetry at {shards} shards / {}",
                    scheduler.label(),
                    partition.label()
                );
                assert_eq!(baseline.metrics.messages, r.metrics.messages);
                assert_eq!(baseline.metrics.ended_at, r.metrics.ended_at);
                // The epoch series samples sim-time, so it must be the
                // same series no matter how the host parallelised the run.
                let series = merge_epoch_series(&reports);
                assert!(!series.is_empty(), "contended run spans epochs");
                let digest = format!("{series:?}");
                match &series_digest {
                    None => series_digest = Some(digest),
                    Some(want) => assert_eq!(
                        want,
                        &digest,
                        "epoch series diverged at {shards} shards / {}",
                        partition.label()
                    ),
                }
            }
        }
    }
}

#[test]
fn epoch_sums_match_end_of_run_totals_through_the_harness() {
    // The acceptance check behind `dstm-sweep --telemetry`: the per-epoch
    // deltas in the sidecar sum to the end-of-run NodeMetrics totals.
    let (r, reports) = run_cell_telemetry(contended_cell(SchedulerKind::Rts, 91));
    assert!(r.completed);
    let series = merge_epoch_series(&reports);
    let m = &r.metrics.merged;
    let sum = |f: fn(&closed_nesting_dstm::hyflow::EpochSample) -> u64| -> u64 {
        series.iter().map(f).sum()
    };
    assert_eq!(sum(|e| e.commits), m.commits);
    assert_eq!(sum(|e| e.aborts), m.total_aborts());
    assert_eq!(sum(|e| e.nested_aborts), m.total_nested_aborts());
    assert_eq!(sum(|e| e.enqueued), m.enqueued);
    assert_eq!(sum(|e| e.wasted_ns), m.wasted_work_ns);
    assert_eq!(sum(|e| e.wasted_msgs), m.wasted_msgs);
    assert_eq!(sum(|e| e.cache_hits), 0, "cache off ⇒ no hits sampled");
    assert_eq!(sum(|e| e.cache_misses), 0);

    // Same reconciliation with the cache on: the sampler must track the
    // new counters epoch by epoch too.
    let (r, reports) = run_cell_telemetry(contended_cell(SchedulerKind::Rts, 91).with_cache(true));
    assert!(r.completed);
    let series = merge_epoch_series(&reports);
    let m = r.metrics.merged.clone();
    let sum = |f: fn(&closed_nesting_dstm::hyflow::EpochSample) -> u64| -> u64 {
        series.iter().map(f).sum()
    };
    assert_eq!(sum(|e| e.commits), m.commits);
    assert_eq!(sum(|e| e.cache_hits), m.cache_hits);
    assert_eq!(sum(|e| e.cache_misses), m.cache_misses);
    assert!(m.cache_hits > 0, "contended cache-on run must hit");
}

#[test]
fn wasted_work_ledger_reconciles_on_the_collision_scenarios() {
    // Fig. 2 (TFA) and Fig. 3 (RTS) single-object collisions: the nested
    // tallies of the wasted-work ledger are bumped on the abort path while
    // Table I's own/parent counters are bumped in the nesting layer, so
    // their equality cross-checks the attribution plumbing end to end.
    for scheduler in [SchedulerKind::Tfa, SchedulerKind::Rts] {
        let r = run_collision(scheduler, 6, 2);
        assert!(r.all_done, "{} collision stalled", scheduler.label());
        let m = &r.metrics.merged;
        assert!(
            m.total_nested_aborts() > 0,
            "{} collision must abort children",
            scheduler.label()
        );
        assert!(m.wasted_work_ns > 0, "aborted work must be accounted");
        assert!(
            m.wasted_work_reconciles(),
            "{}: ledger (own {}, parent {}) != Table I ({}, {})",
            scheduler.label(),
            m.wasted_nested_own,
            m.wasted_nested_parent,
            m.nested_aborts_own,
            m.nested_aborts_parent
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// Randomized sweep of the pure-observer claim: any seed, any
    /// scheduler, any shard count, either partitioner, tracing on or off —
    /// the run with the sampler enabled equals the run without it.
    #[test]
    fn telemetry_on_vs_off_digest_equality(
        seed in 1u64..10_000,
        sched in 0usize..3,
        shards in 0usize..3,
        partition in 0usize..2,
        traced in 0u8..2,
    ) {
        let traced = traced == 1;
        let mk = |telemetry: bool| {
            let mut cell = contended_cell(SCHEDULERS[sched], seed)
                .with_shards(SHARD_COUNTS[shards])
                .with_partition(PARTITIONS[partition]);
            if telemetry {
                cell = cell.with_telemetry();
            }
            cell
        };
        if traced {
            prop_assert_eq!(traced_digest(mk(false)), traced_digest(mk(true)));
        } else {
            let off = run_cell(mk(false));
            let (on, _reports) = run_cell_telemetry(mk(false));
            prop_assert!(off.completed && on.completed);
            prop_assert_eq!(&off.metrics.merged, &on.metrics.merged);
            prop_assert_eq!(off.metrics.messages, on.metrics.messages);
            prop_assert_eq!(off.metrics.ended_at, on.metrics.ended_at);
        }
    }
}
