//! Property-based whole-system tests: random small configurations must
//! always terminate, commit exactly the issued transactions, and preserve
//! each benchmark's application invariant under each scheduler.
//!
//! Case counts are kept small — each case is a complete multi-node
//! simulation.

use closed_nesting_dstm::benchmarks::{bank, bst, dht, list, rbtree, vacation};
use closed_nesting_dstm::harness::runner::{build_system, Cell};
use closed_nesting_dstm::prelude::*;
use proptest::prelude::*;

fn scheduler_strategy() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::Rts),
        Just(SchedulerKind::Tfa),
        Just(SchedulerKind::TfaBackoff),
    ]
}

fn benchmark_strategy() -> impl Strategy<Value = Benchmark> {
    prop_oneof![
        Just(Benchmark::Vacation),
        Just(Benchmark::Bank),
        Just(Benchmark::LinkedList),
        Just(Benchmark::RbTree),
        Just(Benchmark::Bst),
        Just(Benchmark::Dht),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 8,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_runs_terminate_and_keep_invariants(
        benchmark in benchmark_strategy(),
        scheduler in scheduler_strategy(),
        nodes in 2usize..6,
        txns in 1usize..6,
        read_pct in 0u32..=10,
        seed in 0u64..1000,
    ) {
        let mut cell = Cell::new(benchmark, scheduler, nodes, read_pct as f64 / 10.0)
            .with_txns(txns)
            .with_seed(seed);
        cell.params.objects_per_node = 4;
        let params = cell.params.clone();
        let mut system = build_system(&cell);
        let metrics = system.run_default();

        prop_assert!(system.all_done(), "stalled: {} {:?}", benchmark.label(), scheduler);
        prop_assert_eq!(metrics.merged.commits as usize, nodes * txns, "commit count wrong");

        // object_state() itself asserts single-writable-copy.
        let state = system.object_state();
        match benchmark {
            Benchmark::Bank => {
                prop_assert_eq!(bank::total_balance(&state), bank::expected_total(&params));
            }
            Benchmark::Vacation => {
                prop_assert!(vacation::billing_matches_inventory(&state, &params));
            }
            Benchmark::LinkedList => {
                let v = list::collect_list(&state);
                prop_assert!(v.windows(2).all(|w| w[0] < w[1]), "unsorted list {:?}", v);
            }
            Benchmark::Bst => {
                let v = bst::collect_inorder(&state);
                prop_assert!(v.windows(2).all(|w| w[0] < w[1]), "unsorted BST");
            }
            Benchmark::RbTree => {
                prop_assert!(rbtree::check_rb(&state).is_ok(), "{:?}", rbtree::check_rb(&state));
            }
            Benchmark::Dht => {
                prop_assert!(dht::check_placement(&state, params.total_objects() as u64).is_ok());
            }
        }

        // Table-I accounting is a partition: causes sum to the total.
        let m = &metrics.merged;
        prop_assert_eq!(
            m.total_nested_aborts(),
            m.nested_aborts_own + m.nested_aborts_parent
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn event_kernel_total_order(times in proptest::collection::vec(0u64..10_000_000, 1..500)) {
        use closed_nesting_dstm::sim::{BinaryHeapQueue, CalendarQueue, EventQueue, Sequenced, SimTime};
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::with_params(16, 1000);
        for (i, &t) in times.iter().enumerate() {
            heap.push(Sequenced::new(SimTime(t), i as u64, i));
            cal.push(Sequenced::new(SimTime(t), i as u64, i));
        }
        let mut last = None;
        let mut heap_order = Vec::new();
        while let Some(ev) = heap.pop() {
            if let Some(prev) = last {
                prop_assert!(prev < ev.key, "heap order violated");
            }
            last = Some(ev.key);
            heap_order.push(ev.payload);
        }
        let mut last = None;
        let mut cal_order = Vec::new();
        while let Some(ev) = cal.pop() {
            if let Some(prev) = last {
                prop_assert!(prev < ev.key, "calendar order violated");
            }
            last = Some(ev.key);
            cal_order.push(ev.payload);
        }
        prop_assert_eq!(heap_order, cal_order, "queues disagree on order");
    }

    #[test]
    fn bloom_has_no_false_negatives(items in proptest::collection::hash_set(0u64..1_000_000, 1..500)) {
        use closed_nesting_dstm::rts::BloomFilter;
        let mut f = BloomFilter::with_capacity(items.len().max(8), 0.01);
        for &x in &items {
            f.insert(x);
        }
        for &x in &items {
            prop_assert!(f.contains(x));
        }
    }

    #[test]
    fn topology_always_well_formed(n in 1usize..40, seed in 0u64..100) {
        let mut rng = SimRng::new(seed);
        let t = Topology::uniform_random(n, 1, 50, &mut rng);
        prop_assert!(t.is_well_formed());
        let t2 = Topology::metric_plane(n, 40.0, 1, &mut rng);
        prop_assert!(t2.is_well_formed());
        prop_assert!(t2.is_metric());
    }
}
