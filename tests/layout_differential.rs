//! Differential tests for the protocol-layer data-layout overhaul.
//!
//! The dense id-indexed node state (slab object store, seq-indexed tx
//! table), the FxHash-backed protocol maps, the pooled scratch buffers, and
//! the on-demand topology representations are all pure performance knobs:
//! none of them may perturb a single simulated outcome. Two layers of proof:
//!
//! 1. **Golden digests** — a grid of small cells (benchmark × scheduler ×
//!    queue backend) was run *before* the refactor and its full outcome
//!    (metrics + the complete protocol trace) hashed into the constants
//!    below. The refactored layouts must reproduce every digest bit-for-bit.
//! 2. **Property tests** — on-demand topology representations must agree
//!    with a materialized dense matrix at every pair, and whole runs driven
//!    through either representation must be trajectory-identical.

use closed_nesting_dstm::harness::runner::{run_cell_traced, Cell, TopologySpec};
use closed_nesting_dstm::prelude::*;
use dstm_net::Topology;
use dstm_sim::{ActorId, SimRng};
use proptest::prelude::*;
use rts_core::SchedulerKind;

const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Rts,
    SchedulerKind::Tfa,
    SchedulerKind::TfaBackoff,
];

/// FNV-1a over a byte string (stable, dependency-free).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn golden_cells() -> Vec<(&'static str, Cell)> {
    let mut out = Vec::new();
    for (b, blabel) in [(Benchmark::Bank, "bank"), (Benchmark::Vacation, "vacation")] {
        for s in SCHEDULERS {
            for (q, qlabel) in [
                (hyflow_dstm::QueueBackend::BinaryHeap, "heap"),
                (hyflow_dstm::QueueBackend::Calendar, "calendar"),
            ] {
                let mut cell = Cell::new(b, s, 6, 0.5)
                    .with_txns(6)
                    .with_seed(7)
                    .with_queue_backend(q);
                cell.params.objects_per_node = 4;
                let name: &'static str =
                    Box::leak(format!("{blabel}/{}/{qlabel}", s.label()).into_boxed_str());
                out.push((name, cell));
            }
        }
    }
    out
}

/// One line per cell: every observable outcome of the run, including a hash
/// of the full protocol trace (lossless JSONL form).
fn digest(cell: Cell) -> String {
    let (r, trace) = run_cell_traced(cell);
    assert!(r.completed, "golden cell stalled");
    let m = &r.metrics;
    format!(
        "commits={} aborts={} nested_commits={} nested_own={} nested_parent={} \
         messages={} elapsed={} ended_at={} trace_records={} trace_fnv={:016x}",
        m.merged.commits,
        m.merged.total_aborts(),
        m.merged.nested_commits,
        m.merged.nested_aborts_own,
        m.merged.nested_aborts_parent,
        m.messages,
        m.elapsed.as_nanos(),
        m.ended_at.as_nanos(),
        trace.records.len(),
        fnv1a(trace.to_jsonl().as_bytes()),
    )
}

/// Captured from the pre-refactor layouts (HashMap-backed node state, dense
/// delay matrix) — see the module docs. Regenerate with
/// `cargo test --release print_layout_digests -- --ignored --nocapture`
/// ONLY for a change that is *meant* to alter simulated behaviour.
///
/// Migrated ONCE for the interleaving-independent `EventKey` tiebreak
/// (`(time, issuing actor, per-actor seq)` replacing the global issue
/// sequence, required by `GenericWorld::run_sharded`): every metric,
/// message count, and timestamp was unchanged; only the three vacation
/// trace hashes moved (same-timestamp deliveries now order by actor id —
/// before/after pairs recorded in EXPERIMENTS.md).
///
/// Migrated a SECOND time for the trace-format additions of the telemetry
/// layer: `run_cell_traced` now prepends a `RunInfo` header record
/// (scheduler + node count, for per-run `dstm-trace stats` segmentation)
/// and `RunSummary`/`TxAbort` records carry the wasted-work ledger fields.
/// Every metric, message count, and timestamp was again unchanged; every
/// cell's record count moved by exactly +1 (the header).
const GOLDEN: &[(&str, &str)] = &[
    ("bank/RTS/heap", "commits=36 aborts=84 nested_commits=375 nested_own=218 nested_parent=281 messages=2551 elapsed=3415709000 ended_at=3415709000 trace_records=1398 trace_fnv=fef08a6a58984aa6"),
    ("bank/RTS/calendar", "commits=36 aborts=84 nested_commits=375 nested_own=218 nested_parent=281 messages=2551 elapsed=3415709000 ended_at=3415709000 trace_records=1398 trace_fnv=fef08a6a58984aa6"),
    ("bank/TFA/heap", "commits=36 aborts=76 nested_commits=357 nested_own=305 nested_parent=259 messages=2650 elapsed=3686089000 ended_at=3686089000 trace_records=1413 trace_fnv=b9152a6b3751108f"),
    ("bank/TFA/calendar", "commits=36 aborts=76 nested_commits=357 nested_own=305 nested_parent=259 messages=2650 elapsed=3686089000 ended_at=3686089000 trace_records=1413 trace_fnv=b9152a6b3751108f"),
    ("bank/TFA+Backoff/heap", "commits=36 aborts=81 nested_commits=354 nested_own=371 nested_parent=258 messages=2645 elapsed=3418078000 ended_at=3418078000 trace_records=1481 trace_fnv=e9597a89af570da8"),
    ("bank/TFA+Backoff/calendar", "commits=36 aborts=81 nested_commits=354 nested_own=371 nested_parent=258 messages=2645 elapsed=3418078000 ended_at=3418078000 trace_records=1481 trace_fnv=e9597a89af570da8"),
    ("vacation/RTS/heap", "commits=36 aborts=39 nested_commits=147 nested_own=138 nested_parent=80 messages=1272 elapsed=2002658000 ended_at=2002658000 trace_records=672 trace_fnv=ca282a6f1a872b07"),
    ("vacation/RTS/calendar", "commits=36 aborts=39 nested_commits=147 nested_own=138 nested_parent=80 messages=1272 elapsed=2002658000 ended_at=2002658000 trace_records=672 trace_fnv=ca282a6f1a872b07"),
    ("vacation/TFA/heap", "commits=36 aborts=47 nested_commits=169 nested_own=77 nested_parent=104 messages=1260 elapsed=2577996000 ended_at=2577996000 trace_records=669 trace_fnv=7b8f6f97263216a6"),
    ("vacation/TFA/calendar", "commits=36 aborts=47 nested_commits=169 nested_own=77 nested_parent=104 messages=1260 elapsed=2577996000 ended_at=2577996000 trace_records=669 trace_fnv=7b8f6f97263216a6"),
    ("vacation/TFA+Backoff/heap", "commits=36 aborts=47 nested_commits=169 nested_own=70 nested_parent=104 messages=1243 elapsed=2488553000 ended_at=2488553000 trace_records=661 trace_fnv=ecb33351940005a4"),
    ("vacation/TFA+Backoff/calendar", "commits=36 aborts=47 nested_commits=169 nested_own=70 nested_parent=104 messages=1243 elapsed=2488553000 ended_at=2488553000 trace_records=661 trace_fnv=ecb33351940005a4"),
];

#[test]
#[ignore = "generator for the GOLDEN table"]
fn print_layout_digests() {
    for (name, cell) in golden_cells() {
        println!("    (\"{name}\", \"{}\"),", digest(cell));
    }
}

#[test]
fn refactored_layouts_match_pre_refactor_goldens() {
    let cells = golden_cells();
    assert_eq!(cells.len(), GOLDEN.len(), "golden table out of date");
    for ((name, cell), (gname, want)) in cells.into_iter().zip(GOLDEN) {
        assert_eq!(name, *gname, "golden table order changed");
        let got = digest(cell);
        assert_eq!(got, *want, "layout changed simulated behaviour in {name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Same cell, run twice: the dense layouts must be deterministic (no
    /// map-iteration-order leakage into protocol behaviour).
    #[test]
    fn runs_are_reproducible_across_layout(seed in 1u64..10_000, sched in 0usize..3) {
        let mk = || {
            let mut c = Cell::new(Benchmark::Bank, SCHEDULERS[sched], 5, 0.5)
                .with_txns(4)
                .with_seed(seed);
            c.params.objects_per_node = 3;
            c
        };
        prop_assert_eq!(digest(mk()), digest(mk()));
    }

    /// Every on-demand topology representation must agree with its own
    /// materialized dense matrix at every pair — the O(n)-memory layouts
    /// are pure storage changes.
    #[test]
    fn on_demand_topology_matches_dense(n in 2usize..24, seed in 1u64..1_000) {
        let mut rng = SimRng::new(seed);
        for t in [
            Topology::ring(n, 3),
            Topology::clustered(n, 3, 1, 9),
            Topology::complete(n, 5),
            Topology::metric_plane(n, 40.0, 1, &mut rng),
            Topology::hashed_random(n, 1, 50, seed),
        ] {
            let dense = t.to_dense();
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    prop_assert_eq!(
                        t.delay(ActorId(a), ActorId(b)),
                        dense.delay(ActorId(a), ActorId(b)),
                        "{:?} pair ({a},{b})", t.kind()
                    );
                }
            }
        }
    }

    /// Whole runs on the hashed O(1)-memory topology: deterministic, and
    /// bit-identical across both event-queue backends (the same proof the
    /// goldens give the dense-matrix path, extended to `--scale large`'s
    /// network model).
    #[test]
    fn hashed_topology_runs_bit_identical_across_backends(
        seed in 1u64..10_000, sched in 0usize..3,
    ) {
        let mk = |q| {
            let mut c = Cell::new(Benchmark::Bank, SCHEDULERS[sched], 5, 0.5)
                .with_txns(4)
                .with_seed(seed)
                .with_queue_backend(q)
                .with_topology(TopologySpec::HashedRandom { min_ms: 1, max_ms: 50 });
            c.params.objects_per_node = 3;
            c
        };
        let heap = digest(mk(hyflow_dstm::QueueBackend::BinaryHeap));
        let calendar = digest(mk(hyflow_dstm::QueueBackend::Calendar));
        prop_assert_eq!(&heap, &calendar);
        prop_assert_eq!(heap, digest(mk(hyflow_dstm::QueueBackend::BinaryHeap)));
    }
}
