//! Differential tests for clock-validated remote-read caching and message
//! coalescing (`Cell::with_cache` / `--cache` / `DSTM_CACHE`).
//!
//! Unlike `--shards`, the cache is a **protocol variant**: it changes the
//! simulated message pattern (fewer fetch round trips), so cache-on results
//! legitimately differ from cache-off ones. The contract split is:
//!
//! * **Cache off (the default)** must be bit-identical to the pre-cache
//!   protocol — zero cache counters, no cache fields in traces, and the
//!   golden digests in `layout_differential.rs` unchanged.
//! * **Cache on** must still be a correct TFA execution: every trace passes
//!   the offline serializability audit and the `analyze` ledger
//!   reconciliation, under every scheduler and shard count — and sharded
//!   cache-on runs stay bit-identical to serial cache-on runs.
//! * On contended workloads the cache must actually pay: fewer kernel
//!   messages per commit, a nonzero hit rate, and (via conflict-verdict
//!   owner healing) no more tombstone forwards than the cache-off run.

use closed_nesting_dstm::harness::runner::{run_cell, run_cell_telemetry, run_cell_traced, Cell};
use closed_nesting_dstm::harness::{analyze, audit};
use closed_nesting_dstm::hyflow::{merge_epoch_series, EpochSample, PartitionStrategy};
use closed_nesting_dstm::prelude::*;
use rts_core::SchedulerKind;

const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Rts,
    SchedulerKind::Tfa,
    SchedulerKind::TfaBackoff,
];

/// A read-heavy contended cell: few objects, many readers — the shape the
/// cache is built for.
fn contended_cell(benchmark: Benchmark, scheduler: SchedulerKind, seed: u64) -> Cell {
    let mut cell = Cell::new(benchmark, scheduler, 8, 0.8)
        .with_txns(6)
        .with_seed(seed);
    cell.params.objects_per_node = 2;
    cell
}

#[test]
fn cache_off_runs_carry_no_cache_state() {
    for scheduler in SCHEDULERS {
        let cell = contended_cell(Benchmark::Bank, scheduler, 5).with_cache(false);
        let (r, trace) = run_cell_traced(cell);
        assert!(r.completed);
        let m = &r.metrics.merged;
        assert_eq!(
            (m.cache_hits, m.cache_misses, m.cache_invalidations),
            (0, 0, 0),
            "cache-off run under {} recorded cache activity",
            scheduler.label()
        );
        // The conditional RunSummary fields must stay absent so pre-cache
        // golden traces (and their FNV digests) remain byte-identical.
        assert!(
            !trace.to_jsonl().contains("cache"),
            "cache-off trace under {} mentions the cache",
            scheduler.label()
        );
    }
}

#[test]
fn cache_on_passes_audit_and_ledger_reconciliation() {
    for benchmark in [Benchmark::Bank, Benchmark::Vacation] {
        for scheduler in SCHEDULERS {
            for shards in [1usize, 2, 4] {
                let cell = contended_cell(benchmark, scheduler, 9)
                    .with_cache(true)
                    .with_shards(shards);
                let (r, trace) = run_cell_traced(cell);
                assert!(
                    r.completed,
                    "{}/{} with cache at {shards} shards stalled",
                    benchmark.label(),
                    scheduler.label()
                );
                let report = audit(&trace);
                assert!(
                    report.ok(),
                    "{}/{} with cache at {shards} shards failed audit: {:?}",
                    benchmark.label(),
                    scheduler.label(),
                    report.violations
                );
                assert!(report.summary_checked);
                let ledger = analyze(&trace, 0);
                assert!(
                    ledger.ok(),
                    "{}/{} with cache at {shards} shards failed ledger \
                     reconciliation: {:?}",
                    benchmark.label(),
                    scheduler.label(),
                    ledger.mismatches
                );
            }
        }
    }
}

#[test]
fn cache_on_sharded_runs_match_serial_bit_for_bit() {
    // Coalesced batches target one destination, so the sharded executor
    // routes them like any single message; the variant must stay
    // shard-deterministic.
    for scheduler in SCHEDULERS {
        let digest = |shards: usize| {
            let (r, trace) = run_cell_traced(
                contended_cell(Benchmark::Vacation, scheduler, 13)
                    .with_cache(true)
                    .with_shards(shards),
            );
            assert!(r.completed);
            let m = &r.metrics;
            format!(
                "commits={} aborts={} messages={} ended_at={} trace={}",
                m.merged.commits,
                m.merged.total_aborts(),
                m.messages,
                m.ended_at.as_nanos(),
                trace.to_jsonl()
            )
        };
        let serial = digest(1);
        for shards in [2usize, 4] {
            assert_eq!(
                serial,
                digest(shards),
                "cache-on run under {} diverged at {shards} shards",
                scheduler.label()
            );
        }
    }
}

#[test]
fn cache_counters_reconcile_with_epoch_sums_across_shards_and_partitioners() {
    // The passive epoch sampler and the end-of-run counters are maintained
    // on different paths (per-epoch deltas vs monotone totals), so their
    // agreement cross-checks the cache instrumentation — and it must hold
    // identically however the nodes are packed onto shard threads.
    for shards in [1usize, 2, 4] {
        for partition in [PartitionStrategy::RoundRobin, PartitionStrategy::Locality] {
            let cell = contended_cell(Benchmark::Bank, SchedulerKind::Rts, 9)
                .with_cache(true)
                .with_shards(shards)
                .with_partition(partition);
            let (r, reports) = run_cell_telemetry(cell);
            assert!(
                r.completed,
                "cache+telemetry at {shards} shards / {partition:?} stalled"
            );
            assert!(
                reports.iter().all(|rep| rep.dropped_epochs == 0),
                "{shards} shards / {partition:?}: sampler dropped epochs"
            );
            let series = merge_epoch_series(&reports);
            let m = &r.metrics.merged;
            let sum = |f: fn(&EpochSample) -> u64| -> u64 { series.iter().map(f).sum() };
            for (name, epochs, counter) in [
                ("cache_hits", sum(|e| e.cache_hits), m.cache_hits),
                ("cache_misses", sum(|e| e.cache_misses), m.cache_misses),
                (
                    "cache_invalidations",
                    sum(|e| e.cache_invalidations),
                    m.cache_invalidations,
                ),
                ("commits", sum(|e| e.commits), m.commits),
            ] {
                assert_eq!(
                    epochs, counter,
                    "{shards} shards / {partition:?}: epoch-sum {name} diverged \
                     from the end-of-run counter"
                );
            }
            assert!(
                m.cache_hits > 0,
                "{shards} shards / {partition:?}: contended cache-on run never hit"
            );
        }
    }
}

#[test]
fn cache_reduces_messages_per_commit_on_contended_reads() {
    for benchmark in [Benchmark::Bank, Benchmark::Vacation] {
        let off = run_cell(contended_cell(benchmark, SchedulerKind::Rts, 21).with_cache(false));
        let on = run_cell(contended_cell(benchmark, SchedulerKind::Rts, 21).with_cache(true));
        assert!(off.completed && on.completed);
        // Same workload, same transaction population: commits must agree.
        assert_eq!(off.metrics.merged.commits, on.metrics.merged.commits);
        assert!(
            on.metrics.merged.cache_hits > 0,
            "{}: cache never hit (misses {})",
            benchmark.label(),
            on.metrics.merged.cache_misses
        );
        let mpc = |r: &closed_nesting_dstm::harness::CellResult| {
            r.metrics.messages as f64 / r.metrics.merged.commits.max(1) as f64
        };
        assert!(
            mpc(&on) < mpc(&off),
            "{}: cache did not reduce messages/commit ({:.2} on vs {:.2} off)",
            benchmark.label(),
            mpc(&on),
            mpc(&off)
        );
    }
}

#[test]
fn conflict_verdict_healing_does_not_lengthen_forwarding_chains() {
    // Satellite check on owner-guess staleness: with the cache on, conflict
    // verdicts heal the requester's owner guess, so tombstone forwards per
    // fetch must not rise — and on migration-heavy cells they drop.
    let mut shortened = false;
    for seed in [21u64, 33, 47] {
        let off = run_cell(
            contended_cell(Benchmark::Vacation, SchedulerKind::Rts, seed).with_cache(false),
        );
        let on = run_cell(
            contended_cell(Benchmark::Vacation, SchedulerKind::Rts, seed).with_cache(true),
        );
        assert!(off.completed && on.completed);
        let rate = |r: &closed_nesting_dstm::harness::CellResult| {
            r.metrics.merged.forwarded_reqs as f64 / r.metrics.merged.fetches_served.max(1) as f64
        };
        assert!(
            rate(&on) <= rate(&off),
            "seed {seed}: forwards per served fetch rose with healing on \
             ({:.3} vs {:.3})",
            rate(&on),
            rate(&off)
        );
        if rate(&on) < rate(&off) {
            shortened = true;
        }
    }
    assert!(
        shortened,
        "owner-guess healing never shortened a forwarding chain on any seed"
    );
}
