//! Whole-system determinism: a run is a pure function of its seeds.

use closed_nesting_dstm::harness::runner::{run_cell, Cell};
use closed_nesting_dstm::prelude::*;

fn fingerprint(benchmark: Benchmark, scheduler: SchedulerKind, seed: u64) -> (u64, u64, u64, u64) {
    let mut cell = Cell::new(benchmark, scheduler, 5, 0.5)
        .with_txns(5)
        .with_seed(seed);
    cell.params.objects_per_node = 5;
    let r = run_cell(cell);
    assert!(r.completed);
    (
        r.metrics.merged.commits,
        r.metrics.merged.total_aborts(),
        r.metrics.messages,
        r.metrics.elapsed.as_nanos(),
    )
}

#[test]
fn identical_seeds_identical_runs() {
    for b in [Benchmark::Bank, Benchmark::Dht, Benchmark::RbTree] {
        for s in [SchedulerKind::Rts, SchedulerKind::Tfa] {
            assert_eq!(
                fingerprint(b, s, 42),
                fingerprint(b, s, 42),
                "{} under {s:?} is nondeterministic",
                b.label()
            );
        }
    }
}

#[test]
fn different_seeds_different_runs() {
    // Different topologies/workloads must change at least the timing.
    let a = fingerprint(Benchmark::Bank, SchedulerKind::Rts, 1);
    let b = fingerprint(Benchmark::Bank, SchedulerKind::Rts, 2);
    assert_ne!(a.3, b.3, "seed had no effect on the run");
}

#[test]
fn final_state_is_deterministic_too() {
    let state = |seed: u64| {
        let mut cell = Cell::new(Benchmark::LinkedList, SchedulerKind::Rts, 4, 0.3)
            .with_txns(4)
            .with_seed(seed);
        cell.params.objects_per_node = 4;
        let mut sys = closed_nesting_dstm::harness::runner::build_system(&cell);
        sys.run_default();
        assert!(sys.all_done());
        let mut entries: Vec<(ObjectId, u64)> = sys
            .object_state()
            .into_iter()
            .map(|(oid, (_p, v))| (oid, v))
            .collect();
        entries.sort();
        entries
    };
    assert_eq!(state(9), state(9));
}
