//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this shim implements the subset of proptest's API that the repository's
//! property tests use:
//!
//! * the [`Strategy`] trait, implemented for integer ranges
//!   (`0u64..1000`, `1usize..=6`), [`Just`], `prop_oneof!` unions, and the
//!   [`collection`] combinators `vec` / `hash_set`;
//! * the `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {} }`
//!   macro, which expands each test into a deterministic multi-case loop;
//! * `prop_assert!` / `prop_assert_eq!`, which fail the enclosing case with
//!   a formatted message.
//!
//! Differences from real proptest: cases are drawn from a deterministic
//! per-test RNG (seeded from the test's name) rather than an entropy source,
//! and there is **no shrinking** — a failing case prints its number and the
//! message, and the deterministic seeding reproduces it on the next run.
//! `PROPTEST_CASES` overrides the case count globally. When the real crate is
//! available the shim can be deleted and the workspace dependency re-pointed
//! without touching test source.

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// splitmix64 — small, fast, and plenty for test-case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Deterministic stream derived from a test's name, so every run of
        /// the suite explores the same cases (reproducible failures without
        /// persistence files).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift; bias is immaterial for test-case generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A value generator. The shim's strategies sample directly (no value trees,
/// no shrinking).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy producing one fixed value (cloned per case).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty : $u:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

signed_range_strategy!(i32: u32, i64: u64);

/// Uniform choice between same-valued strategies — the target of
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(elem, size_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.clone().sample(rng);
            let mut out = HashSet::with_capacity(target);
            // Collisions only shrink the set; bound the attempts so narrow
            // domains terminate.
            for _ in 0..target.saturating_mul(4).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.sample(rng));
            }
            out
        }
    }

    /// `proptest::collection::hash_set(elem, size_range)`.
    pub fn hash_set<S: Strategy>(elem: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { elem, size }
    }
}

/// The subset of proptest's config the repository uses. Extra fields can be
/// added as call sites need them.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; this shim never persists failures.
    pub failure_persistence: Option<&'static str>,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            failure_persistence: None,
        }
    }
}

impl ProptestConfig {
    /// Effective case count (`PROPTEST_CASES` env var overrides).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Failure raised by `prop_assert!`-family macros inside a case body.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( Box::new($arm) as Box<dyn $crate::Strategy<Value = _>> ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}"
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`: {}\n  left: {l:?}\n right: {r:?}",
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {l:?}"
            )));
        }
    }};
}

/// `proptest! { ... }` — expands each `#[test] fn f(x in strat, ...)` into a
/// multi-case deterministic loop.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.effective_cases() {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {case}/{} of `{}` failed: {e}",
                            config.effective_cases(),
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0u32..=10).sample(&mut rng);
            assert!(w <= 10);
            let s = (1usize..6).sample(&mut rng);
            assert!((1..6).contains(&s));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let u = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::new(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(u.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::new(3);
        let v = collection::vec(0u64..100, 5..6).sample(&mut rng);
        assert_eq!(v.len(), 5);
        let s = collection::hash_set(0u64..1_000_000, 3..10).sample(&mut rng);
        assert!(!s.is_empty() && s.len() < 10);
    }

    #[test]
    fn deterministic_per_label() {
        let mut a = TestRng::deterministic("case");
        let mut b = TestRng::deterministic("case");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_and_asserts(x in 0u64..100, y in 1usize..4) {
            prop_assert!(x < 100, "x out of range: {x}");
            prop_assert_eq!(y.min(3), y);
        }
    }
}
