//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this shim implements the subset of proptest's API that the repository's
//! property tests use:
//!
//! * the [`Strategy`] trait, implemented for integer ranges
//!   (`0u64..1000`, `1usize..=6`), [`Just`], `prop_oneof!` unions, and the
//!   [`collection`] combinators `vec` / `hash_set`;
//! * the `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {} }`
//!   macro, which expands each test into a deterministic multi-case loop;
//! * `prop_assert!` / `prop_assert_eq!`, which fail the enclosing case with
//!   a formatted message.
//!
//! Differences from real proptest: cases are drawn from a deterministic
//! per-test RNG (seeded from the test's name) rather than an entropy source,
//! and shrinking is greedy rather than value-tree based: when a case fails,
//! each argument's strategy proposes simpler candidates ([`Strategy::shrink`]
//! — integers step toward the range start, `Vec`s drop halves, then single
//! elements, then shrink elements in place) and the first candidate that
//! still fails is adopted, restarting the scan, until no candidate fails or
//! `max_shrink_iters` (default 1024 when left at 0) re-runs are spent. The
//! panic message reports the minimized arguments. `PROPTEST_CASES` overrides
//! the case count globally. When the real crate is available the shim can be
//! deleted and the workspace dependency re-pointed without touching test
//! source.

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// splitmix64 — small, fast, and plenty for test-case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Deterministic stream derived from a test's name, so every run of
        /// the suite explores the same cases (reproducible failures without
        /// persistence files).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift; bias is immaterial for test-case generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A value generator. The shim's strategies sample directly (no value
/// trees); shrinking proposes simpler *candidate* values for a known-failing
/// one, and the test loop keeps a candidate only if it still fails.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. Every candidate
    /// must be strictly simpler than `value` under some well-founded order
    /// (the shrink loop bounds re-runs with `max_shrink_iters`, so even a
    /// sloppy implementation cannot hang, but termination should not rely on
    /// that). The default is no shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Strategy producing one fixed value (cloned per case).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Shrink candidates for an integer known to fail: jump straight to the
/// range's low end, then the midpoint, then one step down — simplest first,
/// all strictly between `lo` and `value`.
macro_rules! int_shrink_candidates {
    ($lo:expr, $value:expr) => {{
        let (lo, v) = ($lo, $value);
        let mut out = Vec::new();
        if v > lo {
            out.push(lo);
            let mid = lo + (v - lo) / 2;
            if mid != lo && mid != v {
                out.push(mid);
            }
            let down = v - 1;
            if down != lo && down != mid {
                out.push(down);
            }
        }
        out
    }};
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates!(self.start, *value)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates!(*self.start(), *value)
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty : $u:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, v) = (self.start as i128, *value as i128);
                int_shrink_candidates!(lo, v)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )+};
}

signed_range_strategy!(i32: u32, i64: u64);

/// Uniform choice between same-valued strategies — the target of
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.size.start;
            let n = value.len();
            let mut out = Vec::new();
            // Structural shrinks first — a shorter failing vec simplifies
            // far more than any element tweak. Halving gives logarithmic
            // descent; single-element removal finishes the job.
            if n > min {
                let half = (n / 2).max(min);
                if half < n {
                    out.push(value[..half].to_vec());
                    out.push(value[n - half..].to_vec());
                }
                for i in 0..n {
                    let mut w = value.clone();
                    w.remove(i);
                    out.push(w);
                }
            }
            // Then element-wise shrinks at the (possibly minimal) length.
            for i in 0..n {
                for cand in self.elem.shrink(&value[i]) {
                    let mut w = value.clone();
                    w[i] = cand;
                    out.push(w);
                }
            }
            out
        }
    }

    /// `proptest::collection::vec(elem, size_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash + Clone,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.clone().sample(rng);
            let mut out = HashSet::with_capacity(target);
            // Collisions only shrink the set; bound the attempts so narrow
            // domains terminate.
            for _ in 0..target.saturating_mul(4).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.sample(rng));
            }
            out
        }
        fn shrink(&self, value: &HashSet<S::Value>) -> Vec<HashSet<S::Value>> {
            // Remove one element at a time (sets have no positions to halve
            // deterministically); element-wise shrinking would need remove +
            // reinsert bookkeeping for little simplification value.
            if value.len() <= self.size.start {
                return Vec::new();
            }
            value
                .iter()
                .map(|drop| {
                    value
                        .iter()
                        .filter(|x| *x != drop)
                        .cloned()
                        .collect::<HashSet<S::Value>>()
                })
                .collect()
        }
    }

    /// `proptest::collection::hash_set(elem, size_range)`.
    pub fn hash_set<S: Strategy>(elem: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { elem, size }
    }
}

/// Tuple-of-strategies strategy: the `proptest!` macro bundles every bound
/// argument into one tuple so the shrink loop can simplify the whole failing
/// case at once (each position's candidates are tried with the other
/// positions held fixed).
macro_rules! tuple_strategy {
    ($( ( $( $s:ident : $idx:tt ),+ ) )+) => {$(
        impl<$( $s: Strategy ),+> Strategy for ($( $s, )+)
        where
            $( $s::Value: Clone ),+
        {
            type Value = ($( $s::Value, )+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.sample(rng), )+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut w = value.clone();
                        w.$idx = cand;
                        out.push(w);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy! {
    (S0: 0)
    (S0: 0, S1: 1)
    (S0: 0, S1: 1, S2: 2)
    (S0: 0, S1: 1, S2: 2, S3: 3)
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4)
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5)
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6)
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7)
}

/// The subset of proptest's config the repository uses. Extra fields can be
/// added as call sites need them.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; this shim never persists failures.
    pub failure_persistence: Option<&'static str>,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            failure_persistence: None,
        }
    }
}

impl ProptestConfig {
    /// Effective case count (`PROPTEST_CASES` env var overrides).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }

    /// Effective shrink budget: `0` (the default) means "use the shim
    /// default" rather than "don't shrink", matching real proptest where an
    /// unset knob still shrinks.
    pub fn effective_max_shrink_iters(&self) -> u32 {
        if self.max_shrink_iters == 0 {
            1024
        } else {
            self.max_shrink_iters
        }
    }
}

/// Run one case body against a (cloned) argument tuple. Only exists so the
/// `proptest!` expansion can hand the body to the compiler as a closure whose
/// parameter type is pinned to `S::Value` — a bare `|vals: &_|` closure would
/// need its parameter type before the body type-checks.
#[doc(hidden)]
pub fn check_case<S, F>(strat: &S, vals: &S::Value, body: F) -> Result<(), TestCaseError>
where
    S: Strategy,
    S::Value: Clone,
    F: FnOnce(S::Value) -> Result<(), TestCaseError>,
{
    let _ = strat;
    body(vals.clone())
}

/// Failure raised by `prop_assert!`-family macros inside a case body.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( Box::new($arm) as Box<dyn $crate::Strategy<Value = _>> ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}"
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`: {}\n  left: {l:?}\n right: {r:?}",
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {l:?}"
            )));
        }
    }};
}

/// `proptest! { ... }` — expands each `#[test] fn f(x in strat, ...)` into a
/// multi-case deterministic loop.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                // One tuple strategy over all bound arguments, so shrinking
                // simplifies the whole failing case.
                let __strat = ( $( $strat, )+ );
                for case in 0..config.effective_cases() {
                    let mut __vals = $crate::Strategy::sample(&__strat, &mut rng);
                    let outcome = $crate::check_case(&__strat, &__vals, |( $( $arg, )+ )| {
                        $body
                        Ok(())
                    });
                    if let Err(first_err) = outcome {
                        // Greedy shrink: adopt the first candidate that
                        // still fails, rescan from the top, stop when no
                        // candidate fails or the re-run budget is spent.
                        let mut last_err = first_err;
                        let mut budget = config.effective_max_shrink_iters();
                        'shrinking: loop {
                            let mut improved = false;
                            for cand in $crate::Strategy::shrink(&__strat, &__vals) {
                                if budget == 0 {
                                    break 'shrinking;
                                }
                                budget -= 1;
                                let retry = $crate::check_case(&__strat, &cand, |( $( $arg, )+ )| {
                                    $body
                                    Ok(())
                                });
                                if let Err(e) = retry {
                                    __vals = cand;
                                    last_err = e;
                                    improved = true;
                                    break;
                                }
                            }
                            if !improved {
                                break;
                            }
                        }
                        let ( $( $arg, )+ ) = __vals;
                        panic!(
                            "proptest case {case}/{} of `{}` failed: {last_err}\n\
                             minimal failing input (after shrinking): {:?}",
                            config.effective_cases(),
                            stringify!($name),
                            ( $( $arg, )+ )
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0u32..=10).sample(&mut rng);
            assert!(w <= 10);
            let s = (1usize..6).sample(&mut rng);
            assert!((1..6).contains(&s));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let u = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::new(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(u.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::new(3);
        let v = collection::vec(0u64..100, 5..6).sample(&mut rng);
        assert_eq!(v.len(), 5);
        let s = collection::hash_set(0u64..1_000_000, 3..10).sample(&mut rng);
        assert!(!s.is_empty() && s.len() < 10);
    }

    #[test]
    fn deterministic_per_label() {
        let mut a = TestRng::deterministic("case");
        let mut b = TestRng::deterministic("case");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_and_asserts(x in 0u64..100, y in 1usize..4) {
            prop_assert!(x < 100, "x out of range: {x}");
            prop_assert_eq!(y.min(3), y);
        }
    }

    #[test]
    fn integer_shrink_steps_toward_range_start() {
        let s = 10u64..100;
        let c = s.shrink(&57);
        assert_eq!(c, vec![10, 33, 56]);
        assert!(s.shrink(&10).is_empty(), "range start must not shrink");
        assert_eq!((5u32..=9).shrink(&6), vec![5]);
        assert_eq!((-10i64..10).shrink(&3), vec![-10, -4, 2]);
    }

    #[test]
    fn vec_shrink_halves_removes_and_respects_min_size() {
        let s = collection::vec(1u64..10, 2..8);
        let v = vec![4, 5, 6, 7];
        let c = s.shrink(&v);
        // Halving first (both halves), then 4 single removals, then
        // element-wise candidates.
        assert_eq!(c[0], vec![4, 5]);
        assert_eq!(c[1], vec![6, 7]);
        assert_eq!(c[2], vec![5, 6, 7]);
        assert!(c.iter().all(|w| w.len() >= 2), "candidate under min size");
        assert!(c.contains(&vec![1, 5, 6, 7]), "no element-wise shrink");
        // At the minimum length only element shrinks remain.
        assert!(s.shrink(&vec![1, 1]).is_empty());
        assert!(s
            .shrink(&vec![3, 1])
            .iter()
            .all(|w| w.len() == 2 && w[1] == 1));
    }

    #[test]
    fn hash_set_shrink_removes_one_element() {
        let s = collection::hash_set(0u64..100, 1..10);
        let v: HashSet<u64> = [1, 2, 3].into_iter().collect();
        let c = s.shrink(&v);
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|w| w.len() == 2 && w.is_subset(&v)));
        let singleton: HashSet<u64> = [7].into_iter().collect();
        assert!(s.shrink(&singleton).is_empty(), "min size 1 violated");
    }

    #[test]
    fn tuple_shrink_varies_one_position_at_a_time() {
        let s = (2u64..10, 3usize..9);
        let c = s.shrink(&(5, 4));
        assert!(c.contains(&(2, 4)) && c.contains(&(5, 3)));
        assert!(
            c.iter().all(|&(a, b)| (a, b) != (2, 3)),
            "shrink must not move both positions in one candidate"
        );
    }

    // Deliberately failing property (not a #[test]: driven via catch_unwind
    // below): any vec with ≥ 3 elements fails, so greedy shrinking must
    // bottom out at exactly three range-minimum elements.
    proptest! {
        #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

        fn fails_on_len3(v in collection::vec(1u64..10, 0..16)) {
            prop_assert!(v.len() < 3, "too long: {v:?}");
        }
    }

    #[test]
    fn shrink_loop_reaches_the_minimal_counterexample() {
        let err = std::panic::catch_unwind(fails_on_len3).expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic carries a String");
        assert!(
            msg.contains("([1, 1, 1],)"),
            "not shrunk to the minimal case: {msg}"
        );
    }

    // Always-failing property with a tight shrink budget: counts how many
    // times the body runs to prove `max_shrink_iters` is honored.
    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 1,
            max_shrink_iters: 2,
            ..ProptestConfig::default()
        })]

        fn always_fails_counted(x in 0u64..1_000_000) {
            BODY_RUNS.with(|c| c.set(c.get() + 1));
            prop_assert!(x == u64::MAX, "never true");
        }
    }

    thread_local! {
        static BODY_RUNS: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    }

    #[test]
    fn max_shrink_iters_bounds_shrink_reruns() {
        BODY_RUNS.with(|c| c.set(0));
        let _ = std::panic::catch_unwind(always_fails_counted);
        let runs = BODY_RUNS.with(|c| c.get());
        // 1 initial run + at most 2 shrink re-runs.
        assert!(
            (1..=3).contains(&runs),
            "body ran {runs} times under a budget of 2"
        );
    }

    #[test]
    fn zero_budget_means_default_not_off() {
        let cfg = ProptestConfig::default();
        assert_eq!(cfg.max_shrink_iters, 0);
        assert_eq!(cfg.effective_max_shrink_iters(), 1024);
        let cfg = ProptestConfig {
            max_shrink_iters: 7,
            ..ProptestConfig::default()
        };
        assert_eq!(cfg.effective_max_shrink_iters(), 7);
    }
}
