//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no access to crates.io, so
//! this shim implements the *subset* of criterion's API that the `dstm-bench`
//! targets use — `criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, and `black_box` — with a
//! simple but honest measurement loop:
//!
//! * each benchmark is warmed up for a fixed wall-clock budget,
//! * then sampled `sample_size` times, each sample running enough iterations
//!   to exceed a minimum measurable duration,
//! * and the median / mean / min per-iteration times are reported on stdout
//!   in a `name  median  mean  min` table, plus machine-readable lines
//!   (`BENCH_JSON {...}`) that tooling (`scripts`, `BENCH_*.json` recorders)
//!   can scrape.
//!
//! It intentionally has **no** statistical regression machinery; numbers are
//! for tracking relative changes between commits of this repository. When the
//! real criterion crate is available the shim can be deleted and the
//! workspace dependency re-pointed without touching any bench source.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Measurement settings shared by `Criterion` and groups.
#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    /// Minimum wall-clock time one sample must cover (iterations are batched
    /// until a sample takes at least this long).
    min_sample: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 30,
            warm_up: Duration::from_millis(300),
            min_sample: Duration::from_millis(2),
        }
    }
}

/// Identifier of a parameterized benchmark, e.g. `binary-heap/10000`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The per-benchmark measurement driver handed to closures.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// Collected per-iteration nanosecond estimates, one per sample.
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly and record per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is consumed, measuring how
        // many iterations fit so samples can be batched appropriately.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.settings.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        // Batch enough iterations per sample to exceed the minimum sample
        // duration, bounding timer-resolution noise for nanosecond routines.
        let batch = ((self.settings.min_sample.as_secs_f64() / per_iter).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.settings.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / batch as f64);
        }
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Report {
    pub name: String,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub samples: usize,
}

impl Report {
    fn from_samples(name: String, samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = sorted.len().max(1);
        let median_ns = if sorted.is_empty() {
            0.0
        } else if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let mean_ns = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / n as f64
        };
        let min_ns = sorted.first().copied().unwrap_or(0.0);
        Report {
            name,
            median_ns,
            mean_ns,
            min_ns,
            samples: sorted.len(),
        }
    }

    fn print(&self) {
        println!(
            "{:<48} median {:>12}  mean {:>12}  min {:>12}",
            self.name,
            fmt_ns(self.median_ns),
            fmt_ns(self.mean_ns),
            fmt_ns(self.min_ns)
        );
        // Machine-readable line for result recorders.
        println!(
            "BENCH_JSON {{\"name\":\"{}\",\"median_ns\":{:.2},\"mean_ns\":{:.2},\"min_ns\":{:.2},\"samples\":{}}}",
            self.name, self.median_ns, self.mean_ns, self.min_ns, self.samples
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Top-level benchmark context (a subset of criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
    filter: Option<String>,
}

impl Criterion {
    /// Accept a benchmark-name substring filter from the command line
    /// (`cargo bench -p dstm-bench --bench micro -- <filter>`); flags that
    /// the real criterion accepts (e.g. `--bench`) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let arg = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self.filter = arg;
        self
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher<'_>)) {
        if !self.enabled(name) {
            return;
        }
        let mut b = Bencher {
            settings: &self.settings,
            samples: Vec::new(),
        };
        f(&mut b);
        Report::from_samples(name.to_string(), &b.samples).print();
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            settings_override: None,
        }
    }
}

/// A named group of related benchmarks (subset of criterion's API).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    settings_override: Option<Settings>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let mut s = self
            .settings_override
            .clone()
            .unwrap_or_else(|| self.parent.settings.clone());
        s.sample_size = n.max(2);
        self.settings_override = Some(s);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        let mut s = self
            .settings_override
            .clone()
            .unwrap_or_else(|| self.parent.settings.clone());
        s.warm_up = d;
        self.settings_override = Some(s);
        self
    }

    fn run_one(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher<'_>)) {
        let full = format!("{}/{}", self.name, id);
        if !self.parent.enabled(&full) {
            return;
        }
        let settings = self
            .settings_override
            .clone()
            .unwrap_or_else(|| self.parent.settings.clone());
        let mut b = Bencher {
            settings: &settings,
            samples: Vec::new(),
        };
        f(&mut b);
        Report::from_samples(full, &b.samples).print();
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(id.id, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.id, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Matches `criterion_group!(name, target1, target2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Matches `criterion_main!(group1, group2, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let settings = Settings {
            sample_size: 5,
            warm_up: Duration::from_millis(5),
            min_sample: Duration::from_micros(200),
        };
        let mut b = Bencher {
            settings: &settings,
            samples: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            black_box(acc)
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn report_median_of_even_and_odd() {
        let r = Report::from_samples("t".into(), &[3.0, 1.0, 2.0]);
        assert_eq!(r.median_ns, 2.0);
        let r = Report::from_samples("t".into(), &[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(r.median_ns, 2.5);
        assert_eq!(r.min_ns, 1.0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("heap", 1000);
        assert_eq!(id.id, "heap/1000");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
