//! Executable form of the §III-D makespan analysis.
//!
//! The paper bounds the makespan of `N` transactions that all update one
//! object held at node `n0`:
//!
//! * **Lemma 3.1** — under an abort-and-queue scheduler `B`, at most `N − 1`
//!   aborts occur in total;
//! * **Lemma 3.2** — `makespan_B(N) ≤ 2(N−1)·Σ d(n0, ni) + Σ γi`
//!   (every abort re-pays the full fetch round-trip);
//! * **Lemma 3.3** — `makespan_RTS(N) ≤ Σ d(n0, ni) + Σ d(n(i−1), n(i)) + Σ γi`
//!   (the object is handed directly down the queue);
//! * **Theorem 3.4** — the relative competitive ratio
//!   `RCR = makespan_RTS / makespan_B < 1` for `N ≥ 2`, via the
//!   Rosenkrantz et al. nearest-neighbour bound
//!   `Σ d(n(i−1), n(i)) / Σ d(n0, ni) < log N`.
//!
//! These functions compute the bounds on concrete [`Topology`] instances so
//! the `analysis_makespan` bench can tabulate them next to simulated
//! makespans.

use dstm_net::Topology;
use dstm_sim::{ActorId, SimDuration};

/// Lemma 3.1: the abort bound for scheduler B over `n` transactions.
pub fn worst_case_aborts_bound(n: usize) -> usize {
    n.saturating_sub(1)
}

/// `Σ_i γ_i` helper.
fn total_local(gammas: &[SimDuration]) -> u128 {
    gammas.iter().map(|g| g.as_nanos() as u128).sum()
}

/// Lemma 3.2: upper bound on scheduler B's makespan, in nanoseconds.
///
/// `home` is the node holding the contended object; `gammas[i]` is the local
/// execution time of the transaction invoked at node `i`.
pub fn makespan_b_bound(topo: &Topology, home: ActorId, gammas: &[SimDuration]) -> u128 {
    let n = topo.n();
    assert_eq!(gammas.len(), n);
    let sum_d: u128 = (0..n)
        .map(|i| topo.delay(home, ActorId(i as u32)).as_nanos() as u128)
        .sum();
    2 * (n as u128 - 1) * sum_d + total_local(gammas)
}

/// Lemma 3.3: upper bound on RTS's makespan for a given queue `order`
/// (a permutation of all nodes), in nanoseconds.
pub fn makespan_rts_bound(
    topo: &Topology,
    home: ActorId,
    order: &[ActorId],
    gammas: &[SimDuration],
) -> u128 {
    let n = topo.n();
    assert_eq!(gammas.len(), n);
    assert_eq!(order.len(), n);
    let sum_d: u128 = (0..n)
        .map(|i| topo.delay(home, ActorId(i as u32)).as_nanos() as u128)
        .sum();
    let tour: u128 = order
        .windows(2)
        .map(|w| topo.delay(w[0], w[1]).as_nanos() as u128)
        .sum();
    sum_d + tour + total_local(gammas)
}

/// The relative competitive ratio of the two *bounds*, using the
/// nearest-neighbour queue order for RTS (the order RTS would serve if
/// handed the object greedily). `< 1` means RTS's bound is tighter.
pub fn rcr_bound(topo: &Topology, home: ActorId, gammas: &[SimDuration]) -> f64 {
    let order = topo.nearest_neighbour_tour(home);
    let rts = makespan_rts_bound(topo, home, &order, gammas) as f64;
    let b = makespan_b_bound(topo, home, gammas) as f64;
    rts / b
}

/// Theorem 3.4's premise on a concrete topology: the NN-tour-to-star ratio
/// `Σ d(n(i−1), n(i)) / Σ d(n0, ni)`, to be compared against `log₂ N` and
/// `2N − 3`.
pub fn tour_to_star_ratio(topo: &Topology, home: ActorId) -> f64 {
    let n = topo.n();
    let order = topo.nearest_neighbour_tour(home);
    let tour: f64 = order
        .windows(2)
        .map(|w| topo.delay(w[0], w[1]).as_nanos() as f64)
        .sum();
    let star: f64 = (0..n)
        .map(|i| topo.delay(home, ActorId(i as u32)).as_nanos() as f64)
        .sum();
    if star == 0.0 {
        0.0
    } else {
        tour / star
    }
}

/// Check Theorem 3.4 on a concrete instance. Note the paper's inequality
/// `log N < 2N − 3` is an equality at `N = 2` (both sides are 1), where the
/// two makespan bounds coincide; the strict claim holds from `N ≥ 3`, so we
/// check `RCR ≤ 1` at `N ≤ 2` and `RCR < 1` beyond.
pub fn theorem_3_4_holds(topo: &Topology, home: ActorId, gammas: &[SimDuration]) -> bool {
    let rcr = rcr_bound(topo, home, gammas);
    if topo.n() <= 2 {
        rcr <= 1.0
    } else {
        rcr < 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstm_sim::SimRng;

    fn gammas(n: usize, ms: u64) -> Vec<SimDuration> {
        vec![SimDuration::from_millis(ms); n]
    }

    #[test]
    fn abort_bound() {
        assert_eq!(worst_case_aborts_bound(0), 0);
        assert_eq!(worst_case_aborts_bound(1), 0);
        assert_eq!(worst_case_aborts_bound(10), 9);
    }

    #[test]
    fn bounds_on_complete_topology() {
        // Complete graph, constant delay 10 ms, N = 5, gamma = 1 ms.
        let topo = Topology::complete(5, 10);
        let home = ActorId(0);
        let g = gammas(5, 1);
        // sum_d from home = 4 * 10 ms.
        let b = makespan_b_bound(&topo, home, &g);
        assert_eq!(b, 2 * 4 * 40_000_000 + 5_000_000);
        let order: Vec<ActorId> = (0..5).map(ActorId).collect();
        let rts = makespan_rts_bound(&topo, home, &order, &g);
        assert_eq!(rts, 40_000_000 + 4 * 10_000_000 + 5_000_000);
        assert!(rts < b);
    }

    #[test]
    fn theorem_holds_on_metric_instances() {
        let mut rng = SimRng::new(11);
        for n in [2usize, 5, 10, 40, 80] {
            let topo = Topology::metric_plane(n, 50.0, 1, &mut rng);
            let g = gammas(n, 2);
            assert!(
                theorem_3_4_holds(&topo, ActorId(0), &g),
                "theorem violated at n={n}"
            );
        }
    }

    #[test]
    fn theorem_trivial_below_two() {
        let topo = Topology::complete(1, 10);
        assert!(theorem_3_4_holds(&topo, ActorId(0), &gammas(1, 1)));
    }

    #[test]
    fn tour_ratio_below_linear_bound() {
        let mut rng = SimRng::new(12);
        for n in [4usize, 16, 64] {
            let topo = Topology::metric_plane(n, 50.0, 1, &mut rng);
            let r = tour_to_star_ratio(&topo, ActorId(0));
            assert!(r < (2 * n - 3) as f64, "NN ratio {r} exceeds 2N-3 at n={n}");
        }
    }

    #[test]
    fn rcr_shrinks_with_n() {
        // With constant delays the bound ratio behaves like ~1/N.
        let g2 = gammas(2, 0);
        let g40 = gammas(40, 0);
        let t2 = Topology::complete(2, 10);
        let t40 = Topology::complete(40, 10);
        let r2 = rcr_bound(&t2, ActorId(0), &g2);
        let r40 = rcr_bound(&t40, ActorId(0), &g40);
        assert!(r40 < r2, "RCR should tighten as N grows: {r2} vs {r40}");
        assert!(r2 <= 1.0, "bounds coincide at N=2");
        assert!(r40 < 0.1);
    }
}
