//! The execution-time structure (ETS) of §III-B/Algorithm 2.
//!
//! Every object request carries three timestamps: *"The requesting message
//! for each transaction includes three timestamps: the starting, requesting,
//! and expected commit time of a transaction"*. The owner-side scheduler
//! compares these against its accumulated backlog to decide between abort
//! and enqueue.

use dstm_sim::{SimDuration, SimTime};

/// Start / request / expected-commit timestamps of a requesting transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ets {
    /// When the transaction (this attempt) began executing: `ETS.s`.
    pub start: SimTime,
    /// When this object request was issued: `ETS.r`.
    pub request: SimTime,
    /// When the transaction expects to commit (from the stats table): `ETS.c`.
    pub expected_commit: SimTime,
}

impl Ets {
    pub fn new(start: SimTime, request: SimTime, expected_commit: SimTime) -> Self {
        Ets {
            start,
            request,
            expected_commit,
        }
    }

    /// How long the transaction has already executed when it issued this
    /// request: `| ETS.r − ETS.s |`. RTS prefers to *enqueue* transactions
    /// that have a lot of completed work (long execution so far) rather than
    /// throw that work away.
    #[inline]
    pub fn executed_so_far(&self) -> SimDuration {
        self.request.saturating_since(self.start)
    }

    /// The transaction's expected *remaining* execution after this request:
    /// `| ETS.c − ETS.r |`. This is the amount an enqueued predecessor is
    /// expected to delay its successors, so Algorithm 3 accumulates it into
    /// the per-object backoff `bk`.
    #[inline]
    pub fn expected_remaining(&self) -> SimDuration {
        self.expected_commit.saturating_since(self.request)
    }

    /// Total expected execution time `| ETS.c − ETS.s |`.
    #[inline]
    pub fn expected_total(&self) -> SimDuration {
        self.expected_commit.saturating_since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    #[test]
    fn derived_durations() {
        let ets = Ets::new(t(10), t(25), t(60));
        assert_eq!(ets.executed_so_far().as_millis(), 15);
        assert_eq!(ets.expected_remaining().as_millis(), 35);
        assert_eq!(ets.expected_total().as_millis(), 50);
    }

    #[test]
    fn saturates_when_estimates_are_stale() {
        // A transaction that ran past its expected commit time.
        let ets = Ets::new(t(10), t(90), t(60));
        assert_eq!(ets.expected_remaining(), SimDuration::ZERO);
        assert_eq!(ets.executed_so_far().as_millis(), 80);
    }
}
