//! An in-tree FxHash-style hasher for the protocol-layer maps.
//!
//! The stack's map keys are tiny fixed-size ids ([`crate::ObjectId`],
//! [`crate::TxId`], [`crate::TxKind`]), for which `std`'s SipHash-1-3 — a
//! keyed hash hardened against collision flooding — is pure overhead: every
//! message handler in the protocol layer pays ~3× the lookup cost for a
//! DoS-resistance property a deterministic simulator does not need. This is
//! the classic Firefox/rustc "Fx" multiply-rotate hash: one rotate, one
//! xor, one multiply per word.
//!
//! Determinism note: unlike `RandomState`, this hasher is fixed, so map
//! iteration order is reproducible across processes. No protocol behaviour
//! may depend on map iteration order either way (the differential golden
//! tests pin that down), but reproducible order removes a whole class of
//! accidental nondeterminism when debugging.

use std::hash::{BuildHasherDefault, Hasher};

/// 2^64 / φ, the usual Fibonacci-hashing multiplier.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// A Firefox-style multiply-rotate hasher for small integer keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher. Construct with
/// `FxHashMap::default()` (the `new()` constructor is `RandomState`-only).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjectId, TxId};
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        for oid in 0..1000u64 {
            assert_eq!(hash_of(&ObjectId(oid)), hash_of(&ObjectId(oid)));
        }
        assert_eq!(hash_of(&TxId::new(3, 17)), hash_of(&TxId::new(3, 17)));
    }

    #[test]
    fn small_ids_spread() {
        // Consecutive object ids must not collide in the low bits the map
        // actually uses for bucketing.
        // Ideal random hashing fills ~63% of 128 buckets from 128 keys; a
        // degenerate hash (identity, constant) fills far fewer. Fx lands in
        // between — accept anything comfortably above degenerate.
        let mut top7 = std::collections::HashSet::new();
        for oid in 0..128u64 {
            top7.insert(hash_of(&ObjectId(oid)) >> 57);
        }
        assert!(top7.len() > 40, "top-bit spread too weak: {}", top7.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<ObjectId, u64> = FxHashMap::default();
        for i in 0..500u64 {
            m.insert(ObjectId(i), i * 3);
        }
        for i in 0..500u64 {
            assert_eq!(m.get(&ObjectId(i)), Some(&(i * 3)));
        }
        assert_eq!(m.len(), 500);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is 23");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is 23");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, this is 24");
        assert_ne!(a.finish(), c.finish());
    }
}
