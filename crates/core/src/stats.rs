//! The transaction stats table of §III-B.
//!
//! *"To compute a backoff time, we use a transaction stats table that stores
//! the average historical validation time of a transaction. Each table entry
//! holds a bloom filter representation of the most current successful commit
//! times of write transactions. Whenever a transaction starts, an expected
//! commit time is picked up from the table."*
//!
//! Our reading (the paper is terse here): entries are keyed by transaction
//! *kind*; each entry keeps
//!
//! * an exponentially weighted moving average (EWMA) of successful execution
//!   times — the numeric estimate handed out as "expected commit time", and
//! * a Bloom-filter sketch of recent commit times quantized to a bucket
//!   width, answering "have transactions of this kind recently committed in
//!   about `d`?" — used to sanity-check the EWMA against the most current
//!   behaviour (if the EWMA's bucket is no longer in the sketch, the
//!   workload shifted and we widen the estimate).
//!
//! The substitution is documented in `DESIGN.md` §4.5.

use crate::bloom::BloomFilter;
use crate::fx::FxHashMap;
use crate::ids::TxKind;
use dstm_sim::{SimDuration, SimTime};

/// Quantization bucket for commit times entering the Bloom sketch.
const SKETCH_BUCKET_NANOS: u64 = 100_000; // 100 µs

/// EWMA smoothing factor (weight of the newest sample).
const EWMA_ALPHA: f64 = 0.25;

/// Refresh the Bloom sketch after this many insertions so it tracks only
/// "the most current" commits.
const SKETCH_REFRESH: u64 = 256;

#[derive(Clone, Debug)]
struct KindStats {
    ewma_exec_nanos: f64,
    ewma_validation_nanos: f64,
    commits: u64,
    sketch: BloomFilter,
}

impl KindStats {
    fn new() -> Self {
        KindStats {
            ewma_exec_nanos: 0.0,
            ewma_validation_nanos: 0.0,
            commits: 0,
            sketch: BloomFilter::with_capacity(SKETCH_REFRESH as usize, 0.02),
        }
    }
}

/// Per-node table of expected execution/validation times by transaction kind.
#[derive(Clone, Debug)]
pub struct StatsTable {
    entries: FxHashMap<TxKind, KindStats>,
    /// Estimate handed out before any commit of a kind has been observed.
    default_exec: SimDuration,
}

impl StatsTable {
    /// `default_exec` seeds estimates for kinds with no history yet (a
    /// couple of round-trips is a sensible prior in the harness).
    pub fn new(default_exec: SimDuration) -> Self {
        StatsTable {
            entries: FxHashMap::default(),
            default_exec,
        }
    }

    /// Record a successful commit: total execution time (start → commit) and
    /// the validation (commit-protocol) portion.
    pub fn record_commit(&mut self, kind: TxKind, exec: SimDuration, validation: SimDuration) {
        let e = self.entries.entry(kind).or_insert_with(KindStats::new);
        if e.commits == 0 {
            e.ewma_exec_nanos = exec.as_nanos() as f64;
            e.ewma_validation_nanos = validation.as_nanos() as f64;
        } else {
            e.ewma_exec_nanos =
                EWMA_ALPHA * exec.as_nanos() as f64 + (1.0 - EWMA_ALPHA) * e.ewma_exec_nanos;
            e.ewma_validation_nanos = EWMA_ALPHA * validation.as_nanos() as f64
                + (1.0 - EWMA_ALPHA) * e.ewma_validation_nanos;
        }
        e.commits += 1;
        if e.commits.is_multiple_of(SKETCH_REFRESH) {
            e.sketch.clear(); // keep only "the most current" commit times
        }
        e.sketch.insert(exec.as_nanos() / SKETCH_BUCKET_NANOS);
    }

    /// Expected execution time for `kind` (EWMA, or the default prior). If
    /// the EWMA's bucket has fallen out of the recent-commit sketch, the
    /// estimate is widened by 50% — the workload has drifted and optimistic
    /// backoffs would expire early, aborting enqueued parents (§IV-B warns
    /// that "anticipating an exact execution time is too optimistic").
    pub fn expected_exec(&self, kind: TxKind) -> SimDuration {
        match self.entries.get(&kind) {
            None => self.default_exec,
            Some(e) if e.commits == 0 => self.default_exec,
            Some(e) => {
                let est = e.ewma_exec_nanos as u64;
                let bucket = est / SKETCH_BUCKET_NANOS;
                let fresh = e.sketch.contains(bucket)
                    || e.sketch.contains(bucket.saturating_sub(1))
                    || e.sketch.contains(bucket + 1);
                if fresh {
                    SimDuration::from_nanos(est)
                } else {
                    SimDuration::from_nanos(est + est / 2)
                }
            }
        }
    }

    /// Expected validation (commit-protocol) time for `kind`.
    pub fn expected_validation(&self, kind: TxKind) -> SimDuration {
        match self.entries.get(&kind) {
            Some(e) if e.commits > 0 => SimDuration::from_nanos(e.ewma_validation_nanos as u64),
            _ => self.default_exec / 2,
        }
    }

    /// The expected commit *instant* for a transaction of `kind` starting
    /// now — this is `ETS.c` stamped into outgoing requests.
    pub fn expected_commit_time(&self, kind: TxKind, start: SimTime) -> SimTime {
        start + self.expected_exec(kind)
    }

    /// Commits observed for `kind`.
    pub fn commits(&self, kind: TxKind) -> u64 {
        self.entries.get(&kind).map_or(0, |e| e.commits)
    }

    pub fn kinds_tracked(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: TxKind = TxKind(3);

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn default_before_any_history() {
        let t = StatsTable::new(ms(20));
        assert_eq!(t.expected_exec(K), ms(20));
        assert_eq!(t.expected_validation(K), ms(10));
        assert_eq!(t.commits(K), 0);
    }

    #[test]
    fn first_commit_sets_estimate() {
        let mut t = StatsTable::new(ms(20));
        t.record_commit(K, ms(40), ms(8));
        assert_eq!(t.expected_exec(K), ms(40));
        assert_eq!(t.expected_validation(K), ms(8));
        assert_eq!(t.commits(K), 1);
    }

    #[test]
    fn ewma_tracks_shift() {
        let mut t = StatsTable::new(ms(20));
        for _ in 0..50 {
            t.record_commit(K, ms(10), ms(2));
        }
        let low = t.expected_exec(K);
        for _ in 0..50 {
            t.record_commit(K, ms(100), ms(2));
        }
        let high = t.expected_exec(K);
        assert!(
            high > low * 5,
            "EWMA failed to track shift: {low} -> {high}"
        );
    }

    #[test]
    fn expected_commit_time_offsets_start() {
        let mut t = StatsTable::new(ms(20));
        t.record_commit(K, ms(30), ms(5));
        let start = SimTime(1_000_000_000);
        assert_eq!(t.expected_commit_time(K, start), start + ms(30));
    }

    #[test]
    fn stale_sketch_widens_estimate() {
        let mut t = StatsTable::new(ms(20));
        // Exactly SKETCH_REFRESH commits at 10ms: the refresh clears the
        // sketch and reinserts only the last sample...
        for _ in 0..SKETCH_REFRESH {
            t.record_commit(K, ms(10), ms(2));
        }
        // ... so the 10ms bucket is still fresh here.
        assert_eq!(t.expected_exec(K), ms(10));
        // Now shift the workload: new samples land at 200 ms, but the EWMA
        // lags in between, in buckets the sketch has never seen -> widened.
        t.record_commit(K, ms(200), ms(2));
        let est = t.expected_exec(K);
        let ewma = SimDuration::from_nanos(
            (0.25 * ms(200).as_nanos() as f64 + 0.75 * ms(10).as_nanos() as f64) as u64,
        );
        assert_eq!(
            est,
            ewma + ewma.mul_ratio(1, 2),
            "estimate should widen by 50%"
        );
    }

    #[test]
    fn kinds_are_independent() {
        let mut t = StatsTable::new(ms(20));
        t.record_commit(TxKind(1), ms(10), ms(1));
        t.record_commit(TxKind(2), ms(90), ms(1));
        assert_eq!(t.expected_exec(TxKind(1)), ms(10));
        assert_eq!(t.expected_exec(TxKind(2)), ms(90));
        assert_eq!(t.kinds_tracked(), 2);
    }
}
