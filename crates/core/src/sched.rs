//! The scheduling table of Algorithm 1.
//!
//! Each object owner keeps, per object, a linked list of enqueued requesters
//! plus a contention level and an accumulated backoff `bk` (*"static
//! variables bks represent backoff times for each object. An object owner
//! holds as many bks as holding objects and updates corresponding bks
//! whenever a transaction is enqueued"*). `scheduling_List` maps object ids
//! to those lists.

use crate::fx::FxHashMap;
use crate::ids::{ObjectId, TxId};
use dstm_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One enqueued requester (Algorithm 1's `Requester`: address + txid; we
/// also keep the access mode for the read fan-out of §III-B and the enqueue
/// time for diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Requester {
    /// The requesting node ("Address" in the paper).
    pub node: u32,
    pub tx: TxId,
    /// Read requests at the queue head are all served simultaneously.
    pub read_only: bool,
    /// The requester's attempt number at enqueue time; grants carrying a
    /// stale attempt are declined by the requester.
    pub attempt: u32,
    pub enqueued_at: SimTime,
}

/// Per-object requester queue (`Requester_List`).
#[derive(Clone, Debug, Default)]
pub struct RequesterList {
    requesters: VecDeque<Requester>,
    contention_level: u32,
    /// Accumulated backoff for this object: each enqueue adds the enqueued
    /// transaction's expected remaining execution, so later requesters see
    /// the whole backlog.
    bk: SimDuration,
}

impl RequesterList {
    pub fn new() -> Self {
        RequesterList::default()
    }

    /// `addRequester(Contention_Level, Requester)`: append and record the
    /// contention level observed at enqueue time.
    pub fn add_requester(&mut self, contention: u32, req: Requester) {
        self.contention_level = contention;
        self.requesters.push_back(req);
    }

    /// `removeDuplicate(Address)`: drop any stale entry of the same
    /// transaction (a requester whose backoff expired re-requests as new;
    /// *"the duplicated transaction will be removed from a queue"*).
    /// Returns `true` if a duplicate was removed.
    pub fn remove_duplicate(&mut self, tx: TxId) -> bool {
        let before = self.requesters.len();
        self.requesters.retain(|r| r.tx != tx);
        before != self.requesters.len()
    }

    /// `getContention()`: the contention level recorded for this queue.
    pub fn get_contention(&self) -> u32 {
        self.contention_level
    }

    /// Current accumulated backlog `bk`.
    pub fn bk(&self) -> SimDuration {
        self.bk
    }

    /// Extend the backlog by an enqueued transaction's expected remaining
    /// execution time; returns the new total (the backoff assigned to it).
    pub fn extend_bk(&mut self, d: SimDuration) -> SimDuration {
        self.bk += d;
        self.bk
    }

    pub fn len(&self) -> usize {
        self.requesters.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requesters.is_empty()
    }

    pub fn front(&self) -> Option<&Requester> {
        self.requesters.front()
    }

    pub fn pop_front(&mut self) -> Option<Requester> {
        let r = self.requesters.pop_front();
        if self.requesters.is_empty() {
            // Queue drained: the backlog is gone.
            self.bk = SimDuration::ZERO;
            self.contention_level = 0;
        }
        r
    }

    /// Pop the maximal prefix of requesters to serve next: either one writer,
    /// or *all* consecutive readers at the head (*"o1 updated by T2 will
    /// simultaneously be sent to T4, T5 and T6, increasing the concurrency of
    /// the read transactions"*).
    pub fn pop_servable(&mut self) -> Vec<Requester> {
        let mut out = Vec::new();
        self.pop_servable_into(&mut out);
        out
    }

    /// Allocation-free form of [`RequesterList::pop_servable`]: appends the
    /// servable prefix to `out` (callers keep a reusable scratch buffer).
    pub fn pop_servable_into(&mut self, out: &mut Vec<Requester>) {
        match self.front() {
            None => {}
            Some(r) if !r.read_only => {
                out.push(self.pop_front().expect("front checked"));
            }
            Some(_) => {
                while matches!(self.front(), Some(r) if r.read_only) {
                    out.push(self.pop_front().expect("front checked"));
                }
            }
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = &Requester> {
        self.requesters.iter()
    }

    /// Remove and return every queued requester (ownership transfer: *"the
    /// node invoking the transaction receives Requester_Lists of each
    /// committed object"*). Resets the backlog.
    pub fn drain_all(&mut self) -> Vec<Requester> {
        let out: Vec<Requester> = self.requesters.drain(..).collect();
        self.bk = SimDuration::ZERO;
        self.contention_level = 0;
        out
    }
}

/// `scheduling_List`: object id → requester list.
#[derive(Clone, Debug, Default)]
pub struct SchedulingTable {
    map: FxHashMap<ObjectId, RequesterList>,
}

impl SchedulingTable {
    pub fn new() -> Self {
        SchedulingTable::default()
    }

    /// Get-or-create the list for `oid` (Algorithm 3 lines 6–8).
    pub fn list_mut(&mut self, oid: ObjectId) -> &mut RequesterList {
        self.map.entry(oid).or_default()
    }

    pub fn list(&self, oid: ObjectId) -> Option<&RequesterList> {
        self.map.get(&oid)
    }

    /// Remove an emptied list to keep the table small.
    pub fn gc(&mut self, oid: ObjectId) {
        if self.map.get(&oid).is_some_and(|l| l.is_empty()) {
            self.map.remove(&oid);
        }
    }

    /// Total queued requesters across all objects (diagnostics).
    pub fn total_queued(&self) -> usize {
        self.map.values().map(|l| l.len()).sum()
    }

    /// Requesters currently parked on one object (0 if no list exists).
    pub fn queue_depth(&self, oid: ObjectId) -> usize {
        self.map.get(&oid).map_or(0, |l| l.len())
    }

    /// Drop a transaction from every queue (it aborted or committed
    /// elsewhere). Returns how many entries were removed.
    pub fn purge_tx(&mut self, tx: TxId) -> usize {
        let mut removed = 0;
        for l in self.map.values_mut() {
            if l.remove_duplicate(tx) {
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(n: u64, read: bool) -> Requester {
        Requester {
            node: n as u32,
            tx: TxId::new(n as u32, n),
            read_only: read,
            attempt: 0,
            enqueued_at: SimTime(n),
        }
    }

    #[test]
    fn add_and_contention() {
        let mut l = RequesterList::new();
        l.add_requester(2, req(1, false));
        l.add_requester(4, req(2, false));
        assert_eq!(l.get_contention(), 4);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn duplicate_removal() {
        let mut l = RequesterList::new();
        l.add_requester(1, req(1, false));
        l.add_requester(2, req(2, false));
        assert!(l.remove_duplicate(TxId::new(1, 1)));
        assert!(!l.remove_duplicate(TxId::new(1, 1)));
        assert_eq!(l.len(), 1);
        assert_eq!(l.front().unwrap().tx, TxId::new(2, 2));
    }

    #[test]
    fn bk_accumulates_and_resets_on_drain() {
        let mut l = RequesterList::new();
        assert_eq!(l.bk(), SimDuration::ZERO);
        let b1 = l.extend_bk(SimDuration::from_millis(10));
        assert_eq!(b1.as_millis(), 10);
        l.add_requester(1, req(1, false));
        let b2 = l.extend_bk(SimDuration::from_millis(5));
        assert_eq!(b2.as_millis(), 15);
        l.pop_front();
        assert_eq!(l.bk(), SimDuration::ZERO, "bk resets when queue drains");
    }

    #[test]
    fn pop_servable_single_writer() {
        let mut l = RequesterList::new();
        l.add_requester(1, req(1, false));
        l.add_requester(2, req(2, false));
        let served = l.pop_servable();
        assert_eq!(served.len(), 1);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn pop_servable_read_fanout() {
        let mut l = RequesterList::new();
        l.add_requester(1, req(1, true));
        l.add_requester(2, req(2, true));
        l.add_requester(3, req(3, true));
        l.add_requester(4, req(4, false));
        let served = l.pop_servable();
        assert_eq!(served.len(), 3, "all consecutive readers served together");
        assert!(served.iter().all(|r| r.read_only));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn pop_servable_empty() {
        let mut l = RequesterList::new();
        assert!(l.pop_servable().is_empty());
    }

    #[test]
    fn table_gc_and_purge() {
        let mut t = SchedulingTable::new();
        t.list_mut(ObjectId(1)).add_requester(1, req(1, false));
        t.list_mut(ObjectId(2)).add_requester(1, req(1, false));
        t.list_mut(ObjectId(2)).add_requester(2, req(2, false));
        assert_eq!(t.total_queued(), 3);
        assert_eq!(t.queue_depth(ObjectId(2)), 2);
        assert_eq!(t.queue_depth(ObjectId(9)), 0);
        assert_eq!(t.purge_tx(TxId::new(1, 1)), 2);
        assert_eq!(t.total_queued(), 1);
        t.list_mut(ObjectId(1));
        t.gc(ObjectId(1));
        assert!(t.list(ObjectId(1)).is_none());
        assert!(t.list(ObjectId(2)).is_some());
    }
}
