//! Conflict decision policies — the schedulers compared in §IV.
//!
//! A conflict arises at an object owner when a request reaches an object
//! that is **locked** (being validated by a committing transaction) — the
//! second abort case of TFA (§II, Fig. 2). The owner consults its
//! [`ConflictPolicy`]:
//!
//! * [`TfaPolicy`] — plain TFA: the requester (parent) aborts and retries
//!   immediately, re-fetching every object;
//! * [`BackoffPolicy`] — "TFA+Backoff": the requester aborts and retries
//!   after an exponentially growing backoff;
//! * [`RtsPolicy`] — the paper's contribution (Algorithm 3): keep the
//!   requester **live and enqueued** when it has a lot of completed work and
//!   the contention level is below threshold; abort it otherwise.
//!
//! Policies are pure decision logic over the scheduling table; the network
//! side (sending `ObjResp`, arming backoff timers, forwarding objects to
//! queue heads on release) lives in `hyflow-dstm`.

use crate::ets::Ets;
use crate::ids::ObjectId;
use crate::sched::{Requester, SchedulingTable};
use crate::threshold::ThresholdController;
use dstm_sim::{SimDuration, SimTime};

/// Which scheduler a policy implements (reporting/config).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// TFA without a transactional scheduler.
    Tfa,
    /// TFA with abort-and-backoff contention management.
    TfaBackoff,
    /// The reactive transactional scheduler.
    Rts,
    /// Extension (§V): Yoo & Lee's adaptive transaction scheduling.
    Ats,
    /// Extension (§V): Bi-interval-flavored queue-everything scheduling.
    BiInterval,
}

impl SchedulerKind {
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Tfa => "TFA",
            SchedulerKind::TfaBackoff => "TFA+Backoff",
            SchedulerKind::Rts => "RTS",
            SchedulerKind::Ats => "ATS",
            SchedulerKind::BiInterval => "Bi-interval",
        }
    }
}

/// Everything the owner knows about a conflicting request.
#[derive(Clone, Copy, Debug)]
pub struct ConflictCtx {
    pub now: SimTime,
    pub oid: ObjectId,
    /// The conflicting requester (node, transaction, access mode).
    pub requester: Requester,
    /// The ETS timestamps carried in the request.
    pub ets: Ets,
    /// `myCL` carried in the request: demand for objects the requester holds.
    pub requester_cl: u32,
    /// Owner-side local CL of the object (sliding-window distinct requesters).
    pub local_cl: u32,
    /// How many times this transaction has already retried (for backoff
    /// growth in `BackoffPolicy`).
    pub attempt: u32,
}

/// The owner's verdict on a conflicting request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Reply `null` with zero backoff: the requester aborts and retries
    /// immediately (plain TFA).
    Abort,
    /// Reply `null` with a backoff: the requester aborts, sleeps, retries.
    AbortBackoff(SimDuration),
    /// Keep the requester live: it is now in the object's queue and will
    /// receive the object on release, unless `backoff` expires first
    /// (in which case it aborts and re-requests as a new transaction).
    Enqueue { backoff: SimDuration },
}

/// A fully explained verdict: the [`Decision`] plus the table state that
/// produced it, assembled right after `on_conflict` so tracing/audit layers
/// can reconstruct Algorithm 3's reasoning without re-running it.
#[derive(Clone, Copy, Debug)]
pub struct DecisionExplain {
    pub decision: Decision,
    /// Requesters parked on the object *after* the decision took effect.
    pub queue_depth: usize,
    /// The object's accumulated backlog `bk` after the decision.
    pub bk: SimDuration,
    /// The CL threshold in force (RTS only).
    pub threshold: Option<u32>,
}

/// Assemble a [`DecisionExplain`] for a decision already made by `policy`
/// against `table` (read-only: the decision itself already mutated the
/// table).
pub fn explain_decision(
    decision: Decision,
    policy: &dyn ConflictPolicy,
    table: &SchedulingTable,
    oid: ObjectId,
) -> DecisionExplain {
    let (queue_depth, bk) = table
        .list(oid)
        .map_or((0, SimDuration::ZERO), |l| (l.len(), l.bk()));
    DecisionExplain {
        decision,
        queue_depth,
        bk,
        threshold: policy.current_threshold(),
    }
}

/// Owner-side conflict resolution strategy.
///
/// `Send` because a policy lives inside a simulated node, and whole nodes
/// migrate between threads under the sharded executor
/// (`GenericWorld::run_sharded`) and the cell worker pool.
pub trait ConflictPolicy: Send {
    fn kind(&self) -> SchedulerKind;

    /// Decide the fate of a request that found `ctx.oid` locked. The policy
    /// may mutate the scheduling `table` (enqueueing, dedup, backlog).
    fn on_conflict(&mut self, ctx: &ConflictCtx, table: &mut SchedulingTable) -> Decision;

    /// Hook: a local commit completed at `now` (drives adaptive thresholds).
    fn on_commit(&mut self, _now: SimTime) {}

    /// The CL threshold currently in force (diagnostics; RTS only).
    fn current_threshold(&self) -> Option<u32> {
        None
    }
}

// ---------------------------------------------------------------------------
// TFA
// ---------------------------------------------------------------------------

/// Plain TFA: every conflicting requester aborts, no scheduling.
#[derive(Clone, Copy, Debug, Default)]
pub struct TfaPolicy;

impl ConflictPolicy for TfaPolicy {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Tfa
    }

    fn on_conflict(&mut self, _ctx: &ConflictCtx, _table: &mut SchedulingTable) -> Decision {
        Decision::Abort
    }
}

// ---------------------------------------------------------------------------
// TFA + Backoff
// ---------------------------------------------------------------------------

/// Abort with an exponentially growing backoff (the "TFA+Backoff" baseline
/// of §IV-C: *"with the scheduler, a transaction aborts with a backoff time
/// if a conflict occurs"*).
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    /// Base backoff, doubled per retry.
    pub base: SimDuration,
    /// Cap on the doubling exponent.
    pub max_exponent: u32,
}

impl BackoffPolicy {
    pub fn new(base: SimDuration) -> Self {
        BackoffPolicy {
            base,
            max_exponent: 6,
        }
    }
}

impl ConflictPolicy for BackoffPolicy {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::TfaBackoff
    }

    fn on_conflict(&mut self, ctx: &ConflictCtx, _table: &mut SchedulingTable) -> Decision {
        let exp = ctx.attempt.min(self.max_exponent);
        Decision::AbortBackoff(self.base * (1u64 << exp))
    }
}

// ---------------------------------------------------------------------------
// RTS
// ---------------------------------------------------------------------------

/// The reactive transactional scheduler (Algorithm 3).
#[derive(Clone, Debug)]
pub struct RtsPolicy {
    threshold: ThresholdController,
}

impl RtsPolicy {
    pub fn new(threshold: ThresholdController) -> Self {
        RtsPolicy { threshold }
    }

    /// Fixed CL threshold (the harness sweeps this for the ablation bench).
    pub fn with_fixed_threshold(t: u32) -> Self {
        RtsPolicy::new(ThresholdController::fixed(t))
    }
}

impl ConflictPolicy for RtsPolicy {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Rts
    }

    /// Algorithm 3, lines 5–17, for a locked object:
    ///
    /// ```text
    /// reqlist.removeDuplicate(address)
    /// if bk < |ETS.r − ETS.s|:                      # enough completed work?
    ///     contention = CL(object) + Contention_Level # local + carried myCL
    ///     if contention < CL_Threshold:
    ///         bk += |ETS.c − ETS.r|                  # extend the backlog
    ///         reqlist.addRequester(contention, requester)
    ///         → enqueue with backoff = bk
    /// → otherwise abort (null object, zero backoff)
    /// ```
    fn on_conflict(&mut self, ctx: &ConflictCtx, table: &mut SchedulingTable) -> Decision {
        let list = table.list_mut(ctx.oid);
        // A re-request after backoff expiry supersedes the old queue entry.
        list.remove_duplicate(ctx.requester.tx);

        // "RTS aborts a parent transaction with a short execution time":
        // only transactions whose completed work exceeds the current backlog
        // are worth parking.
        if list.bk() < ctx.ets.executed_so_far() {
            // CL of an object = local CL + remote CL (§III-A).
            let contention = ctx.local_cl.saturating_add(ctx.requester_cl);
            if contention < self.threshold.threshold() {
                let backoff = list.extend_bk(ctx.ets.expected_remaining());
                list.add_requester(contention, ctx.requester);
                return Decision::Enqueue { backoff };
            }
        }
        Decision::Abort
    }

    fn on_commit(&mut self, now: SimTime) {
        self.threshold.on_commit(now);
    }

    fn current_threshold(&self) -> Option<u32> {
        Some(self.threshold.threshold())
    }
}

/// Build the policy for a scheduler kind with harness defaults.
pub fn build_policy(
    kind: SchedulerKind,
    backoff_base: SimDuration,
    cl_threshold: u32,
) -> Box<dyn ConflictPolicy> {
    match kind {
        SchedulerKind::Tfa => Box::new(TfaPolicy),
        SchedulerKind::TfaBackoff => Box::new(BackoffPolicy::new(backoff_base)),
        SchedulerKind::Rts => Box::new(RtsPolicy::with_fixed_threshold(cl_threshold)),
        SchedulerKind::Ats => Box::new(crate::extensions::AtsPolicy::new(backoff_base)),
        SchedulerKind::BiInterval => Box::new(crate::extensions::QueueAllPolicy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TxId;

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    fn ctx_with(
        executed_ms: u64,
        remaining_ms: u64,
        requester_cl: u32,
        local_cl: u32,
        attempt: u32,
        read_only: bool,
        tx_seq: u64,
    ) -> ConflictCtx {
        let start = t(100);
        let request = start + SimDuration::from_millis(executed_ms);
        let expected_commit = request + SimDuration::from_millis(remaining_ms);
        ConflictCtx {
            now: request,
            oid: ObjectId(1),
            requester: Requester {
                node: 4,
                tx: TxId::new(4, tx_seq),
                read_only,
                attempt: 0,
                enqueued_at: request,
            },
            ets: Ets::new(start, request, expected_commit),
            requester_cl,
            local_cl,
            attempt,
        }
    }

    #[test]
    fn tfa_always_aborts() {
        let mut p = TfaPolicy;
        let mut table = SchedulingTable::new();
        let d = p.on_conflict(&ctx_with(100, 10, 0, 0, 0, false, 1), &mut table);
        assert_eq!(d, Decision::Abort);
        assert_eq!(table.total_queued(), 0);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let mut p = BackoffPolicy::new(SimDuration::from_millis(10));
        let mut table = SchedulingTable::new();
        let d0 = p.on_conflict(&ctx_with(5, 5, 0, 0, 0, false, 1), &mut table);
        let d3 = p.on_conflict(&ctx_with(5, 5, 0, 0, 3, false, 1), &mut table);
        let d99 = p.on_conflict(&ctx_with(5, 5, 0, 0, 99, false, 1), &mut table);
        assert_eq!(d0, Decision::AbortBackoff(SimDuration::from_millis(10)));
        assert_eq!(d3, Decision::AbortBackoff(SimDuration::from_millis(80)));
        assert_eq!(d99, Decision::AbortBackoff(SimDuration::from_millis(640)));
    }

    #[test]
    fn rts_enqueues_long_low_contention() {
        // Fig. 3: T4 has long execution (t4−t1) and CL 2 < threshold 3.
        let mut p = RtsPolicy::with_fixed_threshold(3);
        let mut table = SchedulingTable::new();
        let ctx = ctx_with(50, 20, 1, 1, 0, false, 4);
        match p.on_conflict(&ctx, &mut table) {
            Decision::Enqueue { backoff } => {
                assert_eq!(backoff.as_millis(), 20, "backoff = expected remaining");
            }
            other => panic!("expected enqueue, got {other:?}"),
        }
        assert_eq!(table.total_queued(), 1);
    }

    #[test]
    fn rts_aborts_high_contention() {
        // Fig. 3: T5 sees CL 4 >= threshold 3 -> abort even with long exec.
        let mut p = RtsPolicy::with_fixed_threshold(3);
        let mut table = SchedulingTable::new();
        let ctx = ctx_with(50, 20, 2, 2, 0, false, 5);
        assert_eq!(p.on_conflict(&ctx, &mut table), Decision::Abort);
        assert_eq!(table.total_queued(), 0);
    }

    #[test]
    fn rts_aborts_short_execution() {
        // Fig. 3: T6 aborts "due to the short execution time": the queue's
        // backlog exceeds its completed work.
        let mut p = RtsPolicy::with_fixed_threshold(10);
        let mut table = SchedulingTable::new();
        // Seed a backlog of 30 ms from a previously enqueued transaction.
        let first = ctx_with(50, 30, 0, 0, 0, false, 4);
        assert!(matches!(
            p.on_conflict(&first, &mut table),
            Decision::Enqueue { .. }
        ));
        // T6 executed for only 10 ms < bk of 30 ms -> abort.
        let short = ctx_with(10, 5, 0, 0, 0, false, 6);
        assert_eq!(p.on_conflict(&short, &mut table), Decision::Abort);
        assert_eq!(table.total_queued(), 1);
    }

    #[test]
    fn rts_backlog_accumulates_for_later_requesters() {
        // Fig. 3 / §III-B: "if T5 is enqueued, its backoff time will be
        // |t7 − t5| + the expected execution time of T4".
        let mut p = RtsPolicy::with_fixed_threshold(10);
        let mut table = SchedulingTable::new();
        let t4 = ctx_with(100, 25, 0, 0, 0, false, 4);
        let Decision::Enqueue { backoff: b4 } = p.on_conflict(&t4, &mut table) else {
            panic!("T4 should enqueue");
        };
        let t5 = ctx_with(100, 40, 0, 0, 0, false, 5);
        let Decision::Enqueue { backoff: b5 } = p.on_conflict(&t5, &mut table) else {
            panic!("T5 should enqueue");
        };
        assert_eq!(b4.as_millis(), 25);
        assert_eq!(b5.as_millis(), 65, "T5 waits for its own remaining + T4's");
        assert_eq!(table.total_queued(), 2);
    }

    #[test]
    fn rts_rerequest_replaces_duplicate() {
        let mut p = RtsPolicy::with_fixed_threshold(10);
        let mut table = SchedulingTable::new();
        let c1 = ctx_with(100, 25, 0, 0, 0, false, 4);
        assert!(matches!(
            p.on_conflict(&c1, &mut table),
            Decision::Enqueue { .. }
        ));
        // Same transaction re-requests after its backoff expired.
        let c2 = ctx_with(140, 25, 0, 0, 1, false, 4);
        assert!(matches!(
            p.on_conflict(&c2, &mut table),
            Decision::Enqueue { .. }
        ));
        assert_eq!(table.total_queued(), 1, "old entry must be deduplicated");
    }

    #[test]
    fn build_policy_kinds() {
        for kind in [
            SchedulerKind::Tfa,
            SchedulerKind::TfaBackoff,
            SchedulerKind::Rts,
        ] {
            let p = build_policy(kind, SimDuration::from_millis(10), 3);
            assert_eq!(p.kind(), kind);
        }
        assert_eq!(SchedulerKind::Rts.label(), "RTS");
    }
}
