//! A classic Bloom filter (Bloom 1970, the paper's reference [5]).
//!
//! The stats table stores *"a bloom filter representation of the most
//! current successful commit times of write transactions"* per entry. The
//! filter here is a straightforward `m`-bit, `k`-hash structure using the
//! Kirsch–Mitzenmacher double-hashing scheme (`h_i = h1 + i·h2`), which
//! preserves the standard false-positive bound with only two base hashes.

/// A fixed-size Bloom filter over `u64` items.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: usize,
    k: u32,
    inserted: u64,
}

#[inline]
fn mix1(x: u64) -> u64 {
    // splitmix64 finalizer
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn mix2(x: u64) -> u64 {
    // murmur3 finalizer with different constants
    let mut z = x ^ 0xFF51_AFD7_ED55_8CCD;
    z = z.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^= z >> 33;
    z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z ^ (z >> 33)
}

impl BloomFilter {
    /// A filter with `m` bits (rounded up to a multiple of 64) and `k` hash
    /// functions.
    pub fn new(m: usize, k: u32) -> Self {
        assert!(m > 0 && k > 0);
        let words = m.div_ceil(64);
        BloomFilter {
            bits: vec![0; words],
            m: words * 64,
            k,
            inserted: 0,
        }
    }

    /// A filter sized for `n` expected items at false-positive rate `p`,
    /// using the standard optima `m = -n ln p / (ln 2)^2`, `k = (m/n) ln 2`.
    pub fn with_capacity(n: usize, p: f64) -> Self {
        assert!(n > 0 && p > 0.0 && p < 1.0);
        let ln2 = std::f64::consts::LN_2;
        let m = (-(n as f64) * p.ln() / (ln2 * ln2)).ceil() as usize;
        let k = ((m as f64 / n as f64) * ln2).round().max(1.0) as u32;
        BloomFilter::new(m.max(64), k)
    }

    #[inline]
    fn bit_positions(&self, item: u64) -> impl Iterator<Item = usize> + '_ {
        let h1 = mix1(item);
        let h2 = mix2(item) | 1; // odd stride
        let m = self.m as u64;
        (0..self.k).map(move |i| (h1.wrapping_add(h2.wrapping_mul(i as u64)) % m) as usize)
    }

    pub fn insert(&mut self, item: u64) {
        let positions: Vec<usize> = self.bit_positions(item).collect();
        for pos in positions {
            self.bits[pos / 64] |= 1u64 << (pos % 64);
        }
        self.inserted += 1;
    }

    /// `true` means "possibly present"; `false` means "definitely absent".
    pub fn contains(&self, item: u64) -> bool {
        self.bit_positions(item)
            .all(|pos| self.bits[pos / 64] & (1u64 << (pos % 64)) != 0)
    }

    /// Number of `insert` calls since construction/clear.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Bits in the filter.
    pub fn m(&self) -> usize {
        self.m
    }

    pub fn k(&self) -> u32 {
        self.k
    }

    /// Expected false-positive probability at the current fill, using the
    /// standard `(1 − e^{−kn/m})^k` estimate.
    pub fn estimated_fp_rate(&self) -> f64 {
        let kn = self.k as f64 * self.inserted as f64;
        let frac = 1.0 - (-kn / self.m as f64).exp();
        frac.powi(self.k as i32)
    }

    /// Fraction of set bits (diagnostic).
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.m as f64
    }

    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000u64 {
            f.insert(i * 7919);
        }
        for i in 0..1000u64 {
            assert!(f.contains(i * 7919), "inserted item missing");
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000u64 {
            f.insert(i);
        }
        let fps = (1_000_000u64..1_100_000).filter(|&x| f.contains(x)).count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.03, "fp rate {rate} too high for 1% target");
        assert!(f.estimated_fp_rate() < 0.02);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1024, 4);
        assert!(!f.contains(42));
        assert_eq!(f.inserted(), 0);
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(1024, 4);
        f.insert(42);
        assert!(f.contains(42));
        f.clear();
        assert!(!f.contains(42));
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn sizing_formula_sane() {
        let f = BloomFilter::with_capacity(1000, 0.01);
        // Standard result: ~9.6 bits/item, k ~ 7 for p = 1%.
        assert!((9_000..11_000).contains(&f.m()), "m = {}", f.m());
        assert_eq!(f.k(), 7);
    }
}
