//! Identifiers shared across the D-STM stack.

use std::fmt;

/// A distributed transaction identifier: the invoking node plus a node-local
/// sequence number. Unique system-wide, totally ordered (node, seq), and
/// stable across retries of the *same* logical transaction — a retry keeps
/// its `TxId` but bumps [`TxId::attempt`]-tracking in the executor, matching
/// the paper's duplicate elimination ("the duplicated transaction will be
/// removed from a queue").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId {
    /// Index of the invoking node.
    pub node: u32,
    /// Node-local sequence number.
    pub seq: u64,
}

impl TxId {
    pub const fn new(node: u32, seq: u64) -> Self {
        TxId { node, seq }
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.node, self.seq)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.node, self.seq)
    }
}

/// A shared-object identifier. Objects are distributed over nodes; the
/// *home* node (directory) of an object is derived from its id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// The node at which this object's directory entry lives, for an
    /// `n`-node system. Static hash-based homing.
    #[inline]
    pub fn home(self, n: usize) -> u32 {
        // Fibonacci hashing spreads consecutive ids across nodes.
        ((self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % n as u64) as u32
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// The *kind* of a transaction: which benchmark operation it performs.
/// The stats table keys expected execution times by kind (transactions of
/// the same kind have similar profiles).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxKind(pub u16);

impl TxKind {
    pub const UNKNOWN: TxKind = TxKind(0);
}

impl fmt::Debug for TxKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kind#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txid_ordering_and_display() {
        let a = TxId::new(1, 5);
        let b = TxId::new(1, 6);
        let c = TxId::new(2, 0);
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "T1.5");
    }

    #[test]
    fn home_is_stable_and_in_range() {
        for n in [1usize, 2, 10, 80] {
            for oid in 0..1000u64 {
                let h = ObjectId(oid).home(n);
                assert!((h as usize) < n);
                assert_eq!(h, ObjectId(oid).home(n));
            }
        }
    }

    #[test]
    fn home_spreads_load() {
        let n = 16usize;
        let mut counts = vec![0u32; n];
        for oid in 0..16_000u64 {
            counts[ObjectId(oid).home(n) as usize] += 1;
        }
        for &c in &counts {
            assert!((600..1500).contains(&c), "node load {c} badly skewed");
        }
    }
}
