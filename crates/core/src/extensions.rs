//! Extension schedulers from the paper's related work (§V), implemented on
//! the same [`ConflictPolicy`] interface so the harness can compare them
//! against RTS. These are *not* part of the paper's evaluation — they are
//! the "schedulers [that] cannot directly be used to schedule nested
//! distributed transactions" the paper positions itself against, adapted
//! minimally to this substrate.
//!
//! * [`AtsPolicy`] — after Yoo & Lee's Adaptive Transaction Scheduler:
//!   tracks a **contention intensity** EWMA; under light contention the
//!   loser retries immediately, above the threshold it is stalled with a
//!   backoff that grows with the intensity.
//! * [`QueueAllPolicy`] — a Bi-interval-flavored scheduler: *every*
//!   conflicting requester is enqueued (no CL test), so the owner's
//!   release path serializes writers and fans out consecutive readers into
//!   read intervals.

use crate::policy::{ConflictCtx, ConflictPolicy, Decision, SchedulerKind};
use crate::sched::SchedulingTable;
use dstm_sim::{SimDuration, SimTime};

/// Adaptive transaction scheduling: contention-intensity-driven backoff.
#[derive(Clone, Debug)]
pub struct AtsPolicy {
    /// EWMA weight of a new sample.
    alpha: f64,
    /// Intensity above which losers are stalled.
    threshold: f64,
    /// Base stall, scaled by intensity.
    base: SimDuration,
    intensity: f64,
}

impl AtsPolicy {
    pub fn new(base: SimDuration) -> Self {
        AtsPolicy {
            alpha: 0.3,
            threshold: 0.5,
            base,
            intensity: 0.0,
        }
    }

    /// Current contention intensity in `[0, 1]`.
    pub fn intensity(&self) -> f64 {
        self.intensity
    }
}

impl ConflictPolicy for AtsPolicy {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Ats
    }

    fn on_conflict(&mut self, _ctx: &ConflictCtx, _table: &mut SchedulingTable) -> Decision {
        // A conflict is a contention sample of 1.
        self.intensity = self.alpha + (1.0 - self.alpha) * self.intensity;
        if self.intensity > self.threshold {
            let scale = (self.intensity * 4.0).ceil() as u64; // 3..=4 at high CI
            Decision::AbortBackoff(self.base * scale)
        } else {
            Decision::Abort
        }
    }

    fn on_commit(&mut self, _now: SimTime) {
        // A commit is a contention sample of 0.
        self.intensity *= 1.0 - self.alpha;
    }
}

/// Bi-interval-flavored policy: park every conflicting requester; the
/// owner's release path forms the read/write intervals.
#[derive(Clone, Debug, Default)]
pub struct QueueAllPolicy;

impl ConflictPolicy for QueueAllPolicy {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::BiInterval
    }

    fn on_conflict(&mut self, ctx: &ConflictCtx, table: &mut SchedulingTable) -> Decision {
        let list = table.list_mut(ctx.oid);
        list.remove_duplicate(ctx.requester.tx);
        let backoff = list.extend_bk(
            ctx.ets
                .expected_remaining()
                .max(SimDuration::from_millis(1)),
        );
        list.add_requester(list.get_contention().saturating_add(1), ctx.requester);
        Decision::Enqueue { backoff }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ets::Ets;
    use crate::ids::{ObjectId, TxId};
    use crate::sched::Requester;

    fn ctx(seq: u64, read_only: bool) -> ConflictCtx {
        let start = SimTime(1_000_000);
        let request = SimTime(60_000_000);
        ConflictCtx {
            now: request,
            oid: ObjectId(1),
            requester: Requester {
                node: 1,
                tx: TxId::new(1, seq),
                read_only,
                attempt: 0,
                enqueued_at: request,
            },
            ets: Ets::new(start, request, request + SimDuration::from_millis(25)),
            requester_cl: 1,
            local_cl: 1,
            attempt: 0,
        }
    }

    #[test]
    fn ats_escalates_under_sustained_conflicts() {
        let mut p = AtsPolicy::new(SimDuration::from_millis(5));
        let mut table = SchedulingTable::new();
        // First conflicts: intensity still low -> plain abort.
        assert_eq!(p.on_conflict(&ctx(1, false), &mut table), Decision::Abort);
        // Sustained conflicts push intensity over the threshold.
        let mut last = Decision::Abort;
        for i in 2..10 {
            last = p.on_conflict(&ctx(i, false), &mut table);
        }
        assert!(
            matches!(last, Decision::AbortBackoff(_)),
            "sustained conflicts must stall: {last:?}"
        );
        assert!(p.intensity() > 0.5);
    }

    #[test]
    fn ats_relaxes_after_commits() {
        let mut p = AtsPolicy::new(SimDuration::from_millis(5));
        let mut table = SchedulingTable::new();
        for i in 0..10 {
            let _ = p.on_conflict(&ctx(i, false), &mut table);
        }
        assert!(p.intensity() > 0.5);
        for t in 0..20 {
            p.on_commit(SimTime(t));
        }
        assert!(p.intensity() < 0.1, "commits must decay intensity");
        assert_eq!(p.on_conflict(&ctx(99, false), &mut table), Decision::Abort);
    }

    #[test]
    fn queue_all_always_enqueues_and_accumulates() {
        let mut p = QueueAllPolicy;
        let mut table = SchedulingTable::new();
        let d1 = p.on_conflict(&ctx(1, true), &mut table);
        let d2 = p.on_conflict(&ctx(2, false), &mut table);
        let (Decision::Enqueue { backoff: b1 }, Decision::Enqueue { backoff: b2 }) = (d1, d2)
        else {
            panic!("queue-all must enqueue");
        };
        assert!(b2 > b1, "backlog must accumulate");
        assert_eq!(table.total_queued(), 2);
    }
}
