//! Contention-level (CL) accounting (§III-A).
//!
//! *"A simple local detection scheme determines the local CL of `oj` by how
//! many transactions have requested `oj` during a given time period. A
//! distributed detection scheme determines the remote CL of `oj` by how many
//! transactions have requested other objects before `oj` is requested. ...
//! We define the CL of an object as the sum of its local and remote CLs."*
//!
//! Two pieces implement this:
//!
//! * [`ObjectClWindow`] — owner-side sliding-window count of *distinct*
//!   transactions that requested an object recently (the **local CL**);
//! * [`ClAccounting`] — requester-side sum of the local CLs of the objects a
//!   transaction currently holds (the **remote CL**, carried as `myCL` in
//!   every request: *"myCL indicates the number of transactions needing the
//!   objects that the requester is using"*).

use crate::ids::{ObjectId, TxId};
use dstm_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Owner-side sliding window of requests for one object.
///
/// The distinct-transaction count (the local CL itself) is maintained
/// incrementally: each record/prune adjusts a per-transaction occurrence
/// count, so `local_cl` is O(evictions) instead of the O(w²) pairwise scan
/// a naive distinct count costs — `record` + `local_cl` run on **every**
/// object request, so the window is protocol-hot-path.
#[derive(Clone, Debug)]
pub struct ObjectClWindow {
    window: SimDuration,
    /// (request time, requester) pairs, oldest first.
    requests: VecDeque<(SimTime, TxId)>,
    /// Occurrence count per transaction still inside the window; entries are
    /// removed when their count hits zero, so `counts.len()` *is* the
    /// distinct count. Linear storage: the distinct set is small and the
    /// vec is reused, keeping the hot path allocation-free at steady state.
    counts: Vec<(TxId, u32)>,
}

impl ObjectClWindow {
    pub fn new(window: SimDuration) -> Self {
        ObjectClWindow {
            window,
            requests: VecDeque::new(),
            counts: Vec::new(),
        }
    }

    fn prune(&mut self, now: SimTime) {
        let cutoff = SimTime(now.0.saturating_sub(self.window.0));
        while let Some(&(t, tx)) = self.requests.front() {
            if t < cutoff {
                self.requests.pop_front();
                let i = self
                    .counts
                    .iter()
                    .position(|&(c, _)| c == tx)
                    .expect("window entry without a count");
                self.counts[i].1 -= 1;
                if self.counts[i].1 == 0 {
                    self.counts.swap_remove(i);
                }
            } else {
                break;
            }
        }
    }

    /// Record that `tx` requested the object at `now`.
    pub fn record(&mut self, now: SimTime, tx: TxId) {
        self.prune(now);
        self.requests.push_back((now, tx));
        match self.counts.iter_mut().find(|&&mut (c, _)| c == tx) {
            Some((_, n)) => *n += 1,
            None => self.counts.push((tx, 1)),
        }
    }

    /// Local CL: distinct transactions that requested the object within the
    /// window ending at `now`. Retries of the same transaction count once.
    pub fn local_cl(&mut self, now: SimTime) -> u32 {
        self.prune(now);
        self.counts.len() as u32
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Raw (non-distinct) request count inside the window ending at `now` —
    /// the denominator tracing reports next to `local_cl` so window
    /// saturation (retry storms vs. genuinely wide contention) is visible.
    pub fn requests_in_window(&mut self, now: SimTime) -> u32 {
        self.prune(now);
        self.requests.len() as u32
    }
}

/// Requester-side accounting of the CLs of currently held objects.
///
/// Vec-backed: a transaction holds a handful of objects and the only
/// aggregate query is a sum, so linear storage beats a hash map and keeps
/// the per-transaction footprint a single (reusable) allocation.
#[derive(Clone, Debug, Default)]
pub struct ClAccounting {
    held: Vec<(ObjectId, u32)>,
}

impl ClAccounting {
    pub fn new() -> Self {
        ClAccounting::default()
    }

    /// An object was received, with its local CL as reported by the owner.
    pub fn object_received(&mut self, oid: ObjectId, reported_cl: u32) {
        match self.held.iter_mut().find(|(o, _)| *o == oid) {
            Some((_, cl)) => *cl = reported_cl,
            None => self.held.push((oid, reported_cl)),
        }
    }

    /// The object was released (commit or abort).
    pub fn object_released(&mut self, oid: ObjectId) {
        if let Some(i) = self.held.iter().position(|(o, _)| *o == oid) {
            self.held.swap_remove(i);
        }
    }

    /// `myCL`: total demand for what this transaction is holding.
    pub fn my_cl(&self) -> u32 {
        self.held.iter().map(|(_, cl)| cl).sum()
    }

    pub fn clear(&mut self) {
        self.held.clear();
    }

    pub fn held_objects(&self) -> usize {
        self.held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    fn tx(n: u64) -> TxId {
        TxId::new(0, n)
    }

    #[test]
    fn window_counts_distinct_transactions() {
        let mut w = ObjectClWindow::new(SimDuration::from_millis(100));
        w.record(t(10), tx(1));
        w.record(t(20), tx(2));
        w.record(t(30), tx(1)); // retry of tx 1 counts once
        assert_eq!(w.local_cl(t(40)), 2);
        assert_eq!(w.requests_in_window(t(40)), 3, "raw count keeps retries");
    }

    #[test]
    fn window_expires_old_requests() {
        let mut w = ObjectClWindow::new(SimDuration::from_millis(50));
        w.record(t(0), tx(1));
        w.record(t(10), tx(2));
        assert_eq!(w.local_cl(t(40)), 2);
        assert_eq!(w.local_cl(t(55)), 1); // tx1's request (t=0) fell out
        assert_eq!(w.local_cl(t(200)), 0);
        assert!(w.is_empty());
    }

    #[test]
    fn empty_window_is_zero() {
        let mut w = ObjectClWindow::new(SimDuration::from_millis(50));
        assert_eq!(w.local_cl(t(5)), 0);
    }

    #[test]
    fn accounting_sums_held_objects() {
        let mut acc = ClAccounting::new();
        // Fig. 3 object-based scenario: T4 holds o3 and o2 whose CLs are 1
        // and 0, requests o1 with local CL 1 -> total CL = 2.
        acc.object_received(ObjectId(3), 1);
        acc.object_received(ObjectId(2), 0);
        assert_eq!(acc.my_cl(), 1);
        acc.object_received(ObjectId(4), 2);
        assert_eq!(acc.my_cl(), 3);
        acc.object_released(ObjectId(4));
        assert_eq!(acc.my_cl(), 1);
        acc.clear();
        assert_eq!(acc.my_cl(), 0);
        assert_eq!(acc.held_objects(), 0);
    }

    #[test]
    fn rereceiving_updates_not_duplicates() {
        let mut acc = ClAccounting::new();
        acc.object_received(ObjectId(1), 3);
        acc.object_received(ObjectId(1), 5);
        assert_eq!(acc.my_cl(), 5);
        assert_eq!(acc.held_objects(), 1);
    }
}
