//! # rts-core — the Reactive Transactional Scheduler
//!
//! This crate is the paper's primary contribution, implemented as a pure
//! decision library so it can be unit- and property-tested independently of
//! the distributed machinery in `hyflow-dstm`:
//!
//! * [`ids`] — transaction / object / transaction-kind identifiers shared by
//!   the whole stack;
//! * [`ets`] — the **execution-time structure** carried in every object
//!   request: start, request, and expected-commit timestamps (§III-B);
//! * [`bloom`] — the Bloom filter backing the transaction stats table
//!   (the paper cites Bloom [5] for the commit-time sketch);
//! * [`stats`] — the **transaction stats table** mapping transaction kinds to
//!   expected execution/commit times, used to pick backoffs;
//! * [`cl`] — **contention level** (CL) accounting: local CL (requests per
//!   object over a recent window) and remote CL (carried as `myCL`);
//! * [`sched`] — the **scheduling table** of Algorithm 1: per-object
//!   requester queues with duplicate elimination and contention totals;
//! * [`fx`] — the in-tree FxHash-style hasher backing every protocol-layer
//!   map (small fixed-size id keys make SipHash pure overhead);
//! * [`policy`] — the conflict decision logic of Algorithms 2–4 behind the
//!   [`policy::ConflictPolicy`] trait, with the three schedulers evaluated in
//!   the paper: `TfaPolicy`, `BackoffPolicy`, and `RtsPolicy`;
//! * [`threshold`] — fixed and adaptive CL-threshold controllers (§III-B:
//!   "the CL's threshold is adaptively determined");
//! * [`analysis`] — executable forms of the §III-D makespan analysis
//!   (Lemmas 3.1–3.3, Theorem 3.4).

pub mod analysis;
pub mod bloom;
pub mod cl;
pub mod ets;
pub mod extensions;
pub mod fx;
pub mod ids;
pub mod policy;
pub mod sched;
pub mod stats;
pub mod threshold;

pub use bloom::BloomFilter;
pub use cl::{ClAccounting, ObjectClWindow};
pub use ets::Ets;
pub use extensions::{AtsPolicy, QueueAllPolicy};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{ObjectId, TxId, TxKind};
pub use policy::{
    build_policy, explain_decision, BackoffPolicy, ConflictCtx, ConflictPolicy, Decision,
    DecisionExplain, RtsPolicy, SchedulerKind, TfaPolicy,
};
pub use sched::{Requester, RequesterList, SchedulingTable};
pub use stats::StatsTable;
pub use threshold::ThresholdController;
