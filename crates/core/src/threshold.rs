//! CL-threshold control (§III-B).
//!
//! *"The threshold of a low or high CL relies on the number of nodes,
//! transactions, and shared objects. Thus, the CL's threshold is adaptively
//! determined."* The paper's experiments fix the threshold at the value
//! giving peak throughput (§IV-A); our harness reproduces that with the
//! [`ThresholdController::fixed`] mode plus an ablation sweep, and the
//! [`ThresholdController::adaptive`] mode implements the adaptive
//! determination as a hill-climbing controller on commit rate.

use dstm_sim::{SimDuration, SimTime};

#[derive(Clone, Debug)]
enum Mode {
    Fixed,
    Adaptive {
        min: u32,
        max: u32,
        epoch: SimDuration,
        epoch_start: SimTime,
        commits_this_epoch: u64,
        last_rate: f64,
        /// +1 = raising threshold, −1 = lowering.
        direction: i32,
    },
}

/// Supplies the CL threshold to [`crate::policy::RtsPolicy`].
#[derive(Clone, Debug)]
pub struct ThresholdController {
    current: u32,
    mode: Mode,
}

impl ThresholdController {
    /// Constant threshold (the paper's per-experiment peak value).
    pub fn fixed(t: u32) -> Self {
        ThresholdController {
            current: t,
            mode: Mode::Fixed,
        }
    }

    /// Hill-climbing controller: every `epoch` of virtual time, compare the
    /// commit rate against the previous epoch; keep moving the threshold in
    /// the same direction while the rate improves, reverse otherwise.
    pub fn adaptive(initial: u32, min: u32, max: u32, epoch: SimDuration) -> Self {
        assert!(min >= 1 && min <= initial && initial <= max);
        assert!(!epoch.is_zero());
        ThresholdController {
            current: initial,
            mode: Mode::Adaptive {
                min,
                max,
                epoch,
                epoch_start: SimTime::ZERO,
                commits_this_epoch: 0,
                last_rate: -1.0,
                direction: 1,
            },
        }
    }

    /// The threshold currently in force.
    #[inline]
    pub fn threshold(&self) -> u32 {
        self.current
    }

    /// Notify a local commit at `now`; may adapt at epoch boundaries.
    pub fn on_commit(&mut self, now: SimTime) {
        let current = &mut self.current;
        if let Mode::Adaptive {
            min,
            max,
            epoch,
            epoch_start,
            commits_this_epoch,
            last_rate,
            direction,
        } = &mut self.mode
        {
            *commits_this_epoch += 1;
            let elapsed = now.saturating_since(*epoch_start);
            if elapsed >= *epoch {
                let rate = *commits_this_epoch as f64 / elapsed.as_secs_f64().max(1e-12);
                if *last_rate >= 0.0 && rate < *last_rate {
                    *direction = -*direction;
                }
                let next = (*current as i64 + *direction as i64).clamp(*min as i64, *max as i64);
                *current = next as u32;
                *last_rate = rate;
                *commits_this_epoch = 0;
                *epoch_start = now;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    #[test]
    fn fixed_never_moves() {
        let mut c = ThresholdController::fixed(3);
        for i in 0..1000 {
            c.on_commit(t(i * 10));
        }
        assert_eq!(c.threshold(), 3);
    }

    #[test]
    fn adaptive_moves_within_bounds() {
        let mut c = ThresholdController::adaptive(4, 1, 8, SimDuration::from_millis(100));
        for i in 1..10_000u64 {
            c.on_commit(t(i));
        }
        let th = c.threshold();
        assert!((1..=8).contains(&th));
    }

    #[test]
    fn adaptive_climbs_when_rate_improves() {
        let mut c = ThresholdController::adaptive(4, 1, 8, SimDuration::from_millis(10));
        // Epoch 1: 5 commits in 10 ms.
        for i in 1..=5u64 {
            c.on_commit(t(2 * i));
        }
        assert_eq!(
            c.threshold(),
            5,
            "first boundary steps in the initial direction"
        );
        // Epoch 2 (from t=10): denser commits -> higher rate -> keep climbing.
        for i in 1..=20u64 {
            c.on_commit(t(10 + i));
        }
        assert!(c.threshold() >= 5);
    }

    #[test]
    fn adaptive_reverses_on_decline() {
        let mut c = ThresholdController::adaptive(4, 1, 8, SimDuration::from_millis(10));
        // Epoch 1: high rate (10 commits / 10 ms).
        for i in 1..=10u64 {
            c.on_commit(t(i));
        }
        let after_first = c.threshold();
        assert_eq!(after_first, 5);
        // Epoch 2: collapse to 2 commits / 10 ms -> direction must flip.
        c.on_commit(t(15));
        c.on_commit(t(21));
        assert_eq!(c.threshold(), 4, "declining rate reverses the climb");
    }

    #[test]
    #[should_panic]
    fn adaptive_rejects_bad_bounds() {
        let _ = ThresholdController::adaptive(9, 1, 8, SimDuration::from_millis(10));
    }
}
