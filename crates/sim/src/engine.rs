//! The actor-world simulation engine.
//!
//! A [`World`] owns a homogeneous set of actors (simulated nodes), a single
//! totally-ordered pending-event set, and per-actor deterministic RNG
//! streams. Actors interact with the world only through [`Ctx`]: sending
//! messages with a delivery delay, arming/cancelling timers, reading virtual
//! time, and drawing random numbers. This narrow interface is what makes
//! whole-protocol runs reproducible: identical seeds yield identical event
//! sequences.

use crate::event::Sequenced;
use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceSink};
use std::collections::HashSet;

/// Identifies an actor (node) in the world. Dense indices starting at 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActorId(pub u32);

impl ActorId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a pending timer; pass to [`Ctx::cancel_timer`] to cancel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerToken(u64);

/// A simulated node. `Msg` is the network message type, `Timer` the local
/// timer payload type.
pub trait Actor {
    type Msg;
    type Timer;

    /// A message from `from` has been delivered to this actor.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, from: ActorId, msg: Self::Msg);

    /// A previously armed (and not cancelled) timer has fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, timer: Self::Timer);
}

enum Payload<M, T> {
    Msg { from: ActorId, to: ActorId, msg: M },
    Timer { on: ActorId, token: TimerToken, timer: T },
}

/// Engine internals shared between the run loop and actor callbacks.
struct Kernel<M, T> {
    now: SimTime,
    seq: u64,
    next_timer: u64,
    queue: BinaryHeapQueue<Payload<M, T>>,
    cancelled: HashSet<u64>,
    rngs: Vec<SimRng>,
    trace: TraceSink,
    /// Delivered message count (protocol messages, not timers).
    messages_delivered: u64,
    timers_fired: u64,
}

impl<M, T> Kernel<M, T> {
    fn schedule(&mut self, delay: SimDuration, payload: Payload<M, T>) {
        let at = self.now + delay;
        self.seq += 1;
        self.queue.push(Sequenced::new(at, self.seq, payload));
    }
}

/// The per-callback view of the engine handed to actor code.
pub struct Ctx<'a, M, T> {
    kernel: &'a mut Kernel<M, T>,
    me: ActorId,
}

impl<'a, M, T> Ctx<'a, M, T> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// The actor this callback runs on.
    #[inline]
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Send `msg` to `to`, delivered after `delay` of virtual time.
    /// Delays come from the topology's delay matrix (see `dstm-net`);
    /// the engine itself is delay-agnostic.
    pub fn send(&mut self, to: ActorId, msg: M, delay: SimDuration) {
        let from = self.me;
        self.kernel.schedule(delay, Payload::Msg { from, to, msg });
    }

    /// Arm a timer on this actor that fires after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, timer: T) -> TimerToken {
        self.kernel.next_timer += 1;
        let token = TimerToken(self.kernel.next_timer);
        let on = self.me;
        self.kernel.schedule(delay, Payload::Timer { on, token, timer });
        token
    }

    /// Cancel a pending timer. Cancelling an already-fired or already-
    /// cancelled timer is a no-op.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.kernel.cancelled.insert(token.0);
    }

    /// This actor's private deterministic RNG stream.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.kernel.rngs[self.me.index()]
    }

    /// Emit a free-form trace annotation (no-op when tracing is disabled).
    pub fn note(&mut self, text: impl FnOnce() -> String) {
        if self.kernel.trace.enabled() {
            let at = self.kernel.now;
            let on = self.me;
            self.kernel.trace.record(TraceEvent::Note { at, on, text: text() });
        }
    }
}

/// A complete simulation: actors + kernel.
pub struct World<A: Actor> {
    actors: Vec<A>,
    kernel: Kernel<A::Msg, A::Timer>,
}

impl<A: Actor> World<A> {
    /// Build a world over `actors`; all randomness derives from `seed`.
    pub fn new(actors: Vec<A>, seed: u64) -> Self {
        let root = SimRng::new(seed);
        let rngs = (0..actors.len()).map(|i| root.split(i as u64)).collect();
        World {
            actors,
            kernel: Kernel {
                now: SimTime::ZERO,
                seq: 0,
                next_timer: 0,
                queue: BinaryHeapQueue::new(),
                cancelled: HashSet::new(),
                rngs,
                trace: TraceSink::Disabled,
                messages_delivered: 0,
                timers_fired: 0,
            },
        }
    }

    /// Enable in-memory tracing (for tests/scenario inspection).
    pub fn enable_trace(&mut self, cap: usize) {
        self.kernel.trace = TraceSink::ring(cap);
    }

    pub fn trace_events(&self) -> &[TraceEvent] {
        self.kernel.trace.events()
    }

    pub fn len(&self) -> usize {
        self.actors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    pub fn actor(&self, id: ActorId) -> &A {
        &self.actors[id.index()]
    }

    pub fn actor_mut(&mut self, id: ActorId) -> &mut A {
        &mut self.actors[id.index()]
    }

    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Total protocol messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.kernel.messages_delivered
    }

    pub fn timers_fired(&self) -> u64 {
        self.kernel.timers_fired
    }

    /// Inject a message from outside the world (workload arrival); `from` is
    /// recorded as the destination itself.
    pub fn send_external(&mut self, to: ActorId, msg: A::Msg, delay: SimDuration) {
        self.kernel.schedule(delay, Payload::Msg { from: to, to, msg });
    }

    /// Run a callback in `actor`'s context, as if an event had fired there.
    /// Used to bootstrap protocol state (e.g. starting the first transactions).
    pub fn with_ctx<R>(
        &mut self,
        actor: ActorId,
        f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg, A::Timer>) -> R,
    ) -> R {
        let mut ctx = Ctx {
            kernel: &mut self.kernel,
            me: actor,
        };
        f(&mut self.actors[actor.index()], &mut ctx)
    }

    /// Process one event. Returns `false` when the queue is exhausted.
    pub fn step(&mut self) -> bool {
        let ev = match self.kernel.queue.pop() {
            Some(ev) => ev,
            None => return false,
        };
        debug_assert!(ev.key.time >= self.kernel.now, "time went backwards");
        self.kernel.now = ev.key.time;
        match ev.payload {
            Payload::Msg { from, to, msg } => {
                self.kernel.messages_delivered += 1;
                if self.kernel.trace.enabled() {
                    self.kernel.trace.record(TraceEvent::Deliver {
                        at: self.kernel.now,
                        from,
                        to,
                        tag: "msg",
                    });
                }
                let mut ctx = Ctx {
                    kernel: &mut self.kernel,
                    me: to,
                };
                self.actors[to.index()].on_message(&mut ctx, from, msg);
            }
            Payload::Timer { on, token, timer } => {
                if self.kernel.cancelled.remove(&token.0) {
                    return true; // cancelled; skip
                }
                self.kernel.timers_fired += 1;
                if self.kernel.trace.enabled() {
                    self.kernel.trace.record(TraceEvent::TimerFired {
                        at: self.kernel.now,
                        on,
                        tag: "timer",
                    });
                }
                let mut ctx = Ctx {
                    kernel: &mut self.kernel,
                    me: on,
                };
                self.actors[on.index()].on_timer(&mut ctx, timer);
            }
        }
        true
    }

    /// Run until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue drains or virtual time would exceed `deadline`.
    /// Events at exactly `deadline` are processed; later ones remain queued.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(key) = self.kernel.queue.peek_key() {
            if key.time > deadline {
                self.kernel.now = deadline;
                return;
            }
            self.step();
        }
    }

    /// Run until `pred` over the world returns true, checking after every
    /// event, with a hard event-count budget to bound runaway protocols.
    pub fn run_while(&mut self, budget: u64, mut pred: impl FnMut(&World<A>) -> bool) -> u64 {
        let mut steps = 0;
        while steps < budget && pred(self) {
            if !self.step() {
                break;
            }
            steps += 1;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An actor that records delivery times and bounces messages.
    struct Echo {
        deliveries: Vec<(SimTime, u32)>,
        fired: Vec<u32>,
        armed: Option<TimerToken>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                deliveries: Vec::new(),
                fired: Vec::new(),
                armed: None,
            }
        }
    }

    impl Actor for Echo {
        type Msg = u32;
        type Timer = u32;

        fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u32>, _from: ActorId, msg: u32) {
            self.deliveries.push((ctx.now(), msg));
            match msg {
                1 => {
                    // arm a timer and a cancellation race
                    self.armed = Some(ctx.set_timer(SimDuration::from_millis(5), 77));
                    ctx.set_timer(SimDuration::from_millis(1), 88);
                }
                2 => {
                    if let Some(tok) = self.armed.take() {
                        ctx.cancel_timer(tok);
                    }
                }
                _ => {}
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32, u32>, timer: u32) {
            self.fired.push(timer);
        }
    }

    #[test]
    fn delivery_respects_delay_and_order() {
        let mut w = World::new(vec![Echo::new(), Echo::new()], 1);
        w.send_external(ActorId(0), 10, SimDuration::from_millis(3));
        w.send_external(ActorId(0), 20, SimDuration::from_millis(1));
        w.run();
        let d = &w.actor(ActorId(0)).deliveries;
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], (SimTime(1_000_000), 20));
        assert_eq!(d[1], (SimTime(3_000_000), 10));
    }

    #[test]
    fn timer_fires_unless_cancelled() {
        // msg 1 arms timers (88 @1ms, 77 @5ms); msg 2 at 2ms cancels 77.
        let mut w = World::new(vec![Echo::new()], 1);
        w.send_external(ActorId(0), 1, SimDuration::ZERO);
        w.send_external(ActorId(0), 2, SimDuration::from_millis(2));
        w.run();
        assert_eq!(w.actor(ActorId(0)).fired, vec![88]);
        assert_eq!(w.timers_fired(), 1);
    }

    #[test]
    fn timer_fires_without_cancellation() {
        let mut w = World::new(vec![Echo::new()], 1);
        w.send_external(ActorId(0), 1, SimDuration::ZERO);
        w.run();
        let mut fired = w.actor(ActorId(0)).fired.clone();
        fired.sort_unstable();
        assert_eq!(fired, vec![77, 88]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut w = World::new(vec![Echo::new()], 1);
        w.send_external(ActorId(0), 5, SimDuration::from_millis(1));
        w.send_external(ActorId(0), 6, SimDuration::from_millis(10));
        w.run_until(SimTime(5_000_000));
        assert_eq!(w.actor(ActorId(0)).deliveries.len(), 1);
        assert_eq!(w.now(), SimTime(5_000_000));
        w.run();
        assert_eq!(w.actor(ActorId(0)).deliveries.len(), 2);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        fn run_one(seed: u64) -> Vec<(SimTime, u32)> {
            let mut w = World::new(vec![Echo::new(), Echo::new()], seed);
            // jittered sends driven by actor rng
            w.with_ctx(ActorId(0), |_, ctx| {
                for i in 0..50 {
                    let d = SimDuration::from_micros(ctx.rng().below(1000));
                    ctx.send(ActorId(1), i, d);
                }
            });
            w.run();
            w.actor(ActorId(1)).deliveries.clone()
        }
        assert_eq!(run_one(42), run_one(42));
        assert_ne!(run_one(42), run_one(43));
    }

    #[test]
    fn message_counter_counts() {
        let mut w = World::new(vec![Echo::new()], 9);
        for _ in 0..7 {
            w.send_external(ActorId(0), 0, SimDuration::ZERO);
        }
        w.run();
        assert_eq!(w.messages_delivered(), 7);
    }
}
