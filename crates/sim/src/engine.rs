//! The actor-world simulation engine.
//!
//! A [`World`] owns a homogeneous set of actors (simulated nodes), a single
//! totally-ordered pending-event set, and per-actor deterministic RNG
//! streams. Actors interact with the world only through [`Ctx`]: sending
//! messages with a delivery delay, arming/cancelling timers, reading virtual
//! time, and drawing random numbers. This narrow interface is what makes
//! whole-protocol runs reproducible: identical seeds yield identical event
//! sequences.
//!
//! # Queue backends
//!
//! The pending-event set is pluggable: [`GenericWorld<A, Q>`] is generic over
//! any [`EventQueue`] implementation, and [`World<A>`] is the
//! [`BinaryHeapQueue`]-backed default alias. Because every backend must honor
//! the same total order ([`crate::event::EventKey`]: time, then issuing
//! actor, then per-actor sequence), a run is bit-identical regardless of
//! backend — the choice is purely a performance knob (see `queue.rs` for the
//! calendar-queue trade-offs). The event-dispatch loop in
//! [`GenericWorld::step`] is statically dispatched over `Q`; only pushes from
//! inside actor callbacks go through a `dyn EventQueue` so that the [`Actor`]
//! trait (and every actor implementation) stays independent of the backend
//! type.
//!
//! # Per-actor kernel state
//!
//! Everything the kernel tracks per actor — RNG stream, issue-sequence
//! counter, timer slab — lives in one [`ActorState`] that travels with the
//! actor. This is what makes sharded execution (`shard.rs`) possible: a
//! shard takes ownership of its actors' states wholesale, so timer tokens
//! stay valid and event keys stay identical regardless of how actors are
//! partitioned. A [`KernelCore`] addresses states through a [`SlotView`]:
//! the serial world uses the identity mapping (slot = global id), while a
//! shard resolves slots through the shared [`Partition`] — which supports
//! arbitrary (e.g. locality-aware) actor-to-shard assignments, not just
//! round-robin.
//!
//! [`Partition`]: crate::shard::Partition
//!
//! # Timer cancellation
//!
//! Timers are cancelled in O(1) without hashing: each armed timer occupies a
//! slot in its actor's generation-stamped slab and its [`TimerToken`] packs
//! `(slot, generation)`. Cancelling (or firing) bumps the slot's generation,
//! so a queued timer event whose stamped generation no longer matches is
//! skipped when popped. Slots are recycled through a free list, bounding slab
//! size by the maximum number of *concurrently armed* timers rather than the
//! total armed over a run. The slab is per-actor (not global) so that a
//! token armed before a run and cancelled inside a shard still resolves.

use std::sync::Arc;

use crate::event::{EventKey, Sequenced};
use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::rng::SimRng;
use crate::shard::Partition;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceSink};

/// Identifies an actor (node) in the world. Dense indices starting at 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActorId(pub u32);

impl ActorId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a pending timer; pass to [`Ctx::cancel_timer`] to cancel.
///
/// Packs `(generation << 32) | slot` of the owning actor's timer slab.
/// Tokens are opaque to actors; a token is spent once its timer fires or is
/// cancelled, and later use is a harmless no-op (the generation no longer
/// matches).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerToken(u64);

impl TimerToken {
    #[inline]
    fn pack(slot: u32, generation: u32) -> Self {
        TimerToken(((generation as u64) << 32) | slot as u64)
    }

    /// A throwaway token for queue-backend unit tests that never dispatch.
    #[cfg(test)]
    pub(crate) fn test_token() -> Self {
        TimerToken(0)
    }

    #[inline]
    fn unpack(self) -> (u32, u32) {
        (self.0 as u32, (self.0 >> 32) as u32)
    }
}

/// A simulated node. `Msg` is the network message type, `Timer` the local
/// timer payload type.
pub trait Actor {
    type Msg;
    type Timer;

    /// A message from `from` has been delivered to this actor.
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
        from: ActorId,
        msg: Self::Msg,
    );

    /// A previously armed (and not cancelled) timer has fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, timer: Self::Timer);
}

/// One pending event in the kernel queue: a message delivery or a timer
/// expiry. Public so queue backends can be named in type signatures
/// (e.g. `CalendarQueue<KernelEvent<M, T>>`), but its fields stay private to
/// the engine (and the sharded executor).
pub enum KernelEvent<M, T> {
    Msg {
        from: ActorId,
        to: ActorId,
        msg: M,
    },
    Timer {
        on: ActorId,
        token: TimerToken,
        timer: T,
    },
}

impl<M, T> KernelEvent<M, T> {
    /// The actor this event will be delivered to — the routing key of the
    /// sharded executor.
    #[inline]
    pub(crate) fn destination(&self) -> ActorId {
        match self {
            KernelEvent::Msg { to, .. } => *to,
            KernelEvent::Timer { on, .. } => *on,
        }
    }
}

/// Kernel state owned by (and moving with) one actor: its deterministic RNG
/// stream, its private event-issue counter (the [`EventKey`] tiebreak), and
/// its timer slab.
#[derive(Debug)]
pub(crate) struct ActorState {
    pub(crate) rng: SimRng,
    /// Events issued by this actor so far; the next event it schedules gets
    /// `seq + 1`. Interleaving-independent by construction.
    pub(crate) seq: u64,
    /// Generation stamp per timer slot; bumped when the slot's timer fires or
    /// is cancelled, invalidating any queued event carrying the old stamp.
    /// (A stamp would have to survive 2^32 arm/retire cycles of one slot
    /// while its event sits in the queue to collide — not possible, since
    /// a slot is only recycled after its previous event is resolved.)
    pub(crate) timer_gens: Vec<u32>,
    /// Recycled slots available for the next `set_timer`.
    pub(crate) timer_free: Vec<u32>,
}

impl ActorState {
    fn new(root: &SimRng, gid: u32) -> Self {
        ActorState {
            rng: root.split(gid as u64),
            seq: 0,
            timer_gens: Vec::new(),
            timer_free: Vec::new(),
        }
    }
}

/// How a [`KernelCore`] maps global actor ids onto its `states` vector.
///
/// The serial world owns every actor, so slot = global id with zero
/// indirection. A shard owns an arbitrary subset chosen by the partitioner
/// (round-robin or locality-greedy), so it resolves slots through the shared
/// [`Partition`] — two array loads, no hashing, no division.
pub(crate) enum SlotView {
    /// The serial world: slot = global actor id.
    Identity,
    /// Shard `shard` of a partitioned run: slot = the partition's per-shard
    /// dense index (actors arrive in ascending global-id order).
    Sharded { shard: u32, part: Arc<Partition> },
}

/// Queue-independent engine state shared between the run loop and actor
/// callbacks. Holds no message/timer payloads, so it needs no type
/// parameters — which is what lets [`Ctx`] stay independent of the queue
/// backend.
///
/// `states[i]` belongs to the actor that `view` maps to slot `i`: the whole
/// actor set in global-id order for the serial world, one shard's actors in
/// ascending global-id order for a shard core.
pub(crate) struct KernelCore {
    pub(crate) now: SimTime,
    pub(crate) view: SlotView,
    pub(crate) states: Vec<ActorState>,
    pub(crate) trace: TraceSink,
    /// Delivered message count (protocol messages, not timers). A coalesced
    /// batch counts once — it is one delivery event.
    pub(crate) messages_delivered: u64,
    pub(crate) timers_fired: u64,
    /// Logical messages folded away by transport-level coalescing: an actor
    /// unpacking a k-message batch reports `k - 1` here, so
    /// `messages_delivered + batched_messages` is the protocol message count
    /// a batching-free run would have delivered.
    pub(crate) batched_messages: u64,
}

impl KernelCore {
    fn new(seed: u64, actors: usize) -> Self {
        let root = SimRng::new(seed);
        KernelCore {
            now: SimTime::ZERO,
            view: SlotView::Identity,
            states: (0..actors)
                .map(|i| ActorState::new(&root, i as u32))
                .collect(),
            trace: TraceSink::Disabled,
            messages_delivered: 0,
            timers_fired: 0,
            batched_messages: 0,
        }
    }

    /// An empty core for shard `shard` of `part`; states are installed by
    /// the sharded executor (moved, not recreated, so RNG streams, issue
    /// counters, and timer slabs carry over exactly).
    pub(crate) fn shard_shell(now: SimTime, shard: u32, part: Arc<Partition>) -> Self {
        KernelCore {
            now,
            view: SlotView::Sharded { shard, part },
            states: Vec::new(),
            trace: TraceSink::Disabled,
            messages_delivered: 0,
            timers_fired: 0,
            batched_messages: 0,
        }
    }

    /// Slot of `id` in `states` under this core's view. The serial case is
    /// the identity — no division, no loads — and this sits on the per-event
    /// hot path (every push, pop, rng draw, and timer op).
    #[inline]
    pub(crate) fn slot(&self, id: ActorId) -> usize {
        match &self.view {
            SlotView::Identity => id.0 as usize,
            SlotView::Sharded { shard, part } => {
                debug_assert_eq!(
                    part.shard_of()[id.index()],
                    *shard,
                    "actor {id:?} not owned by shard {shard}"
                );
                part.slot_of(id.0)
            }
        }
    }

    /// Claim a slot in `me`'s timer slab for a newly armed timer and stamp a
    /// token with its current generation.
    #[inline]
    fn timer_arm(&mut self, me: ActorId) -> TimerToken {
        let slot = self.slot(me);
        let st = &mut self.states[slot];
        let slot = match st.timer_free.pop() {
            Some(slot) => slot,
            None => {
                st.timer_gens.push(0);
                (st.timer_gens.len() - 1) as u32
            }
        };
        TimerToken::pack(slot, st.timer_gens[slot as usize])
    }

    /// Retire a timer on `on`: bump its slot's generation and recycle the
    /// slot. No-op (returns false) if the token's generation is stale, i.e.
    /// the timer already fired or was already cancelled.
    #[inline]
    fn timer_retire(&mut self, on: ActorId, token: TimerToken) -> bool {
        let slot = self.slot(on);
        let st = &mut self.states[slot];
        let (slot, generation) = token.unpack();
        let current = &mut st.timer_gens[slot as usize];
        if *current != generation {
            return false;
        }
        *current = current.wrapping_add(1);
        st.timer_free.push(slot);
        true
    }
}

/// Schedule `payload` at `core.now + delay` into `queue`, stamped from
/// `issuer`'s private sequence counter. Free function (not a method) so it
/// can be called with a split borrow of core + dyn queue.
#[inline]
fn schedule<M, T>(
    core: &mut KernelCore,
    queue: &mut dyn EventQueue<KernelEvent<M, T>>,
    issuer: ActorId,
    delay: SimDuration,
    payload: KernelEvent<M, T>,
) {
    let at = core.now + delay;
    let slot = core.slot(issuer);
    let st = &mut core.states[slot];
    st.seq += 1;
    queue.push(Sequenced {
        key: EventKey::compose(at, issuer.0, st.seq),
        payload,
    });
}

/// What one pass over the event queue did.
pub(crate) enum StepOutcome {
    /// Queue empty — nothing left to run.
    Drained,
    /// A cancelled timer was discarded; no handler ran.
    Skipped,
    /// This actor's handler ran.
    Ran(ActorId),
}

/// Deliver one already-popped event: advance time, dispatch to the owning
/// actor's handler (or discard a cancelled timer). Shared verbatim by the
/// serial step loop and the per-shard window loop, so both execute events
/// identically by construction.
pub(crate) fn dispatch_one<A: Actor>(
    actors: &mut [A],
    core: &mut KernelCore,
    queue: &mut dyn EventQueue<KernelEvent<A::Msg, A::Timer>>,
    ev: Sequenced<KernelEvent<A::Msg, A::Timer>>,
) -> StepOutcome {
    debug_assert!(ev.key.time >= core.now, "time went backwards");
    core.now = ev.key.time;
    match ev.payload {
        KernelEvent::Msg { from, to, msg } => {
            core.messages_delivered += 1;
            if core.trace.enabled() {
                core.trace.record(TraceEvent::Deliver {
                    at: core.now,
                    from,
                    to,
                    tag: "msg",
                });
            }
            let idx = core.slot(to);
            let mut ctx = Ctx {
                core,
                queue,
                me: to,
            };
            actors[idx].on_message(&mut ctx, from, msg);
            StepOutcome::Ran(to)
        }
        KernelEvent::Timer { on, token, timer } => {
            if !core.timer_retire(on, token) {
                return StepOutcome::Skipped; // cancelled
            }
            core.timers_fired += 1;
            if core.trace.enabled() {
                core.trace.record(TraceEvent::TimerFired {
                    at: core.now,
                    on,
                    tag: "timer",
                });
            }
            let idx = core.slot(on);
            let mut ctx = Ctx {
                core,
                queue,
                me: on,
            };
            actors[idx].on_timer(&mut ctx, timer);
            StepOutcome::Ran(on)
        }
    }
}

/// The per-callback view of the engine handed to actor code.
///
/// Independent of the queue backend (`Q`) by design: the queue is borrowed as
/// a trait object, so `Actor` implementations compile once and run under any
/// backend — including the sharded executor's routing queue.
pub struct Ctx<'a, M, T> {
    pub(crate) core: &'a mut KernelCore,
    pub(crate) queue: &'a mut dyn EventQueue<KernelEvent<M, T>>,
    pub(crate) me: ActorId,
}

impl<'a, M, T> Ctx<'a, M, T> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The actor this callback runs on.
    #[inline]
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Send `msg` to `to`, delivered after `delay` of virtual time.
    /// Delays come from the topology's delay matrix (see `dstm-net`);
    /// the engine itself is delay-agnostic.
    pub fn send(&mut self, to: ActorId, msg: M, delay: SimDuration) {
        let from = self.me;
        schedule(
            self.core,
            self.queue,
            from,
            delay,
            KernelEvent::Msg { from, to, msg },
        );
    }

    /// Arm a timer on this actor that fires after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, timer: T) -> TimerToken {
        let token = self.core.timer_arm(self.me);
        let on = self.me;
        schedule(
            self.core,
            self.queue,
            on,
            delay,
            KernelEvent::Timer { on, token, timer },
        );
        token
    }

    /// Cancel a pending timer. Cancelling an already-fired or already-
    /// cancelled timer is a no-op. O(1): bumps the slot generation so the
    /// queued event is skipped when it surfaces.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.core.timer_retire(self.me, token);
    }

    /// This actor's private deterministic RNG stream.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        let slot = self.core.slot(self.me);
        &mut self.core.states[slot].rng
    }

    /// Report `extra` logical messages unpacked from a coalesced batch
    /// (the batch's own delivery is already counted). The engine cannot see
    /// inside `M`, so the actor doing the unpacking calls this.
    #[inline]
    pub fn count_batched(&mut self, extra: u64) {
        self.core.batched_messages += extra;
    }

    /// Emit a free-form trace annotation (no-op when tracing is disabled;
    /// the closure only runs when a sink is attached).
    pub fn note(&mut self, text: impl FnOnce() -> String) {
        let at = self.core.now;
        let on = self.me;
        self.core.trace.note_with(at, on, text);
    }
}

/// A complete simulation — actors plus kernel — generic over the
/// pending-event-set backend `Q`. Use the [`World`] alias unless you are
/// selecting a backend explicitly (e.g. [`CalendarQueue`] via
/// [`GenericWorld::with_queue`]).
///
/// [`CalendarQueue`]: crate::queue::CalendarQueue
pub struct GenericWorld<A: Actor, Q> {
    pub(crate) actors: Vec<A>,
    pub(crate) core: KernelCore,
    pub(crate) queue: Q,
}

/// The default world: binary-heap-backed pending-event set. A type alias (not
/// a default type parameter) so `World::new(...)` keeps inferring at existing
/// call sites.
pub type World<A> =
    GenericWorld<A, BinaryHeapQueue<KernelEvent<<A as Actor>::Msg, <A as Actor>::Timer>>>;

impl<A: Actor> World<A> {
    /// Build a heap-backed world over `actors`; all randomness derives from
    /// `seed`.
    pub fn new(actors: Vec<A>, seed: u64) -> Self {
        GenericWorld::with_queue(actors, seed, BinaryHeapQueue::new())
    }
}

impl<A: Actor, Q: EventQueue<KernelEvent<A::Msg, A::Timer>>> GenericWorld<A, Q> {
    /// Build a world over `actors` with an explicit queue backend; all
    /// randomness derives from `seed`. The queue must be empty.
    pub fn with_queue(actors: Vec<A>, seed: u64, queue: Q) -> Self {
        debug_assert!(queue.is_empty(), "queue backend must start empty");
        GenericWorld {
            core: KernelCore::new(seed, actors.len()),
            actors,
            queue,
        }
    }

    /// Enable in-memory tracing (for tests/scenario inspection).
    pub fn enable_trace(&mut self, cap: usize) {
        self.core.trace = TraceSink::ring(cap);
    }

    pub fn trace_events(&self) -> &[TraceEvent] {
        self.core.trace.events()
    }

    pub fn len(&self) -> usize {
        self.actors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    pub fn now(&self) -> SimTime {
        self.core.now
    }

    pub fn actor(&self, id: ActorId) -> &A {
        &self.actors[id.index()]
    }

    pub fn actor_mut(&mut self, id: ActorId) -> &mut A {
        &mut self.actors[id.index()]
    }

    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Mutable access to every actor (end-of-run collection: draining
    /// per-actor trace buffers, resetting counters between phases).
    pub fn actors_mut(&mut self) -> &mut [A] {
        &mut self.actors
    }

    /// Total protocol messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.core.messages_delivered
    }

    pub fn timers_fired(&self) -> u64 {
        self.core.timers_fired
    }

    /// Logical messages folded into coalesced batches (see
    /// [`Ctx::count_batched`]); zero unless actors batch.
    pub fn batched_messages(&self) -> u64 {
        self.core.batched_messages
    }

    /// Pending events (undelivered messages + armed-or-cancelled timers).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The pending-event-set backend. Verification harnesses read it to
    /// enumerate undelivered events; ordinary drivers never need it.
    pub fn queue(&self) -> &Q {
        &self.queue
    }

    /// Mutable access to the queue backend — the interleaving-steering hook
    /// used by the model checker (see [`crate::perturb::ChoiceQueue`]).
    /// Mutating the queue between steps must preserve the backend's own
    /// ordering contract; the engine adds no further checks here.
    pub fn queue_mut(&mut self) -> &mut Q {
        &mut self.queue
    }

    /// Inject a message from outside the world (workload arrival); `from` is
    /// recorded as the destination itself, and the event is stamped from the
    /// destination's issue counter (so external injections order the same
    /// way regardless of execution mode).
    pub fn send_external(&mut self, to: ActorId, msg: A::Msg, delay: SimDuration) {
        schedule(
            &mut self.core,
            &mut self.queue,
            to,
            delay,
            KernelEvent::Msg { from: to, to, msg },
        );
    }

    /// Run a callback in `actor`'s context, as if an event had fired there.
    /// Used to bootstrap protocol state (e.g. starting the first transactions).
    pub fn with_ctx<R>(
        &mut self,
        actor: ActorId,
        f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg, A::Timer>) -> R,
    ) -> R {
        let mut ctx = Ctx {
            core: &mut self.core,
            queue: &mut self.queue,
            me: actor,
        };
        f(&mut self.actors[actor.index()], &mut ctx)
    }

    /// Run until `done(actor)` holds for every actor or the event budget
    /// is exhausted; returns the number of events processed. `done` must be
    /// **monotonic** (once true for an actor it stays true) and may only
    /// flip inside that actor's own handlers — both hold for protocol
    /// nodes, whose doneness depends only on their local state. Under
    /// those rules only the actor each event touched needs re-examining,
    /// so the check is O(1) per event where a `run_while` full scan is
    /// O(n); the stop point — and therefore every simulated outcome — is
    /// identical.
    pub fn run_until_all_done(&mut self, budget: u64, done: impl Fn(&A) -> bool) -> u64 {
        let mut is_done = vec![false; self.actors.len()];
        let mut remaining = 0usize;
        for (flag, a) in is_done.iter_mut().zip(&self.actors) {
            *flag = done(a);
            remaining += usize::from(!*flag);
        }
        let mut steps = 0;
        while remaining > 0 && steps < budget {
            match self.step_touched() {
                StepOutcome::Drained => break,
                StepOutcome::Skipped => steps += 1,
                StepOutcome::Ran(id) => {
                    steps += 1;
                    let flag = &mut is_done[id.index()];
                    if !*flag && done(&self.actors[id.index()]) {
                        *flag = true;
                        remaining -= 1;
                    }
                }
            }
        }
        steps
    }

    /// Process one event. Returns `false` when the queue is exhausted.
    pub fn step(&mut self) -> bool {
        !matches!(self.step_touched(), StepOutcome::Drained)
    }

    /// Process one event, reporting which actor's handler ran (if any) so
    /// callers can re-examine just that actor instead of scanning all of
    /// them after every event.
    pub(crate) fn step_touched(&mut self) -> StepOutcome {
        let ev = match self.queue.pop() {
            Some(ev) => ev,
            None => return StepOutcome::Drained,
        };
        dispatch_one(&mut self.actors, &mut self.core, &mut self.queue, ev)
    }

    /// Run until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until virtual time reaches `deadline`. Events at exactly
    /// `deadline` are processed; later ones remain queued. On return `now()`
    /// is exactly `max(deadline, now)` on **every** exit path — including
    /// when the queue drains early — so callers can treat the world as having
    /// idled up to the deadline.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(key) = self.queue.peek_key() {
            if key.time > deadline {
                break;
            }
            self.step();
        }
        if self.core.now < deadline {
            self.core.now = deadline;
        }
    }

    /// Run until `pred` over the world returns true, checking after every
    /// event, with a hard event-count budget to bound runaway protocols.
    pub fn run_while(&mut self, budget: u64, mut pred: impl FnMut(&Self) -> bool) -> u64 {
        let mut steps = 0;
        while steps < budget && pred(self) {
            if !self.step() {
                break;
            }
            steps += 1;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::CalendarQueue;

    /// An actor that records delivery times and bounces messages.
    struct Echo {
        deliveries: Vec<(SimTime, u32)>,
        fired: Vec<u32>,
        armed: Option<TimerToken>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                deliveries: Vec::new(),
                fired: Vec::new(),
                armed: None,
            }
        }
    }

    impl Actor for Echo {
        type Msg = u32;
        type Timer = u32;

        fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u32>, _from: ActorId, msg: u32) {
            self.deliveries.push((ctx.now(), msg));
            match msg {
                1 => {
                    // arm a timer and a cancellation race
                    self.armed = Some(ctx.set_timer(SimDuration::from_millis(5), 77));
                    ctx.set_timer(SimDuration::from_millis(1), 88);
                }
                2 => {
                    if let Some(tok) = self.armed.take() {
                        ctx.cancel_timer(tok);
                    }
                }
                _ => {}
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32, u32>, timer: u32) {
            self.fired.push(timer);
        }
    }

    #[test]
    fn delivery_respects_delay_and_order() {
        let mut w = World::new(vec![Echo::new(), Echo::new()], 1);
        w.send_external(ActorId(0), 10, SimDuration::from_millis(3));
        w.send_external(ActorId(0), 20, SimDuration::from_millis(1));
        w.run();
        let d = &w.actor(ActorId(0)).deliveries;
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], (SimTime(1_000_000), 20));
        assert_eq!(d[1], (SimTime(3_000_000), 10));
    }

    #[test]
    fn timer_fires_unless_cancelled() {
        // msg 1 arms timers (88 @1ms, 77 @5ms); msg 2 at 2ms cancels 77.
        let mut w = World::new(vec![Echo::new()], 1);
        w.send_external(ActorId(0), 1, SimDuration::ZERO);
        w.send_external(ActorId(0), 2, SimDuration::from_millis(2));
        w.run();
        assert_eq!(w.actor(ActorId(0)).fired, vec![88]);
        assert_eq!(w.timers_fired(), 1);
    }

    #[test]
    fn timer_fires_without_cancellation() {
        let mut w = World::new(vec![Echo::new()], 1);
        w.send_external(ActorId(0), 1, SimDuration::ZERO);
        w.run();
        let mut fired = w.actor(ActorId(0)).fired.clone();
        fired.sort_unstable();
        assert_eq!(fired, vec![77, 88]);
    }

    #[test]
    fn cancelling_twice_and_cancelling_fired_are_noops() {
        struct Canceller {
            token: Option<TimerToken>,
        }
        impl Actor for Canceller {
            type Msg = u32;
            type Timer = u32;
            fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u32>, _from: ActorId, msg: u32) {
                match msg {
                    1 => self.token = Some(ctx.set_timer(SimDuration::from_millis(1), 7)),
                    2 => {
                        // double-cancel: second must be a no-op even though the
                        // slot may have been recycled by the next set_timer
                        let tok = self.token.expect("armed");
                        ctx.cancel_timer(tok);
                        ctx.cancel_timer(tok);
                        ctx.set_timer(SimDuration::from_millis(1), 9);
                        ctx.cancel_timer(tok); // stale: recycled slot, new generation
                    }
                    _ => {}
                }
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u32, u32>, timer: u32) {
                assert_eq!(timer, 9, "cancelled timer fired");
                // cancelling an already-fired timer is a no-op
                let tok = self.token.take().expect("armed");
                ctx.cancel_timer(tok);
            }
        }
        let mut w = World::new(vec![Canceller { token: None }], 1);
        w.send_external(ActorId(0), 1, SimDuration::ZERO);
        w.send_external(ActorId(0), 2, SimDuration::from_micros(10));
        w.run();
        assert_eq!(w.timers_fired(), 1);
    }

    #[test]
    fn timer_slab_recycles_slots() {
        // Arm/fire many timers sequentially: the slab must stay at O(max
        // concurrently armed), not grow with the total number armed.
        struct Chain {
            remaining: u32,
        }
        impl Actor for Chain {
            type Msg = u32;
            type Timer = u32;
            fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u32>, _from: ActorId, _msg: u32) {
                ctx.set_timer(SimDuration::from_micros(5), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u32, u32>, _timer: u32) {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.set_timer(SimDuration::from_micros(5), 0);
                }
            }
        }
        let mut w = World::new(vec![Chain { remaining: 10_000 }], 1);
        w.send_external(ActorId(0), 0, SimDuration::ZERO);
        w.run();
        assert_eq!(w.timers_fired(), 10_001);
        assert!(
            w.core.states[0].timer_gens.len() <= 2,
            "slab grew to {} slots for 1 concurrent timer",
            w.core.states[0].timer_gens.len()
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut w = World::new(vec![Echo::new()], 1);
        w.send_external(ActorId(0), 5, SimDuration::from_millis(1));
        w.send_external(ActorId(0), 6, SimDuration::from_millis(10));
        w.run_until(SimTime(5_000_000));
        assert_eq!(w.actor(ActorId(0)).deliveries.len(), 1);
        assert_eq!(w.now(), SimTime(5_000_000));
        w.run();
        assert_eq!(w.actor(ActorId(0)).deliveries.len(), 2);
    }

    #[test]
    fn run_until_advances_to_deadline_when_queue_drains() {
        // Both exit paths of run_until must leave now() at the deadline: the
        // last event here lands at 1 ms, well before the 5 ms deadline.
        let mut w = World::new(vec![Echo::new()], 1);
        w.send_external(ActorId(0), 5, SimDuration::from_millis(1));
        w.run_until(SimTime(5_000_000));
        assert_eq!(w.actor(ActorId(0)).deliveries.len(), 1);
        assert_eq!(
            w.now(),
            SimTime(5_000_000),
            "drained queue must still advance now"
        );
        // And a deadline in the past never moves time backwards.
        w.run_until(SimTime(1_000_000));
        assert_eq!(w.now(), SimTime(5_000_000));
    }

    #[test]
    fn identical_seeds_identical_runs() {
        fn run_one(seed: u64) -> Vec<(SimTime, u32)> {
            let mut w = World::new(vec![Echo::new(), Echo::new()], seed);
            // jittered sends driven by actor rng
            w.with_ctx(ActorId(0), |_, ctx| {
                for i in 0..50 {
                    let d = SimDuration::from_micros(ctx.rng().below(1000));
                    ctx.send(ActorId(1), i, d);
                }
            });
            w.run();
            w.actor(ActorId(1)).deliveries.clone()
        }
        assert_eq!(run_one(42), run_one(42));
        assert_ne!(run_one(42), run_one(43));
    }

    #[test]
    fn heap_and_calendar_worlds_are_bit_identical() {
        // The same seed must produce the same trajectory under either queue
        // backend — the backend is a pure performance knob.
        fn run_jittered<Q: EventQueue<KernelEvent<u32, u32>>>(
            queue: Q,
        ) -> (Vec<(SimTime, u32)>, u64, u64) {
            let mut w = GenericWorld::with_queue(vec![Echo::new(), Echo::new()], 42, queue);
            w.with_ctx(ActorId(0), |_, ctx| {
                for i in 0..200 {
                    let d = SimDuration::from_micros(ctx.rng().below(2000));
                    ctx.send(ActorId(1), i, d);
                }
            });
            // exercise the timer/cancel path under both backends too
            w.send_external(ActorId(1), 1, SimDuration::ZERO);
            w.send_external(ActorId(1), 2, SimDuration::from_millis(2));
            w.run();
            (
                w.actor(ActorId(1)).deliveries.clone(),
                w.messages_delivered(),
                w.timers_fired(),
            )
        }
        let heap = run_jittered(BinaryHeapQueue::new());
        let calendar = run_jittered(CalendarQueue::new());
        assert_eq!(heap, calendar);
    }

    #[test]
    fn message_counter_counts() {
        let mut w = World::new(vec![Echo::new()], 9);
        for _ in 0..7 {
            w.send_external(ActorId(0), 0, SimDuration::ZERO);
        }
        w.run();
        assert_eq!(w.messages_delivered(), 7);
    }
}
