//! # dstm-sim — deterministic discrete-event simulation kernel
//!
//! This crate provides the execution substrate for the D-STM reproduction:
//! a fully deterministic discrete-event simulator — serial by default, with
//! an optional conservative time-windowed parallel executor
//! ([`GenericWorld::run_sharded`], see [`shard`]) that produces bit-identical
//! results on any shard count — with
//!
//! * nanosecond-resolution virtual time ([`SimTime`], [`SimDuration`]),
//! * a pluggable event queue (binary-heap and calendar-queue implementations,
//!   see [`queue`]),
//! * a message-passing **actor world** ([`World`], [`Actor`]) in which each
//!   simulated node handles messages and timers, and
//! * deterministic, splittable random-number streams ([`SimRng`]) so that any
//!   experiment is reproducible bit-for-bit from a single `u64` seed.
//!
//! The paper's testbed is an 80-node message-passing cluster with static
//! communication delays of 1–50 ms. Everything the evaluation measures
//! (throughput, abort rates, queueing delays) is a function of virtual time
//! and protocol message counts, both of which this kernel reproduces exactly.
//!
//! ## Quick example
//!
//! ```
//! use dstm_sim::{Actor, ActorId, Ctx, SimDuration, World};
//!
//! struct Ping { got: u32 }
//!
//! impl Actor for Ping {
//!     type Msg = u32;
//!     type Timer = ();
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer>,
//!                   _from: ActorId, msg: u32) {
//!         self.got += msg;
//!         if msg < 3 {
//!             // bounce the counter to the other actor after 1 ms
//!             let peer = ActorId((ctx.me().0 + 1) % 2);
//!             ctx.send(peer, msg + 1, SimDuration::from_millis(1));
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Msg, Self::Timer>, _t: ()) {}
//! }
//!
//! let mut world = World::new(vec![Ping { got: 0 }, Ping { got: 0 }], 42);
//! world.send_external(ActorId(0), 1, SimDuration::ZERO);
//! world.run();
//! assert_eq!(world.actor(ActorId(0)).got + world.actor(ActorId(1)).got, 1 + 2 + 3);
//! ```

pub mod engine;
pub mod event;
pub mod perturb;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Actor, ActorId, Ctx, GenericWorld, KernelEvent, TimerToken, World};
pub use event::{EventKey, Sequenced};
pub use perturb::{ChoiceQueue, Perturb, PerturbQueue, Schedule};
pub use queue::{BinaryHeapQueue, CalendarQueue, EventQueue};
pub use rng::{mix64, SimRng};
pub use shard::{uniform_lookahead, Partition, ShardRunStats, WindowProfile};
pub use stats::{Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceSink};
