//! Lightweight tracing hooks for debugging protocol runs.
//!
//! Tracing is off by default ([`TraceSink::Disabled`] costs one branch per
//! event) and can be switched to an in-memory ring buffer for tests and
//! post-mortem inspection of scripted scenarios (Figs. 2–3).

use crate::engine::ActorId;
use crate::time::SimTime;
use std::fmt;

/// One recorded kernel-level occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was delivered to `to` from `from`.
    Deliver {
        at: SimTime,
        from: ActorId,
        to: ActorId,
        tag: &'static str,
    },
    /// A timer fired at `at` on `on`.
    TimerFired {
        at: SimTime,
        on: ActorId,
        tag: &'static str,
    },
    /// Free-form annotation emitted by actor code.
    Note {
        at: SimTime,
        on: ActorId,
        text: String,
    },
}

impl TraceEvent {
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Deliver { at, .. }
            | TraceEvent::TimerFired { at, .. }
            | TraceEvent::Note { at, .. } => *at,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Deliver { at, from, to, tag } => {
                write!(f, "[{at}] {from:?} -> {to:?}: {tag}")
            }
            TraceEvent::TimerFired { at, on, tag } => write!(f, "[{at}] timer on {on:?}: {tag}"),
            TraceEvent::Note { at, on, text } => write!(f, "[{at}] note on {on:?}: {text}"),
        }
    }
}

/// Where trace events go.
#[derive(Debug, Default)]
pub enum TraceSink {
    /// Drop everything (the default; near-zero overhead).
    #[default]
    Disabled,
    /// Keep the last `cap` events in a ring buffer.
    Ring { buf: Vec<TraceEvent>, cap: usize },
}

impl TraceSink {
    pub fn ring(cap: usize) -> Self {
        TraceSink::Ring {
            buf: Vec::with_capacity(cap.min(4096)),
            cap,
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        !matches!(self, TraceSink::Disabled)
    }

    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if let TraceSink::Ring { buf, cap } = self {
            if buf.len() == *cap {
                buf.remove(0); // ring is small; O(n) removal is fine here
            }
            buf.push(ev);
        }
    }

    /// Record a [`TraceEvent::Note`] built lazily: the closure — and the
    /// `String` allocation inside it — runs only when the sink is enabled,
    /// so a disabled sink costs exactly one branch.
    #[inline]
    pub fn note_with(&mut self, at: SimTime, on: ActorId, text: impl FnOnce() -> String) {
        if self.enabled() {
            self.record(TraceEvent::Note {
                at,
                on,
                text: text(),
            });
        }
    }

    /// The recorded events (empty when disabled).
    pub fn events(&self) -> &[TraceEvent] {
        match self {
            TraceSink::Disabled => &[],
            TraceSink::Ring { buf, .. } => buf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut sink = TraceSink::Disabled;
        sink.record(TraceEvent::Note {
            at: SimTime(1),
            on: ActorId(0),
            text: "x".into(),
        });
        assert!(sink.events().is_empty());
        assert!(!sink.enabled());
    }

    #[test]
    fn ring_caps_length() {
        let mut sink = TraceSink::ring(3);
        for i in 0..5 {
            sink.record(TraceEvent::Note {
                at: SimTime(i),
                on: ActorId(0),
                text: format!("{i}"),
            });
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].at(), SimTime(2));
        assert_eq!(evs[2].at(), SimTime(4));
    }

    #[test]
    fn note_with_skips_closure_when_disabled() {
        let mut sink = TraceSink::Disabled;
        let mut ran = false;
        sink.note_with(SimTime(1), ActorId(0), || {
            ran = true;
            "expensive".to_string()
        });
        assert!(!ran, "closure must not run on the disabled path");

        let mut sink = TraceSink::ring(4);
        let mut ran = false;
        sink.note_with(SimTime(2), ActorId(1), || {
            ran = true;
            "cheap now".to_string()
        });
        assert!(ran);
        assert_eq!(sink.events().len(), 1);
    }

    #[test]
    fn display_formats() {
        let ev = TraceEvent::Deliver {
            at: SimTime(1_000_000),
            from: ActorId(1),
            to: ActorId(2),
            tag: "req",
        };
        let s = ev.to_string();
        assert!(s.contains("req"), "{s}");
    }
}
