//! Conservative, time-windowed parallel execution of a single simulation.
//!
//! [`GenericWorld::run_partitioned`] splits the actors of one world into `S`
//! shards (any assignment, described by a [`Partition`]), gives each shard
//! its own pending-event set and its actors' kernel state (RNG streams,
//! issue counters, timer slabs), and executes synchronized **windows** of
//! virtual time on `S` threads. This is the classic null-message-free
//! bounded-lag conservative PDES design, generalized from a single global
//! lookahead to a per-shard-pair lookahead matrix:
//!
//! * **Lookahead matrix.** The caller supplies `L`, an `S×S` matrix where
//!   `L[p][q]` lower-bounds the delay of every message an actor in shard `p`
//!   sends to an actor in shard `q` (for the DSTM stack:
//!   `Topology::cross_min_delay` over the partition). Self-sends and timers
//!   are actor-local, so they never cross a shard boundary and impose no
//!   lookahead constraint; the diagonal is unconstrained.
//! * **Per-shard windows.** Each round, every shard publishes the timestamp
//!   of its earliest pending event, `t_min[p]`. Shard `q` may then execute
//!   every local event before `t_end[q] = min over all p of
//!   (t_min[p] + D[p][q])`, where `D` is the **min-plus closure** of `L`
//!   (shortest chain-of-sends delay, ≥ 1 hop; the diagonal is the shortest
//!   cycle). Any event that ever reaches `q` from this point on originates
//!   from some currently pending event at some shard `p` (at `τ ≥ t_min[p]`)
//!   and crosses a chain of sends totalling ≥ `D[p][q]` — so it arrives at
//!   or past `t_end[q]`, outside the window. (The closure, not the raw
//!   matrix, is essential: `t_min[p]` is not monotone — mail from a lagging
//!   shard can pull it backwards — so single-hop bounds anchored at current
//!   mins are unsound.) This is never narrower than the old fleet-wide
//!   `[t0, t0 + min_delay)` window; with a real topology, shards that are
//!   far apart (or ahead in virtual time) grant each other far wider
//!   windows, so fewer barrier rounds are needed for the same event count.
//! * **Mailboxes.** Cross-shard sends are buffered in per-(destination,
//!   source) outboxes during the window and exchanged at the barrier, so
//!   shards never contend on each other's queues mid-window. The mailbox
//!   vectors ping-pong between sender and receiver via `mem::swap`, and the
//!   receiver drains all `S` inboxes through one pooled scratch buffer with
//!   a single sort — zero allocations per window in steady state.
//!
//! # Determinism
//!
//! A sharded run is **bit-identical** to the serial run, for any `S`, any
//! partition, and any valid lookahead matrix:
//!
//! * Event keys are interleaving-independent (`EventKey::compose`: time,
//!   issuing actor, per-actor sequence) — an event gets the same key no
//!   matter which thread issued it or when.
//! * Within a window a shard's pending set evolves only through its own
//!   processing (remote arrivals land at ≥ `t_end`), so the shard-local
//!   greedy-min order equals the serial order restricted to that shard's
//!   actors; per-actor delivered sequences are therefore identical.
//! * The stop decision (drained / budget exhausted) and the window schedule
//!   are pure performance knobs: any valid lower-bound matrix yields the
//!   same per-actor event sequences, and the final clock is the maximum
//!   processed event time — also partition-independent.
//!
//! The differential proptests in `tests/shard_differential.rs` enforce this
//! for the whole DSTM protocol stack across `shards ∈ {1, 2, 4, 8}` and
//! both partitioners (round-robin and locality-greedy).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::engine::{dispatch_one, Actor, GenericWorld, KernelCore, KernelEvent, StepOutcome};
use crate::event::Sequenced;
use crate::queue::EventQueue;
use crate::time::SimDuration;

/// An assignment of `n` actors to `S` shards, with the dense per-shard slot
/// indices the kernel uses to address actor state. Slots follow ascending
/// global-id order within each shard, matching the order the sharded
/// executor moves actors in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    shards: u32,
    /// `shard_of[gid]` — owning shard of each actor.
    shard_of: Vec<u32>,
    /// `slot_of[gid]` — the actor's dense index within its shard.
    slot_of: Vec<u32>,
    /// Actors per shard (a shard may be empty).
    counts: Vec<u32>,
}

impl Partition {
    /// The classic round-robin assignment: actor `gid` goes to shard
    /// `gid % shards`.
    pub fn round_robin(n: usize, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self::from_assignment((0..n).map(|gid| (gid % shards) as u32).collect(), shards)
    }

    /// An arbitrary assignment: `shard_of[gid]` names each actor's shard.
    /// Every entry must be `< shards`; shards may be empty.
    pub fn from_assignment(shard_of: Vec<u32>, shards: usize) -> Self {
        assert!(
            (1..=u32::MAX as usize).contains(&shards),
            "shard count {shards} out of range"
        );
        let mut counts = vec![0u32; shards];
        let mut slot_of = Vec::with_capacity(shard_of.len());
        for (gid, &s) in shard_of.iter().enumerate() {
            assert!(
                (s as usize) < shards,
                "actor {gid} assigned to shard {s}, but only {shards} shards exist"
            );
            slot_of.push(counts[s as usize]);
            counts[s as usize] += 1;
        }
        Partition {
            shards: shards as u32,
            shard_of,
            slot_of,
            counts,
        }
    }

    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    pub fn len(&self) -> usize {
        self.shard_of.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shard_of.is_empty()
    }

    /// The owning shard of each actor, indexed by global id.
    pub fn shard_of(&self) -> &[u32] {
        &self.shard_of
    }

    /// Number of actors assigned to `shard`.
    pub fn count(&self, shard: usize) -> usize {
        self.counts[shard] as usize
    }

    /// Dense per-shard slot of actor `gid` (hot path: kernel state lookup).
    #[inline]
    pub(crate) fn slot_of(&self, gid: u32) -> usize {
        self.slot_of[gid as usize] as usize
    }
}

/// Host-side statistics of one [`GenericWorld::run_partitioned`] call.
/// `steps`/`windows`/`shard_events` are deterministic (functions of the
/// simulation and the partition); `barrier_wait_ns` and the per-shard
/// [`WindowProfile`]s are wall-clock host measurement and vary run to run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardRunStats {
    /// Total events processed (dispatched or skipped) across all shards.
    pub steps: u64,
    /// Barrier rounds executed (same count observed by every shard).
    pub windows: u64,
    /// Events processed by each shard.
    pub shard_events: Vec<u64>,
    /// Wall-clock nanoseconds each shard spent waiting at the two
    /// per-window barriers — the price of synchronization (and of load
    /// imbalance: a starved shard waits while the loaded one runs).
    pub barrier_wait_ns: Vec<u64>,
    /// Per-shard execute/drain phase breakdown aggregated over all windows.
    pub profiles: Vec<WindowProfile>,
}

/// Wall-clock breakdown of one shard's time inside the window loop,
/// aggregated across every window of a run (totals plus the worst single
/// window). Together with `ShardRunStats::barrier_wait_ns` this accounts
/// for where a shard's host time goes: executing local events, waiting at
/// the two barriers, or draining cross-shard mail.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowProfile {
    /// Total nanoseconds spent in the execute phase (dispatching local
    /// events inside the window).
    pub execute_ns: u64,
    /// The most expensive single execute phase — a proxy for the load spike
    /// that makes the other shards wait.
    pub execute_ns_max: u64,
    /// Total nanoseconds spent posting outboxes and draining inboxes at the
    /// window boundary (excluding the barrier wait itself).
    pub drain_ns: u64,
    /// The most expensive single drain phase.
    pub drain_ns_max: u64,
    /// The largest number of events this shard executed in one window.
    pub window_events_max: u64,
    /// Cross-shard messages this shard received over the whole run.
    pub drained_msgs: u64,
}

impl WindowProfile {
    fn record_execute(&mut self, ns: u64, events: u64) {
        self.execute_ns += ns;
        self.execute_ns_max = self.execute_ns_max.max(ns);
        self.window_events_max = self.window_events_max.max(events);
    }

    fn record_drain(&mut self, ns: u64, msgs: u64) {
        self.drain_ns += ns;
        self.drain_ns_max = self.drain_ns_max.max(ns);
        self.drained_msgs += msgs;
    }
}

/// A uniform `S×S` lookahead matrix: `d` between every pair of distinct
/// shards, unconstrained (`SimDuration::MAX`) on the diagonal. This is the
/// matrix the legacy single-lookahead API builds.
pub fn uniform_lookahead(shards: usize, d: SimDuration) -> Vec<SimDuration> {
    let mut m = vec![SimDuration::MAX; shards * shards];
    for (i, entry) in m.iter_mut().enumerate() {
        if i / shards != i % shards {
            *entry = d;
        }
    }
    m
}

/// A reusable spin barrier (generation-counted). Spins briefly, then yields:
/// window rounds are short, but the host may have fewer cores than shards —
/// a pure spin would livelock a 1-core machine.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Block until all `n` participants arrive. Data written before `wait`
    /// is visible to every participant after it (release/acquire through the
    /// counter RMW chain and the generation bump).
    fn wait(&self) {
        if self.n == 1 {
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// `wait`, accumulating the wall-clock time spent blocked into `acc`.
    fn wait_timed(&self, acc: &mut u64) {
        let start = std::time::Instant::now();
        self.wait();
        *acc += start.elapsed().as_nanos() as u64;
    }
}

/// State shared by all shards of one `run_partitioned` call.
struct Shared<E> {
    barrier: SpinBarrier,
    /// Per-shard: timestamp (nanos) of the earliest pending local event at
    /// the last window boundary, or `u64::MAX` if that shard is drained.
    min_times: Vec<AtomicU64>,
    /// Per-shard: cumulative events processed (dispatched or skipped).
    steps: Vec<AtomicU64>,
    /// Cross-shard mail, indexed `destination * S + source`. Only touched at
    /// window boundaries, so a plain mutex per slot is uncontended. The
    /// vectors inside ping-pong with the senders' outboxes (`mem::swap` on
    /// post, drained in place on receive), so no slot reallocates in steady
    /// state.
    mail: Vec<Mutex<Vec<Sequenced<E>>>>,
}

/// The queue a shard dispatches through: local events go straight into the
/// shard's own pending set; cross-shard sends are buffered in per-destination
/// outboxes until the window boundary.
struct ShardQueue<'a, Q, M, T> {
    local: &'a mut Q,
    /// Outbox per destination shard (`outboxes[self_shard]` stays unused).
    outboxes: &'a mut [Vec<Sequenced<KernelEvent<M, T>>>],
    shard: u32,
    /// Owning shard of every actor, indexed by global id.
    shard_of: &'a [u32],
    /// Exclusive end (nanos) of the current window of every shard, for the
    /// safety assertion: a cross-shard event must land at or after its
    /// destination's window end.
    window_ends: &'a [u64],
    /// This shard's row of the lookahead matrix (`L[self][q]`, nanos), so a
    /// violated assertion can name the offending entry.
    lookahead_row: &'a [u64],
}

impl<Q, M, T> EventQueue<KernelEvent<M, T>> for ShardQueue<'_, Q, M, T>
where
    Q: EventQueue<KernelEvent<M, T>>,
{
    fn push(&mut self, ev: Sequenced<KernelEvent<M, T>>) {
        let dst = self.shard_of[ev.payload.destination().index()];
        if dst == self.shard {
            self.local.push(ev);
        } else {
            debug_assert!(
                ev.key.time.as_nanos() >= self.window_ends[dst as usize],
                "cross-shard event inside the window: shard {src} -> shard {dst} scheduled \
                 {key:?}, but shard {dst}'s window ends at {end}ns — lookahead \
                 L[{src}][{dst}] = {la}ns exceeds the actual delay of this message",
                src = self.shard,
                dst = dst,
                key = ev.key,
                end = self.window_ends[dst as usize],
                la = self.lookahead_row[dst as usize],
            );
            self.outboxes[dst as usize].push(ev);
        }
    }

    fn pop(&mut self) -> Option<Sequenced<KernelEvent<M, T>>> {
        self.local.pop()
    }

    fn peek_key(&self) -> Option<crate::event::EventKey> {
        self.local.peek_key()
    }

    fn len(&self) -> usize {
        self.local.len()
    }
}

/// A buffered cross-shard outbox: events destined for one other shard.
type Outbox<M, T> = Vec<Sequenced<KernelEvent<M, T>>>;

/// Everything one shard owns during a run, and hands back afterwards.
struct ShardState<A: Actor, Q> {
    shard: u32,
    actors: Vec<A>,
    core: KernelCore,
    queue: Q,
}

/// Per-shard host-side outcome of `run_shard`.
struct ShardOutcome {
    windows: u64,
    barrier_wait_ns: u64,
    profile: WindowProfile,
}

/// Run one shard to completion: alternate publish/decide/execute rounds until
/// the global decision is to stop. Returns the shard with its final state.
fn run_shard<A, Q>(
    mut st: ShardState<A, Q>,
    shared: &Shared<KernelEvent<A::Msg, A::Timer>>,
    part: &Partition,
    lookahead_ns: &[u64],
    closure_ns: &[u64],
    budget: u64,
) -> (ShardState<A, Q>, ShardOutcome)
where
    A: Actor,
    Q: EventQueue<KernelEvent<A::Msg, A::Timer>>,
{
    let s = st.shard as usize;
    let n_shards = part.shards();
    let mut outboxes: Vec<Outbox<A::Msg, A::Timer>> = (0..n_shards).map(|_| Vec::new()).collect();
    let mut mins = vec![0u64; n_shards];
    let mut window_ends = vec![0u64; n_shards];
    let mut scratch: Vec<Sequenced<KernelEvent<A::Msg, A::Timer>>> = Vec::new();
    let lookahead_row = &lookahead_ns[s * n_shards..(s + 1) * n_shards];
    let mut local_steps = 0u64;
    let mut out = ShardOutcome {
        windows: 0,
        barrier_wait_ns: 0,
        profile: WindowProfile::default(),
    };

    loop {
        // Publish this shard's earliest pending time and progress. Mailboxes
        // are always empty here (drained at the end of the previous round),
        // so the local queue is the whole truth.
        let local_min = st
            .queue
            .peek_key()
            .map(|k| k.time.as_nanos())
            .unwrap_or(u64::MAX);
        shared.min_times[s].store(local_min, Ordering::SeqCst);
        shared.steps[s].store(local_steps, Ordering::SeqCst);
        shared.barrier.wait_timed(&mut out.barrier_wait_ns);

        // Every shard computes the same decision from the same published
        // aggregates (nothing is re-published until after the next barrier).
        for (p, m) in mins.iter_mut().enumerate() {
            *m = shared.min_times[p].load(Ordering::SeqCst);
        }
        let t0 = mins.iter().copied().min().unwrap_or(u64::MAX);
        let total_steps: u64 = shared.steps.iter().map(|c| c.load(Ordering::SeqCst)).sum();
        if t0 == u64::MAX || total_steps >= budget {
            // Drained everywhere, or the runaway backstop tripped. No shard
            // has posted mail this round, so stopping here loses nothing.
            break;
        }
        out.windows += 1;

        // Per-shard window ends: shard q may run to `min over all p of
        // t_min[p] + D[p][q]`, where D is the min-plus closure of the
        // lookahead matrix. Every future arrival into q originates from some
        // event currently pending at some shard p (at time ≥ t_min[p]) and
        // reaches q through a chain of sends whose total delay is ≥ D[p][q]
        // — including multi-hop chains and cycles back into q itself (the
        // diagonal of D is the shortest cycle through q). Using single-hop
        // entries here would be unsound: t_min[p] is not monotone (mail from
        // a lagging shard can pull it backwards), so only chains anchored at
        // the current global snapshot bound the future. A drained or empty
        // shard (t_min = MAX) constrains nobody.
        for (q, end) in window_ends.iter_mut().enumerate() {
            *end = u64::MAX;
            for (p, &tp) in mins.iter().enumerate() {
                *end = (*end).min(tp.saturating_add(closure_ns[p * n_shards + q]));
            }
        }
        let t_end = window_ends[s];

        // Execute every local event inside the window. Events generated
        // during the window that land inside it (self-sends, short timers)
        // are picked up by the re-peek; cross-shard sends are asserted to
        // land at or past their destination's window end. The cap keeps the
        // runaway backstop meaningful even for very wide windows (with one
        // shard the window is unbounded): once this shard alone could have
        // pushed the global total past `budget`, it stops mid-window.
        let mut cap = budget - total_steps;
        let mut router = ShardQueue {
            local: &mut st.queue,
            outboxes: &mut outboxes,
            shard: st.shard,
            shard_of: part.shard_of(),
            window_ends: &window_ends,
            lookahead_row,
        };
        let exec_start = std::time::Instant::now();
        let steps_before = local_steps;
        while cap > 0 {
            match router.peek_key() {
                Some(key) if key.time.as_nanos() < t_end => {}
                _ => break,
            }
            let ev = router.pop().expect("peeked event vanished");
            match dispatch_one(&mut st.actors, &mut st.core, &mut router, ev) {
                StepOutcome::Drained => unreachable!("pop returned an event"),
                StepOutcome::Skipped | StepOutcome::Ran(_) => {
                    local_steps += 1;
                    cap -= 1;
                }
            }
        }
        out.profile.record_execute(
            exec_start.elapsed().as_nanos() as u64,
            local_steps - steps_before,
        );

        // Exchange mail: post outboxes (swapping vectors, not copying — the
        // posted buffer comes back empty-with-capacity two rounds later),
        // wait for everyone, then drain all inboxes through one pooled
        // scratch buffer with a single sort instead of S interleaved
        // per-message push streams.
        let post_start = std::time::Instant::now();
        for (dst, outbox) in outboxes.iter_mut().enumerate() {
            if !outbox.is_empty() {
                let mut slot = shared.mail[dst * n_shards + s]
                    .lock()
                    .expect("mail mutex poisoned");
                debug_assert!(slot.is_empty(), "mailbox not drained by its owner");
                std::mem::swap(&mut *slot, outbox);
            }
        }
        let mut drain_ns = post_start.elapsed().as_nanos() as u64;
        shared.barrier.wait_timed(&mut out.barrier_wait_ns);
        let drain_start = std::time::Instant::now();
        scratch.clear();
        for src in 0..n_shards {
            let mut inbox = shared.mail[s * n_shards + src]
                .lock()
                .expect("mail mutex poisoned");
            scratch.append(&mut inbox);
        }
        scratch.sort_unstable();
        let received = scratch.len() as u64;
        for ev in scratch.drain(..) {
            st.queue.push(ev);
        }
        drain_ns += drain_start.elapsed().as_nanos() as u64;
        out.profile.record_drain(drain_ns, received);
    }

    (st, out)
}

impl<A, Q> GenericWorld<A, Q>
where
    A: Actor + Send,
    A::Msg: Send,
    A::Timer: Send,
    Q: EventQueue<KernelEvent<A::Msg, A::Timer>> + Default + Send,
{
    /// Run this world to quiescence (or until `budget` events have been
    /// processed) on `shards` threads partitioned round-robin, using a
    /// uniform lookahead: conservative windows of width `lookahead` between
    /// every shard pair. Returns the number of events processed.
    ///
    /// This is the legacy single-lookahead entry point, now a thin wrapper
    /// over [`run_partitioned`](GenericWorld::run_partitioned) with
    /// [`Partition::round_robin`] and [`uniform_lookahead`].
    pub fn run_sharded(&mut self, shards: usize, lookahead: SimDuration, budget: u64) -> u64 {
        assert!(
            lookahead.as_nanos() > 0,
            "conservative windows need positive lookahead"
        );
        let n = self.actors.len();
        if n == 0 {
            return 0;
        }
        let s_count = shards.clamp(1, n);
        let matrix = uniform_lookahead(s_count, lookahead);
        self.run_partitioned(Partition::round_robin(n, s_count), &matrix, budget)
            .steps
    }

    /// Run this world to quiescence (or until `budget` events have been
    /// processed) on `partition.shards()` threads, one per shard, using
    /// conservative per-shard-pair windows derived from the `lookahead`
    /// matrix (`S×S`, row-major: `lookahead[p * S + q]` = `L[p][q]`).
    ///
    /// **Safety requirement**: `L[p][q]` must lower-bound the virtual-time
    /// delay of every message an actor in shard `p` sends to an actor in
    /// shard `q` (timers and self-sends are exempt — they never leave their
    /// actor's shard). The diagonal is ignored; window bounds are derived
    /// from the min-plus closure of the matrix, so multi-hop send chains are
    /// accounted for automatically. Violations are caught by a debug
    /// assertion naming the offending shard pair when a cross-shard event
    /// lands inside a window. For the DSTM stack the matrix is
    /// `Topology::cross_min_delay` over the partition.
    ///
    /// The outcome — per-actor event sequences, delivered/timer counters,
    /// final clock, every actor's state — is bit-identical to the serial
    /// [`run`](GenericWorld::run) for every partition and every valid
    /// matrix, including the degenerate single-shard one. Kernel tracing
    /// must be disabled (per-actor protocol traces are fine: they travel
    /// with their actors and merge deterministically).
    pub fn run_partitioned(
        &mut self,
        partition: Partition,
        lookahead: &[SimDuration],
        budget: u64,
    ) -> ShardRunStats {
        assert!(
            !self.core.trace.enabled(),
            "kernel tracing is not supported in sharded runs"
        );
        let n = self.actors.len();
        let s_count = partition.shards();
        assert_eq!(
            partition.len(),
            n,
            "partition covers {} actors, world has {n}",
            partition.len()
        );
        assert_eq!(
            lookahead.len(),
            s_count * s_count,
            "lookahead matrix must be S×S"
        );
        if n == 0 {
            return ShardRunStats::default();
        }
        // Between two distinct non-empty shards the lookahead must be
        // positive, or the conservative windows cannot advance. (Pairs with
        // an empty side never exchange events; `MAX` — "disconnected" — is
        // the conventional entry there.)
        for p in 0..s_count {
            for q in 0..s_count {
                assert!(
                    p == q
                        || partition.count(p) == 0
                        || partition.count(q) == 0
                        || lookahead[p * s_count + q].as_nanos() > 0,
                    "conservative windows need positive lookahead between shards {p} and {q}"
                );
            }
        }
        let mut lookahead_ns: Vec<u64> = lookahead.iter().map(|d| d.as_nanos()).collect();
        // The diagonal is documented as ignored: normalize it to MAX so the
        // closure below derives q→q bounds from genuine cycles only.
        for p in 0..s_count {
            lookahead_ns[p * s_count + p] = u64::MAX;
        }
        // Min-plus transitive closure (Floyd–Warshall, ≥ 1 hop): D[p][q] is
        // the cheapest total delay of any chain of sends from p to q, and
        // D[q][q] the shortest cycle through q. The single-hop matrix alone
        // is not a safe window bound — an event pending at p can reach q
        // through intermediaries, and can pull another shard's t_min
        // backwards on the way.
        let closure_ns = {
            let s = s_count;
            let mut d = lookahead_ns.clone();
            for k in 0..s {
                for i in 0..s {
                    let dik = d[i * s + k];
                    if dik == u64::MAX {
                        continue;
                    }
                    for j in 0..s {
                        let alt = dik.saturating_add(d[k * s + j]);
                        if alt < d[i * s + j] {
                            d[i * s + j] = alt;
                        }
                    }
                }
            }
            d
        };
        let part = Arc::new(partition);

        // Distribute actors (with their kernel state) to their shards.
        // States move wholesale so RNG streams, issue counters, and timer
        // slabs — and therefore outstanding TimerTokens — carry over
        // exactly. Actors arrive in ascending global-id order, matching the
        // partition's dense slot indices.
        let now = self.core.now;
        let mut shard_states: Vec<ShardState<A, Q>> = (0..s_count)
            .map(|s| ShardState {
                shard: s as u32,
                actors: Vec::with_capacity(part.count(s)),
                core: KernelCore::shard_shell(now, s as u32, Arc::clone(&part)),
                queue: Q::default(),
            })
            .collect();
        let actors = std::mem::take(&mut self.actors);
        let states = std::mem::take(&mut self.core.states);
        for (gid, (actor, state)) in actors.into_iter().zip(states).enumerate() {
            let sh = &mut shard_states[part.shard_of()[gid] as usize];
            sh.actors.push(actor);
            sh.core.states.push(state);
        }

        // Route the pending-event set to the owning shards. The old queue is
        // replaced (not reused) so backend-internal bookkeeping — e.g. the
        // calendar queue's last-popped monotonicity check — starts fresh for
        // whatever survives the run.
        while let Some(ev) = self.queue.pop() {
            let dst = part.shard_of()[ev.payload.destination().index()] as usize;
            shard_states[dst].queue.push(ev);
        }
        self.queue = Q::default();

        let shared = Shared {
            barrier: SpinBarrier::new(s_count),
            min_times: (0..s_count).map(|_| AtomicU64::new(u64::MAX)).collect(),
            steps: (0..s_count).map(|_| AtomicU64::new(0)).collect(),
            mail: (0..s_count * s_count)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        };

        let mut finished: Vec<(ShardState<A, Q>, ShardOutcome)> = if s_count == 1 {
            // Same windowed code path, no thread spawn.
            let st = shard_states.pop().expect("one shard");
            vec![run_shard(
                st,
                &shared,
                &part,
                &lookahead_ns,
                &closure_ns,
                budget,
            )]
        } else {
            let shared_ref = &shared;
            let part_ref = &*part;
            let la_ref = &lookahead_ns[..];
            let cl_ref = &closure_ns[..];
            let mut iter = shard_states.into_iter();
            let first = iter.next().expect("at least one shard");
            std::thread::scope(|scope| {
                let handles: Vec<_> = iter
                    .map(|st| {
                        scope.spawn(move || {
                            run_shard(st, shared_ref, part_ref, la_ref, cl_ref, budget)
                        })
                    })
                    .collect();
                // The calling thread runs shard 0 itself.
                let mut done = vec![run_shard(
                    first, shared_ref, part_ref, la_ref, cl_ref, budget,
                )];
                for h in handles {
                    done.push(h.join().expect("shard thread panicked"));
                }
                done
            })
        };
        finished.sort_by_key(|(st, _)| st.shard);

        // Reassemble: actors and states back in global-id order, leftover
        // events (budget exhaustion only) back into the world queue, clocks
        // and counters merged. For a completed run the merged clock is the
        // maximum shard clock — the timestamp of the globally last processed
        // event, which is what the serial run's clock reads. A budget stop is
        // different under asymmetric windows: one shard may have run far
        // ahead while another still holds earlier (causally independent)
        // events, so the clock is clamped back to the earliest leftover —
        // the resume cursor a serial or sharded continuation replays from.
        let mut stats = ShardRunStats {
            steps: 0,
            windows: 0,
            shard_events: shared
                .steps
                .iter()
                .map(|c| c.load(Ordering::SeqCst))
                .collect(),
            barrier_wait_ns: Vec::with_capacity(s_count),
            profiles: Vec::with_capacity(s_count),
        };
        stats.steps = stats.shard_events.iter().sum();
        let mut final_now = now;
        let mut per_shard_actors: Vec<_> = Vec::with_capacity(s_count);
        for (st, outcome) in &mut finished {
            final_now = final_now.max(st.core.now);
            self.core.messages_delivered += st.core.messages_delivered;
            self.core.timers_fired += st.core.timers_fired;
            self.core.batched_messages += st.core.batched_messages;
            stats.windows = stats.windows.max(outcome.windows);
            stats.barrier_wait_ns.push(outcome.barrier_wait_ns);
            stats.profiles.push(std::mem::take(&mut outcome.profile));
            while let Some(ev) = st.queue.pop() {
                self.queue.push(ev);
            }
        }
        for (st, _) in finished {
            per_shard_actors.push((st.actors.into_iter(), st.core.states.into_iter()));
        }
        self.actors.reserve(n);
        self.core.states.reserve(n);
        for gid in 0..n {
            let (actors, states) = &mut per_shard_actors[part.shard_of()[gid] as usize];
            self.actors
                .push(actors.next().expect("actor count mismatch"));
            self.core
                .states
                .push(states.next().expect("state count mismatch"));
        }
        if let Some(k) = self.queue.peek_key() {
            final_now = final_now.min(k.time);
        }
        self.core.now = final_now;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ActorId, Ctx, World};
    use crate::queue::{BinaryHeapQueue, CalendarQueue};
    use crate::time::SimTime;

    /// A chatty actor: every delivery re-sends to a pseudo-random peer with
    /// a delay ≥ the lookahead, arms a short local timer, and sometimes
    /// cancels it — exercising messages, timers, and cancellation across
    /// shard boundaries.
    struct Gossip {
        n: u32,
        log: Vec<(SimTime, u32)>,
        fired: u32,
        pending: Option<crate::engine::TimerToken>,
    }

    impl Actor for Gossip {
        type Msg = u32;
        type Timer = u8;

        fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u8>, _from: ActorId, msg: u32) {
            self.log.push((ctx.now(), msg));
            if msg == 0 {
                return; // hop budget exhausted
            }
            let peer = ActorId(ctx.rng().below(self.n as u64) as u32);
            let jitter = ctx.rng().below(3_000_000);
            ctx.send(
                peer,
                msg - 1,
                SimDuration::from_millis(1) + SimDuration::from_nanos(jitter),
            );
            // Local churn: arm a sub-lookahead timer; cancel every other one.
            let tok = ctx.set_timer(SimDuration::from_micros(30), 0);
            if let Some(prev) = self.pending.take() {
                ctx.cancel_timer(prev);
            } else {
                self.pending = Some(tok);
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32, u8>, _t: u8) {
            self.fired += 1;
            self.log.push((ctx.now(), u32::MAX));
        }
    }

    fn gossip_world(n: u32, seed: u64) -> World<Gossip> {
        let mut w = World::new(
            (0..n)
                .map(|_| Gossip {
                    n,
                    log: Vec::new(),
                    fired: 0,
                    pending: None,
                })
                .collect(),
            seed,
        );
        for i in 0..n {
            w.send_external(ActorId(i), 40, SimDuration::from_millis(1 + u64::from(i)));
        }
        w
    }

    type Fingerprint = (Vec<Vec<(SimTime, u32)>>, u64, u64, SimTime);

    fn fingerprint(w: &World<Gossip>) -> Fingerprint {
        (
            w.actors().iter().map(|a| a.log.clone()).collect(),
            w.messages_delivered(),
            w.timers_fired(),
            w.now(),
        )
    }

    #[test]
    fn partition_round_robin_and_from_assignment_agree() {
        let rr = Partition::round_robin(7, 3);
        let manual = Partition::from_assignment(vec![0, 1, 2, 0, 1, 2, 0], 3);
        assert_eq!(rr, manual);
        assert_eq!(rr.shards(), 3);
        assert_eq!(rr.len(), 7);
        assert_eq!((rr.count(0), rr.count(1), rr.count(2)), (3, 2, 2));
        // Dense slots follow ascending gid within each shard.
        assert_eq!(rr.slot_of(0), 0);
        assert_eq!(rr.slot_of(3), 1);
        assert_eq!(rr.slot_of(6), 2);
        assert_eq!(rr.slot_of(1), 0);
        assert_eq!(rr.slot_of(5), 1);
    }

    #[test]
    fn partition_tolerates_empty_shards() {
        let p = Partition::from_assignment(vec![2, 2, 2], 4);
        assert_eq!(p.count(0), 0);
        assert_eq!(p.count(2), 3);
        assert_eq!(p.slot_of(2), 2);
    }

    #[test]
    #[should_panic(expected = "assigned to shard")]
    fn partition_rejects_out_of_range_assignment() {
        let _ = Partition::from_assignment(vec![0, 5], 2);
    }

    #[test]
    fn uniform_lookahead_has_max_diagonal() {
        let m = uniform_lookahead(3, SimDuration::from_millis(2));
        for p in 0..3 {
            for q in 0..3 {
                if p == q {
                    assert_eq!(m[p * 3 + q], SimDuration::MAX);
                } else {
                    assert_eq!(m[p * 3 + q], SimDuration::from_millis(2));
                }
            }
        }
    }

    #[test]
    fn sharded_run_matches_serial_bit_for_bit() {
        let mut serial = gossip_world(9, 42);
        serial.run();
        let want = fingerprint(&serial);
        for shards in [1, 2, 4, 8] {
            let mut w = gossip_world(9, 42);
            w.run_sharded(shards, SimDuration::from_millis(1), u64::MAX);
            assert_eq!(fingerprint(&w), want, "divergence at {shards} shards");
        }
    }

    #[test]
    fn arbitrary_partitions_match_serial_bit_for_bit() {
        // Locality-style (non-round-robin, unbalanced, with an empty shard)
        // assignments must leave the outcome untouched.
        let mut serial = gossip_world(9, 42);
        serial.run();
        let want = fingerprint(&serial);
        for assignment in [
            vec![0, 0, 0, 1, 1, 1, 2, 2, 2], // contiguous blocks
            vec![2, 0, 2, 0, 1, 1, 0, 2, 1], // scrambled
            vec![0, 0, 0, 0, 0, 0, 0, 2, 2], // unbalanced + empty shard 1
        ] {
            let part = Partition::from_assignment(assignment.clone(), 3);
            let matrix = uniform_lookahead(3, SimDuration::from_millis(1));
            let mut w = gossip_world(9, 42);
            let stats = w.run_partitioned(part, &matrix, u64::MAX);
            assert_eq!(fingerprint(&w), want, "divergence under {assignment:?}");
            assert_eq!(
                stats.shard_events.iter().sum::<u64>(),
                stats.steps,
                "per-shard event counts must sum to the total"
            );
            assert_eq!(stats.barrier_wait_ns.len(), 3);
            assert_eq!(stats.profiles.len(), 3);
            for (s, (p, &events)) in stats.profiles.iter().zip(&stats.shard_events).enumerate() {
                assert!(
                    p.execute_ns >= p.execute_ns_max && p.drain_ns >= p.drain_ns_max,
                    "shard {s}: phase totals must dominate their maxima: {p:?}"
                );
                assert!(
                    p.window_events_max <= events,
                    "shard {s}: one window cannot exceed the shard total"
                );
            }
            // Every cross-shard message some shard received was drained.
            let drained: u64 = stats.profiles.iter().map(|p| p.drained_msgs).sum();
            if stats.steps > 0
                && assignment
                    .iter()
                    .collect::<std::collections::HashSet<_>>()
                    .len()
                    > 1
            {
                assert!(drained > 0, "gossip across shards must exchange mail");
            }
        }
    }

    #[test]
    fn wider_pairwise_lookahead_needs_fewer_windows() {
        // Two shard groups that only talk to each other over ≥ 3 ms links
        // (the gossip delay is 1–4 ms, so 1 ms is the only safe uniform
        // bound, but entries may legitimately be raised where the partition
        // knows better). A wider matrix must change the window schedule
        // only — never the outcome.
        struct TwoGroups {
            n: u32,
            log: Vec<(SimTime, u32)>,
        }
        impl Actor for TwoGroups {
            type Msg = u32;
            type Timer = u8;
            fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u8>, _from: ActorId, msg: u32) {
                self.log.push((ctx.now(), msg));
                if msg == 0 {
                    return;
                }
                let me = ctx.me().0;
                let peer = ActorId(ctx.rng().below(self.n as u64) as u32);
                // Same group (same parity): 1 ms links. Cross-group: 3 ms.
                let base = if peer.0 % 2 == me % 2 { 1 } else { 3 };
                let jitter = ctx.rng().below(500_000);
                ctx.send(
                    peer,
                    msg - 1,
                    SimDuration::from_millis(base) + SimDuration::from_nanos(jitter),
                );
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32, u8>, _t: u8) {}
        }
        let build = || {
            let mut w = World::new(
                (0..8)
                    .map(|_| TwoGroups {
                        n: 8,
                        log: Vec::new(),
                    })
                    .collect::<Vec<_>>(),
                17,
            );
            for i in 0..8u32 {
                w.send_external(ActorId(i), 30, SimDuration::from_millis(1 + u64::from(i)));
            }
            w
        };
        let mut serial = build();
        serial.run();
        let want: Vec<Vec<(SimTime, u32)>> =
            serial.actors().iter().map(|a| a.log.clone()).collect();

        // Partition by parity: every cross-shard link is ≥ 3 ms.
        let part = || Partition::from_assignment(vec![0, 1, 0, 1, 0, 1, 0, 1], 2);
        let run = |matrix: &[SimDuration]| {
            let mut w = build();
            let stats = w.run_partitioned(part(), matrix, u64::MAX);
            let logs: Vec<Vec<(SimTime, u32)>> = w.actors().iter().map(|a| a.log.clone()).collect();
            (logs, stats.windows)
        };
        let (narrow_logs, narrow_windows) = run(&uniform_lookahead(2, SimDuration::from_millis(1)));
        let (wide_logs, wide_windows) = run(&uniform_lookahead(2, SimDuration::from_millis(3)));
        assert_eq!(narrow_logs, want);
        assert_eq!(wide_logs, want);
        assert!(
            wide_windows < narrow_windows,
            "3 ms pairwise windows ({wide_windows}) should beat 1 ms ones ({narrow_windows})"
        );
    }

    #[test]
    fn sharded_run_matches_serial_on_calendar_backend() {
        let mut serial = gossip_world(6, 7);
        serial.run();
        let want = fingerprint(&serial);
        let mut w = GenericWorld::with_queue(
            (0..6)
                .map(|_| Gossip {
                    n: 6,
                    log: Vec::new(),
                    fired: 0,
                    pending: None,
                })
                .collect(),
            7,
            CalendarQueue::new(),
        );
        for i in 0..6 {
            w.send_external(ActorId(i), 40, SimDuration::from_millis(1 + u64::from(i)));
        }
        w.run_sharded(3, SimDuration::from_millis(1), u64::MAX);
        assert_eq!(
            (
                w.actors().iter().map(|a| a.log.clone()).collect::<Vec<_>>(),
                w.messages_delivered(),
                w.timers_fired(),
                w.now(),
            ),
            want
        );
    }

    #[test]
    fn shard_count_above_actor_count_is_clamped() {
        let mut w = gossip_world(3, 5);
        let mut serial = gossip_world(3, 5);
        serial.run();
        w.run_sharded(64, SimDuration::from_millis(1), u64::MAX);
        assert_eq!(fingerprint(&w), fingerprint(&serial));
    }

    #[test]
    fn budget_stops_at_a_window_boundary_and_preserves_leftovers() {
        let mut w = gossip_world(8, 11);
        let before = {
            let mut full = gossip_world(8, 11);
            full.run();
            full.messages_delivered() + full.timers_fired()
        };
        let steps = w.run_sharded(4, SimDuration::from_millis(1), 16);
        assert!(steps >= 16, "must reach the budget before stopping");
        assert!(w.pending_events() > 0, "leftovers must survive");
        // Resuming serially completes the run losslessly.
        w.run();
        assert_eq!(w.messages_delivered() + w.timers_fired(), before);
    }

    #[test]
    fn resuming_sharded_after_sharded_is_lossless() {
        // Timer tokens and RNG streams must survive two partition/reassemble
        // cycles with different shard counts.
        let mut w = gossip_world(8, 13);
        w.run_sharded(4, SimDuration::from_millis(1), 32);
        w.run_sharded(2, SimDuration::from_millis(1), u64::MAX);
        let mut serial = gossip_world(8, 13);
        serial.run();
        assert_eq!(fingerprint(&w), fingerprint(&serial));
    }

    #[test]
    fn empty_world_and_empty_queue_are_fine() {
        let mut w: World<Gossip> = World::new(Vec::new(), 1);
        assert_eq!(w.run_sharded(4, SimDuration::from_millis(1), u64::MAX), 0);
        let mut w = World::new(
            vec![Gossip {
                n: 1,
                log: Vec::new(),
                fired: 0,
                pending: None,
            }],
            1,
        );
        assert_eq!(w.run_sharded(2, SimDuration::from_millis(1), u64::MAX), 0);
    }

    #[test]
    fn spin_barrier_synchronizes() {
        use std::sync::atomic::AtomicUsize;
        let b = SpinBarrier::new(4);
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for round in 1..=50usize {
                        hits.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the barrier, all 4 increments of this round
                        // must be visible.
                        assert!(hits.load(Ordering::SeqCst) >= 4 * round);
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn heap_queue_default_is_empty() {
        let q: BinaryHeapQueue<KernelEvent<u32, u8>> = BinaryHeapQueue::default();
        assert!(q.is_empty());
    }
}
