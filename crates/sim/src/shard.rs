//! Conservative, time-windowed parallel execution of a single simulation.
//!
//! [`GenericWorld::run_sharded`] partitions the actors of one world into `S`
//! shards (round-robin by actor id), gives each shard its own pending-event
//! set and its actors' kernel state (RNG streams, issue counters, timer
//! slabs), and executes synchronized **windows** of virtual time on `S`
//! threads. This is the classic null-message-free bounded-lag conservative
//! PDES design:
//!
//! * **Lookahead.** The caller supplies a `lookahead` — a lower bound on the
//!   delay of every *cross-actor* message (for the DSTM stack: the global
//!   minimum link delay of the topology, ≥ 1 ms by construction of the
//!   1–50 ms delay matrix). Self-sends and timers are actor-local, so they
//!   never cross a shard boundary and impose no lookahead constraint.
//! * **Windows.** Each round, every shard publishes the timestamp of its
//!   earliest pending event; the global minimum `t0` opens the window
//!   `[t0, t0 + lookahead)`. Every event anywhere in `[t0, t1)` can be
//!   executed without hearing from other shards, because anything a remote
//!   shard sends from inside the window arrives at `τ + d ≥ t0 + lookahead
//!   = t1` — outside it.
//! * **Mailboxes.** Cross-shard sends are buffered in per-(destination,
//!   source) outboxes during the window and exchanged at the barrier, so
//!   shards never contend on each other's queues mid-window.
//!
//! # Determinism
//!
//! A sharded run is **bit-identical** to the serial run, for any `S`:
//!
//! * Event keys are interleaving-independent (`EventKey::compose`: time,
//!   issuing actor, per-actor sequence) — an event gets the same key no
//!   matter which thread issued it or when.
//! * Within a window a shard's pending set evolves only through its own
//!   processing (remote arrivals land at ≥ `t1`), so the shard-local
//!   greedy-min order equals the serial order restricted to that shard's
//!   actors; per-actor delivered sequences are therefore identical.
//! * The stop decision (drained / budget exhausted) and the window schedule
//!   are computed from sharding-independent aggregates, so every sharding
//!   stops at the same point; the final clock is the maximum processed event
//!   time, also sharding-independent.
//!
//! The differential proptests in `tests/shard_differential.rs` enforce this
//! for the whole DSTM protocol stack across `shards ∈ {1, 2, 4, 8}`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::{dispatch_one, Actor, GenericWorld, KernelCore, KernelEvent, StepOutcome};
use crate::event::Sequenced;
use crate::queue::EventQueue;
use crate::time::SimDuration;

/// A reusable spin barrier (generation-counted). Spins briefly, then yields:
/// window rounds are short, but the host may have fewer cores than shards —
/// a pure spin would livelock a 1-core machine.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Block until all `n` participants arrive. Data written before `wait`
    /// is visible to every participant after it (release/acquire through the
    /// counter RMW chain and the generation bump).
    fn wait(&self) {
        if self.n == 1 {
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// State shared by all shards of one `run_sharded` call.
struct Shared<E> {
    barrier: SpinBarrier,
    /// Per-shard: timestamp (nanos) of the earliest pending local event at
    /// the last window boundary, or `u64::MAX` if that shard is drained.
    min_times: Vec<AtomicU64>,
    /// Per-shard: cumulative events processed (dispatched or skipped).
    steps: Vec<AtomicU64>,
    /// Cross-shard mail, indexed `destination * S + source`. Only touched at
    /// window boundaries, so a plain mutex per slot is uncontended.
    mail: Vec<Mutex<Vec<Sequenced<E>>>>,
}

/// The queue a shard dispatches through: local events go straight into the
/// shard's own pending set; cross-shard sends are buffered in per-destination
/// outboxes until the window boundary.
struct ShardQueue<'a, Q, M, T> {
    local: &'a mut Q,
    /// Outbox per destination shard (`outboxes[self_shard]` stays unused).
    outboxes: &'a mut [Vec<Sequenced<KernelEvent<M, T>>>],
    shard: u32,
    shards: u32,
    /// Exclusive end of the current window, for the safety assertion: a
    /// cross-shard event must land at or after it.
    window_end: u64,
}

impl<Q, M, T> EventQueue<KernelEvent<M, T>> for ShardQueue<'_, Q, M, T>
where
    Q: EventQueue<KernelEvent<M, T>>,
{
    fn push(&mut self, ev: Sequenced<KernelEvent<M, T>>) {
        let dst = ev.payload.destination().0 % self.shards;
        if dst == self.shard {
            self.local.push(ev);
        } else {
            debug_assert!(
                ev.key.time.as_nanos() >= self.window_end,
                "cross-shard event inside the window: scheduled {:?}, window ends at {}ns — \
                 lookahead exceeds the actual minimum cross-actor delay",
                ev.key,
                self.window_end
            );
            self.outboxes[dst as usize].push(ev);
        }
    }

    fn pop(&mut self) -> Option<Sequenced<KernelEvent<M, T>>> {
        self.local.pop()
    }

    fn peek_key(&self) -> Option<crate::event::EventKey> {
        self.local.peek_key()
    }

    fn len(&self) -> usize {
        self.local.len()
    }
}

/// A buffered cross-shard outbox: events destined for one other shard.
type Outbox<M, T> = Vec<Sequenced<KernelEvent<M, T>>>;

/// Everything one shard owns during a run, and hands back afterwards.
struct ShardState<A: Actor, Q> {
    shard: u32,
    actors: Vec<A>,
    core: KernelCore,
    queue: Q,
}

/// Run one shard to completion: alternate publish/decide/execute rounds until
/// the global decision is to stop. Returns the shard with its final state.
fn run_shard<A, Q>(
    mut st: ShardState<A, Q>,
    shared: &Shared<KernelEvent<A::Msg, A::Timer>>,
    shards: u32,
    lookahead: u64,
    budget: u64,
) -> ShardState<A, Q>
where
    A: Actor,
    Q: EventQueue<KernelEvent<A::Msg, A::Timer>>,
{
    let s = st.shard as usize;
    let n_shards = shards as usize;
    let mut outboxes: Vec<Outbox<A::Msg, A::Timer>> = (0..n_shards).map(|_| Vec::new()).collect();
    let mut local_steps = 0u64;

    loop {
        // Publish this shard's earliest pending time and progress. Mailboxes
        // are always empty here (drained at the end of the previous round),
        // so the local queue is the whole truth.
        let local_min = st
            .queue
            .peek_key()
            .map(|k| k.time.as_nanos())
            .unwrap_or(u64::MAX);
        shared.min_times[s].store(local_min, Ordering::SeqCst);
        shared.steps[s].store(local_steps, Ordering::SeqCst);
        shared.barrier.wait();

        // Every shard computes the same decision from the same published
        // aggregates (nothing is re-published until after the next barrier).
        let t0 = shared
            .min_times
            .iter()
            .map(|t| t.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        let total_steps: u64 = shared.steps.iter().map(|c| c.load(Ordering::SeqCst)).sum();
        if t0 == u64::MAX || total_steps >= budget {
            // Drained everywhere, or the runaway backstop tripped. No shard
            // has posted mail this round, so stopping here loses nothing.
            break;
        }
        let t1 = t0.saturating_add(lookahead);

        // Execute every local event inside [t0, t1). Events generated during
        // the window that land inside it (self-sends, short timers) are
        // picked up by the re-peek; cross-shard sends are asserted ≥ t1.
        let mut router = ShardQueue {
            local: &mut st.queue,
            outboxes: &mut outboxes,
            shard: st.shard,
            shards,
            window_end: t1,
        };
        while let Some(key) = router.peek_key() {
            if key.time.as_nanos() >= t1 {
                break;
            }
            let ev = router.pop().expect("peeked event vanished");
            match dispatch_one(&mut st.actors, &mut st.core, &mut router, ev) {
                StepOutcome::Drained => unreachable!("pop returned an event"),
                StepOutcome::Skipped | StepOutcome::Ran(_) => local_steps += 1,
            }
        }

        // Exchange mail: post outboxes, wait for everyone, collect inboxes.
        for (dst, outbox) in outboxes.iter_mut().enumerate() {
            if !outbox.is_empty() {
                shared.mail[dst * n_shards + s]
                    .lock()
                    .expect("mail mutex poisoned")
                    .append(outbox);
            }
        }
        shared.barrier.wait();
        for src in 0..n_shards {
            let mut inbox = shared.mail[s * n_shards + src]
                .lock()
                .expect("mail mutex poisoned");
            for ev in inbox.drain(..) {
                st.queue.push(ev);
            }
        }
    }

    st
}

impl<A, Q> GenericWorld<A, Q>
where
    A: Actor + Send,
    A::Msg: Send,
    A::Timer: Send,
    Q: EventQueue<KernelEvent<A::Msg, A::Timer>> + Default + Send,
{
    /// Run this world to quiescence (or until `budget` events have been
    /// processed) on `shards` threads, using conservative time windows of
    /// width `lookahead`. Returns the number of events processed.
    ///
    /// **Safety requirement**: `lookahead` must be a lower bound on the
    /// virtual-time delay of every message between *different* actors (timers
    /// and self-sends are exempt — they never leave their actor's shard).
    /// Violations are caught by a debug assertion when a cross-shard event
    /// lands inside a window. For the DSTM stack the bound is the topology's
    /// minimum link delay (`Topology::min_delay`).
    ///
    /// The outcome — per-actor event sequences, delivered/timer counters,
    /// final clock, every actor's state — is bit-identical to the serial
    /// [`run`](GenericWorld::run) for every shard count, including 1. Kernel
    /// tracing must be disabled (per-actor protocol traces are fine: they
    /// travel with their actors and merge deterministically).
    pub fn run_sharded(&mut self, shards: usize, lookahead: SimDuration, budget: u64) -> u64 {
        assert!(
            !self.core.trace.enabled(),
            "kernel tracing is not supported in sharded runs"
        );
        assert!(
            lookahead.as_nanos() > 0,
            "conservative windows need positive lookahead"
        );
        let n = self.actors.len();
        if n == 0 {
            return 0;
        }
        let s_count = shards.clamp(1, n);
        let shards_u32 = s_count as u32;

        // Partition actors (with their kernel state) round-robin: shard s
        // owns global ids ≡ s (mod S), local slot = gid / S. States move
        // wholesale so RNG streams, issue counters, and timer slabs — and
        // therefore outstanding TimerTokens — carry over exactly.
        let now = self.core.now;
        let mut shard_states: Vec<ShardState<A, Q>> = (0..shards_u32)
            .map(|s| ShardState {
                shard: s,
                actors: Vec::with_capacity(n / s_count + 1),
                core: KernelCore::shard_shell(now, s, shards_u32),
                queue: Q::default(),
            })
            .collect();
        let actors = std::mem::take(&mut self.actors);
        let states = std::mem::take(&mut self.core.states);
        for (gid, (actor, state)) in actors.into_iter().zip(states).enumerate() {
            let sh = &mut shard_states[gid % s_count];
            sh.actors.push(actor);
            sh.core.states.push(state);
        }

        // Route the pending-event set to the owning shards. The old queue is
        // replaced (not reused) so backend-internal bookkeeping — e.g. the
        // calendar queue's last-popped monotonicity check — starts fresh for
        // whatever survives the run.
        while let Some(ev) = self.queue.pop() {
            let dst = (ev.payload.destination().0 % shards_u32) as usize;
            shard_states[dst].queue.push(ev);
        }
        self.queue = Q::default();

        let shared = Shared {
            barrier: SpinBarrier::new(s_count),
            min_times: (0..s_count).map(|_| AtomicU64::new(u64::MAX)).collect(),
            steps: (0..s_count).map(|_| AtomicU64::new(0)).collect(),
            mail: (0..s_count * s_count)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        };
        let lookahead_ns = lookahead.as_nanos();

        let mut finished: Vec<ShardState<A, Q>> = if s_count == 1 {
            // Same windowed code path, no thread spawn.
            let st = shard_states.pop().expect("one shard");
            vec![run_shard(st, &shared, shards_u32, lookahead_ns, budget)]
        } else {
            let shared_ref = &shared;
            let mut iter = shard_states.into_iter();
            let first = iter.next().expect("at least one shard");
            std::thread::scope(|scope| {
                let handles: Vec<_> = iter
                    .map(|st| {
                        scope.spawn(move || {
                            run_shard(st, shared_ref, shards_u32, lookahead_ns, budget)
                        })
                    })
                    .collect();
                // The calling thread runs shard 0 itself.
                let mut done = vec![run_shard(
                    first,
                    shared_ref,
                    shards_u32,
                    lookahead_ns,
                    budget,
                )];
                for h in handles {
                    done.push(h.join().expect("shard thread panicked"));
                }
                done
            })
        };
        finished.sort_by_key(|st| st.shard);

        // Reassemble: actors and states back in global-id order, leftover
        // events (budget exhaustion only) back into the world queue, clocks
        // and counters merged. The merged clock is the maximum shard clock —
        // the timestamp of the globally last processed event — which is what
        // the serial run's clock reads at the same stop point.
        let mut final_now = now;
        let mut per_shard_actors: Vec<_> = Vec::with_capacity(s_count);
        for st in &mut finished {
            final_now = final_now.max(st.core.now);
            self.core.messages_delivered += st.core.messages_delivered;
            self.core.timers_fired += st.core.timers_fired;
            while let Some(ev) = st.queue.pop() {
                self.queue.push(ev);
            }
        }
        let total_steps: u64 = shared.steps.iter().map(|c| c.load(Ordering::SeqCst)).sum();
        for st in finished {
            per_shard_actors.push((st.actors.into_iter(), st.core.states.into_iter()));
        }
        self.actors.reserve(n);
        self.core.states.reserve(n);
        for gid in 0..n {
            let (actors, states) = &mut per_shard_actors[gid % s_count];
            self.actors
                .push(actors.next().expect("actor count mismatch"));
            self.core
                .states
                .push(states.next().expect("state count mismatch"));
        }
        self.core.now = final_now;
        total_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ActorId, Ctx, World};
    use crate::queue::{BinaryHeapQueue, CalendarQueue};
    use crate::time::SimTime;

    /// A chatty actor: every delivery re-sends to a pseudo-random peer with
    /// a delay ≥ the lookahead, arms a short local timer, and sometimes
    /// cancels it — exercising messages, timers, and cancellation across
    /// shard boundaries.
    struct Gossip {
        n: u32,
        log: Vec<(SimTime, u32)>,
        fired: u32,
        pending: Option<crate::engine::TimerToken>,
    }

    impl Actor for Gossip {
        type Msg = u32;
        type Timer = u8;

        fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u8>, _from: ActorId, msg: u32) {
            self.log.push((ctx.now(), msg));
            if msg == 0 {
                return; // hop budget exhausted
            }
            let peer = ActorId(ctx.rng().below(self.n as u64) as u32);
            let jitter = ctx.rng().below(3_000_000);
            ctx.send(
                peer,
                msg - 1,
                SimDuration::from_millis(1) + SimDuration::from_nanos(jitter),
            );
            // Local churn: arm a sub-lookahead timer; cancel every other one.
            let tok = ctx.set_timer(SimDuration::from_micros(30), 0);
            if let Some(prev) = self.pending.take() {
                ctx.cancel_timer(prev);
            } else {
                self.pending = Some(tok);
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32, u8>, _t: u8) {
            self.fired += 1;
            self.log.push((ctx.now(), u32::MAX));
        }
    }

    fn gossip_world(n: u32, seed: u64) -> World<Gossip> {
        let mut w = World::new(
            (0..n)
                .map(|_| Gossip {
                    n,
                    log: Vec::new(),
                    fired: 0,
                    pending: None,
                })
                .collect(),
            seed,
        );
        for i in 0..n {
            w.send_external(ActorId(i), 40, SimDuration::from_millis(1 + u64::from(i)));
        }
        w
    }

    type Fingerprint = (Vec<Vec<(SimTime, u32)>>, u64, u64, SimTime);

    fn fingerprint(w: &World<Gossip>) -> Fingerprint {
        (
            w.actors().iter().map(|a| a.log.clone()).collect(),
            w.messages_delivered(),
            w.timers_fired(),
            w.now(),
        )
    }

    #[test]
    fn sharded_run_matches_serial_bit_for_bit() {
        let mut serial = gossip_world(9, 42);
        serial.run();
        let want = fingerprint(&serial);
        for shards in [1, 2, 4, 8] {
            let mut w = gossip_world(9, 42);
            w.run_sharded(shards, SimDuration::from_millis(1), u64::MAX);
            assert_eq!(fingerprint(&w), want, "divergence at {shards} shards");
        }
    }

    #[test]
    fn sharded_run_matches_serial_on_calendar_backend() {
        let mut serial = gossip_world(6, 7);
        serial.run();
        let want = fingerprint(&serial);
        let mut w = GenericWorld::with_queue(
            (0..6)
                .map(|_| Gossip {
                    n: 6,
                    log: Vec::new(),
                    fired: 0,
                    pending: None,
                })
                .collect(),
            7,
            CalendarQueue::new(),
        );
        for i in 0..6 {
            w.send_external(ActorId(i), 40, SimDuration::from_millis(1 + u64::from(i)));
        }
        w.run_sharded(3, SimDuration::from_millis(1), u64::MAX);
        assert_eq!(
            (
                w.actors().iter().map(|a| a.log.clone()).collect::<Vec<_>>(),
                w.messages_delivered(),
                w.timers_fired(),
                w.now(),
            ),
            want
        );
    }

    #[test]
    fn shard_count_above_actor_count_is_clamped() {
        let mut w = gossip_world(3, 5);
        let mut serial = gossip_world(3, 5);
        serial.run();
        w.run_sharded(64, SimDuration::from_millis(1), u64::MAX);
        assert_eq!(fingerprint(&w), fingerprint(&serial));
    }

    #[test]
    fn budget_stops_at_a_window_boundary_and_preserves_leftovers() {
        let mut w = gossip_world(8, 11);
        let before = {
            let mut full = gossip_world(8, 11);
            full.run();
            full.messages_delivered() + full.timers_fired()
        };
        let steps = w.run_sharded(4, SimDuration::from_millis(1), 16);
        assert!(steps >= 16, "must finish the window the budget tripped in");
        assert!(w.pending_events() > 0, "leftovers must survive");
        // Resuming serially completes the run losslessly.
        w.run();
        assert_eq!(w.messages_delivered() + w.timers_fired(), before);
    }

    #[test]
    fn resuming_sharded_after_sharded_is_lossless() {
        // Timer tokens and RNG streams must survive two partition/reassemble
        // cycles with different shard counts.
        let mut w = gossip_world(8, 13);
        w.run_sharded(4, SimDuration::from_millis(1), 32);
        w.run_sharded(2, SimDuration::from_millis(1), u64::MAX);
        let mut serial = gossip_world(8, 13);
        serial.run();
        assert_eq!(fingerprint(&w), fingerprint(&serial));
    }

    #[test]
    fn empty_world_and_empty_queue_are_fine() {
        let mut w: World<Gossip> = World::new(Vec::new(), 1);
        assert_eq!(w.run_sharded(4, SimDuration::from_millis(1), u64::MAX), 0);
        let mut w = World::new(
            vec![Gossip {
                n: 1,
                log: Vec::new(),
                fired: 0,
                pending: None,
            }],
            1,
        );
        assert_eq!(w.run_sharded(2, SimDuration::from_millis(1), u64::MAX), 0);
    }

    #[test]
    fn spin_barrier_synchronizes() {
        use std::sync::atomic::AtomicUsize;
        let b = SpinBarrier::new(4);
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for round in 1..=50usize {
                        hits.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the barrier, all 4 increments of this round
                        // must be visible.
                        assert!(hits.load(Ordering::SeqCst) >= 4 * round);
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn heap_queue_default_is_empty() {
        let q: BinaryHeapQueue<KernelEvent<u32, u8>> = BinaryHeapQueue::default();
        assert!(q.is_empty());
    }
}
