//! Event ordering primitives.
//!
//! Determinism requires a *total* order on events. Virtual time alone is not
//! total (many events share a timestamp — e.g. zero-delay local sends), so
//! every scheduled event also carries a monotonically increasing sequence
//! number assigned at scheduling time. Ties in time break by sequence number,
//! i.e. FIFO among simultaneous events, which is both deterministic and the
//! least surprising semantics for protocol code.

use crate::time::SimTime;

/// The key by which scheduled events are ordered: `(time, seq)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct EventKey {
    pub time: SimTime,
    pub seq: u64,
}

impl EventKey {
    #[inline]
    pub fn new(time: SimTime, seq: u64) -> Self {
        EventKey { time, seq }
    }
}

/// A payload tagged with its ordering key.
#[derive(Clone, Debug)]
pub struct Sequenced<E> {
    pub key: EventKey,
    pub payload: E,
}

impl<E> Sequenced<E> {
    #[inline]
    pub fn new(time: SimTime, seq: u64, payload: E) -> Self {
        Sequenced {
            key: EventKey::new(time, seq),
            payload,
        }
    }
}

impl<E> PartialEq for Sequenced<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Sequenced<E> {}

impl<E> PartialOrd for Sequenced<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Sequenced<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_orders_by_time_then_seq() {
        let a = EventKey::new(SimTime(5), 0);
        let b = EventKey::new(SimTime(5), 1);
        let c = EventKey::new(SimTime(6), 0);
        assert!(a < b && b < c && a < c);
    }

    #[test]
    fn sequenced_ignores_payload_in_ordering() {
        let a = Sequenced::new(SimTime(1), 0, "zzz");
        let b = Sequenced::new(SimTime(1), 1, "aaa");
        assert!(a < b);
        assert_ne!(a, b);
        let c = Sequenced::new(SimTime(1), 0, "different payload");
        assert_eq!(a, c);
    }
}
