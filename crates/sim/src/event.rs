//! Event ordering primitives.
//!
//! Determinism requires a *total* order on events. Virtual time alone is not
//! total (many events share a timestamp — e.g. zero-delay local sends), so
//! ties break by `(issuing actor, per-actor issue sequence)`, packed into a
//! single `u64`. Crucially this tiebreak is **interleaving-independent**:
//! each actor stamps its own events from its own counter, so the key an
//! event gets does not depend on how actors' handler invocations were
//! interleaved globally. That is what lets the sharded executor
//! (`GenericWorld::run_sharded`) run actors on different threads and still
//! produce the exact event order a serial run produces — a global
//! issue-sequence counter (the previous scheme) would be assigned in
//! nondeterministic order under parallel execution.
//!
//! Among simultaneous events the order is: lower actor id first, then FIFO
//! per actor — deterministic and stable.

use crate::time::SimTime;

/// Bits of the packed tiebreak reserved for the per-actor sequence.
const LOCAL_SEQ_BITS: u32 = 40;
const LOCAL_SEQ_MASK: u64 = (1 << LOCAL_SEQ_BITS) - 1;

/// The key by which scheduled events are ordered: `(time, issuer, seq)`,
/// with `(issuer, seq)` packed into the `seq` word (issuer in the high 24
/// bits, per-actor sequence in the low 40). Lexicographic order on
/// `(time, seq)` is therefore order on `(time, issuer, per-actor seq)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct EventKey {
    pub time: SimTime,
    pub seq: u64,
}

impl EventKey {
    #[inline]
    pub fn new(time: SimTime, seq: u64) -> Self {
        EventKey { time, seq }
    }

    /// Pack `(issuer, per-actor seq)` into the tiebreak word. Supports up to
    /// 2^24 actors and 2^40 events issued per actor per run — far beyond any
    /// simulation this kernel drives, but asserted in debug builds anyway.
    #[inline]
    pub fn compose(time: SimTime, issuer: u32, local_seq: u64) -> Self {
        debug_assert!(issuer < (1 << 24), "actor id {issuer} exceeds 24 bits");
        debug_assert!(
            local_seq <= LOCAL_SEQ_MASK,
            "per-actor sequence overflowed 40 bits"
        );
        EventKey {
            time,
            seq: ((issuer as u64) << LOCAL_SEQ_BITS) | (local_seq & LOCAL_SEQ_MASK),
        }
    }

    /// The actor that issued (scheduled) this event.
    #[inline]
    pub fn issuer(self) -> u32 {
        (self.seq >> LOCAL_SEQ_BITS) as u32
    }

    /// The issuer's private sequence number for this event.
    #[inline]
    pub fn local_seq(self) -> u64 {
        self.seq & LOCAL_SEQ_MASK
    }
}

/// A payload tagged with its ordering key.
#[derive(Clone, Debug)]
pub struct Sequenced<E> {
    pub key: EventKey,
    pub payload: E,
}

impl<E> Sequenced<E> {
    #[inline]
    pub fn new(time: SimTime, seq: u64, payload: E) -> Self {
        Sequenced {
            key: EventKey::new(time, seq),
            payload,
        }
    }
}

impl<E> PartialEq for Sequenced<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Sequenced<E> {}

impl<E> PartialOrd for Sequenced<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Sequenced<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_orders_by_time_then_seq() {
        let a = EventKey::new(SimTime(5), 0);
        let b = EventKey::new(SimTime(5), 1);
        let c = EventKey::new(SimTime(6), 0);
        assert!(a < b && b < c && a < c);
    }

    #[test]
    fn compose_orders_by_time_then_issuer_then_local_seq() {
        let k = |t, a, s| EventKey::compose(SimTime(t), a, s);
        // time dominates, even against a much larger issuer/seq.
        assert!(k(1, 999, 999) < k(2, 0, 0));
        // at equal time, the lower actor id wins, regardless of seq.
        assert!(k(5, 1, 1_000_000) < k(5, 2, 0));
        // at equal time and actor, FIFO per actor.
        assert!(k(5, 3, 7) < k(5, 3, 8));
    }

    #[test]
    fn compose_roundtrips_issuer_and_local_seq() {
        let k = EventKey::compose(SimTime(9), 0xABCDEF, (1 << 40) - 1);
        assert_eq!(k.issuer(), 0xABCDEF);
        assert_eq!(k.local_seq(), (1 << 40) - 1);
        let k = EventKey::compose(SimTime(9), 0, 0);
        assert_eq!((k.issuer(), k.local_seq()), (0, 0));
    }

    #[test]
    fn compose_is_a_total_order() {
        // Total and stable: distinct (time, issuer, seq) triples map to
        // distinct keys, and comparison is exactly lexicographic on the
        // triple — checked exhaustively over a small cube.
        let mut keys = Vec::new();
        for t in 0..4u64 {
            for a in 0..4u32 {
                for s in 0..4u64 {
                    keys.push(((t, a, s), EventKey::compose(SimTime(t), a, s)));
                }
            }
        }
        for (ta, ka) in &keys {
            for (tb, kb) in &keys {
                assert_eq!(ka.cmp(kb), ta.cmp(tb), "{ta:?} vs {tb:?}");
            }
        }
    }

    #[test]
    fn sequenced_ignores_payload_in_ordering() {
        let a = Sequenced::new(SimTime(1), 0, "zzz");
        let b = Sequenced::new(SimTime(1), 1, "aaa");
        assert!(a < b);
        assert_ne!(a, b);
        let c = Sequenced::new(SimTime(1), 0, "different payload");
        assert_eq!(a, c);
    }
}
