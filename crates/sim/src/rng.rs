//! Deterministic, splittable random-number streams.
//!
//! Every run of an experiment derives all of its randomness from one `u64`
//! seed, so results are reproducible bit-for-bit. Rather than depend on a
//! particular `rand` generator whose stream may change across versions, we
//! ship a self-contained **xoshiro256++** generator (Blackman & Vigna),
//! seeded through **splitmix64** as its authors recommend. The generator is
//! dependency-free; the inherent methods below cover every distribution the
//! simulator needs.
//!
//! Streams are *splittable*: [`SimRng::split`] derives an independent child
//! stream from a label, so each node / transaction / workload generator owns
//! its own stream and event-ordering changes in one component do not perturb
//! the random choices of another (a classic reproducibility hazard in
//! parallel simulators).

/// splitmix64 step: the canonical seeding function for xoshiro.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless splitmix64-style finalizer: maps any `u64` to a well-mixed
/// `u64`, deterministically and without carrying stream state.
///
/// This is the building block for *random-access* randomness: where a
/// sequential [`SimRng`] stream would force materializing all draws up
/// front (e.g. the O(n²) per-pair link delays of a network topology), a
/// keyed `mix64` lets the consumer recompute any single draw on demand in
/// O(1) with O(1) memory.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut state = x;
    splitmix64(&mut state)
}

/// A deterministic xoshiro256++ stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
    /// Immutable stream identity used by [`SimRng::split`]; unlike `s`, it
    /// does not advance as numbers are drawn.
    id: u64,
}

impl SimRng {
    /// Create a stream from a seed. Any seed (including 0) is valid; the
    /// state is expanded through splitmix64 so it is never all-zero.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            id: seed,
        }
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// The child's seed mixes this stream's *identity* (not its position), so
    /// splitting is insensitive to how many numbers the parent has already
    /// drawn — call sites can be reordered without changing child streams, as
    /// long as labels are stable.
    pub fn split(&self, label: u64) -> SimRng {
        let mut sm = self.id ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
        let child_id = splitmix64(&mut sm);
        SimRng::new(child_id)
    }

    /// The raw xoshiro256++ step.
    #[allow(clippy::should_implement_trait)] // established PRNG naming for the raw step
    #[inline]
    pub fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection
    /// method (unbiased).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Sample an exponentially distributed value with the given mean
    /// (inter-arrival times of open workloads).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.unit_f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Fill a byte slice from the stream (hash seeds, identifiers).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..100).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_position_independent() {
        let parent1 = SimRng::new(99);
        let mut parent2 = SimRng::new(99);
        for _ in 0..57 {
            parent2.next(); // advance one copy
        }
        let mut c1 = parent1.split(5);
        let mut c2 = parent2.split(5);
        for _ in 0..100 {
            assert_eq!(c1.next(), c2.next());
        }
    }

    #[test]
    fn split_labels_independent() {
        let parent = SimRng::new(99);
        let mut c1 = parent.split(1);
        let mut c2 = parent.split(2);
        let same = (0..100).filter(|_| c1.next() == c2.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::new(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = SimRng::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match rng.range_inclusive(1, 50) {
                1 => lo_seen = true,
                50 => hi_seen = true,
                v => assert!((1..=50).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = SimRng::new(4);
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = SimRng::new(5);
        let hits = (0..100_000).filter(|_| rng.chance(0.9)).count();
        assert!((88_000..92_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<u32>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(8);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((4.9..5.1).contains(&mean), "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SimRng::new(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
