//! Streaming statistics used by metrics collection and the harness.

use crate::time::SimDuration;

/// Welford online mean/variance accumulator. `PartialEq` is field-wise
/// (float accumulators): runs that pushed the same samples in the same
/// order compare equal, which is exactly what the serial-vs-sharded
/// differential tests check.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration in milliseconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_nanos() as f64 / 1e6);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Log-2-bucketed histogram of nanosecond durations; cheap to update, good
/// enough for latency-shape reporting (p50/p99 within a factor of 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }

    #[inline]
    fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize // 0 -> 0, 1 -> 1, 2..3 -> 2, ...
    }

    pub fn record(&mut self, v: u64) {
        let idx = Self::bucket_index(v).min(63);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
    }

    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-th quantile (0 <= q <= 1).
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn histogram_counts_and_mean() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i);
        }
        let p50 = h.quantile_upper_bound(0.5);
        let p99 = h.quantile_upper_bound(0.99);
        assert!(p50 <= p99);
        assert!((500 / 2..=1024).contains(&p50), "p50 bucket bound {p50}");
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }
}
