//! Schedule perturbation and interleaving control for verification.
//!
//! Two queue backends that bend the kernel's event order **without leaving
//! the space of realizable executions**:
//!
//! * [`PerturbQueue`] — the DST fuzzer's backend. Wraps the stock
//!   [`BinaryHeapQueue`] and applies an explicit, replayable list of
//!   [`Perturb`] deviations: extra virtual latency injected at the N-th
//!   push, and tie-swaps that deliver a different event among those tied at
//!   the minimal timestamp at the N-th pop. Both preserve the kernel's
//!   monotone-time contract (popped timestamps never decrease), so every
//!   perturbed run is an execution the simulator could have produced under
//!   different link delays / tiebreaks. A run is replayed bit-identically
//!   by re-applying the same [`Schedule`].
//!
//! * [`ChoiceQueue`] — the small-model checker's backend. Holds pending
//!   events in a flat list and lets an external driver pick which *lane*
//!   (per-channel message stream, per-actor timer stream) delivers next.
//!   Lane heads preserve per-channel FIFO — messages between one ordered
//!   pair of nodes share a fixed link delay, so their delivery order is
//!   not schedule-dependent — while everything across lanes is up for
//!   grabs, modeling adversarial link and timer latencies. Popped events
//!   are re-stamped onto a monotone virtual clock so the engine's
//!   time-never-goes-backwards invariant holds on every interleaving.

use crate::engine::KernelEvent;
use crate::event::{EventKey, Sequenced};
use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::time::SimTime;

// ---------------------------------------------------------------------------
// Fuzzer schedules
// ---------------------------------------------------------------------------

/// One deterministic deviation from the baseline event order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Perturb {
    /// At the `push_step`-th event push of the run (0-based, counting every
    /// kernel push), add `extra_ns` of virtual latency to the pushed event —
    /// as if that one message hit a slow link.
    Delay { push_step: u64, extra_ns: u64 },
    /// At the `pop_step`-th pop, deliver the `rank`-th event among those
    /// tied at the minimal timestamp instead of the first (`rank` is
    /// clamped to the tie count; rank 0 is the baseline order). Models an
    /// adversarial tiebreak between simultaneous deliveries.
    TieSwap { pop_step: u64, rank: u64 },
}

/// A replayable fuzz schedule: the episode seed plus an explicit
/// perturbation list. Same schedule ⇒ bit-identical run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    pub seed: u64,
    pub perturbations: Vec<Perturb>,
}

impl Schedule {
    /// Compact line-based text blob (`seed N`, then one `delay`/`tieswap`
    /// line per perturbation). Stable format — reproducer files embed it.
    pub fn to_text(&self) -> String {
        let mut out = format!("seed {}\n", self.seed);
        for p in &self.perturbations {
            match p {
                Perturb::Delay {
                    push_step,
                    extra_ns,
                } => {
                    out.push_str(&format!("delay {push_step} {extra_ns}\n"));
                }
                Perturb::TieSwap { pop_step, rank } => {
                    out.push_str(&format!("tieswap {pop_step} {rank}\n"));
                }
            }
        }
        out
    }

    /// Parse [`Schedule::to_text`] output. Blank lines and `#` comments are
    /// ignored; unknown directives are errors (a truncated blob must not
    /// silently replay as a different schedule).
    pub fn from_text(text: &str) -> Result<Schedule, String> {
        let mut sched = Schedule::default();
        let mut saw_seed = false;
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_ascii_whitespace();
            let word = it.next().unwrap_or_default();
            let mut num = |what: &str| -> Result<u64, String> {
                it.next()
                    .ok_or_else(|| format!("line {}: missing {what}", ln + 1))?
                    .parse::<u64>()
                    .map_err(|e| format!("line {}: bad {what}: {e}", ln + 1))
            };
            match word {
                "seed" => {
                    sched.seed = num("seed")?;
                    saw_seed = true;
                }
                "delay" => sched.perturbations.push(Perturb::Delay {
                    push_step: num("push step")?,
                    extra_ns: num("extra ns")?,
                }),
                "tieswap" => sched.perturbations.push(Perturb::TieSwap {
                    pop_step: num("pop step")?,
                    rank: num("rank")?,
                }),
                other => return Err(format!("line {}: unknown directive `{other}`", ln + 1)),
            }
        }
        if !saw_seed {
            return Err("schedule blob has no `seed` line".into());
        }
        Ok(sched)
    }
}

/// A [`BinaryHeapQueue`] that applies a [`Schedule`]'s perturbations as the
/// run pushes and pops events. See the module docs for the realizability
/// argument; the wrapper is a strict pass-through when the perturbation
/// list is empty.
pub struct PerturbQueue<E> {
    inner: BinaryHeapQueue<E>,
    /// `(push_step, extra_ns)`, sorted and deduplicated by step.
    delays: Vec<(u64, u64)>,
    /// `(pop_step, rank)`, sorted and deduplicated by step.
    swaps: Vec<(u64, u64)>,
    pushes: u64,
    pops: u64,
}

impl<E> PerturbQueue<E> {
    pub fn new(schedule: &Schedule) -> Self {
        let mut delays = Vec::new();
        let mut swaps = Vec::new();
        for p in &schedule.perturbations {
            match *p {
                Perturb::Delay {
                    push_step,
                    extra_ns,
                } => delays.push((push_step, extra_ns)),
                Perturb::TieSwap { pop_step, rank } => swaps.push((pop_step, rank)),
            }
        }
        delays.sort_unstable();
        delays.dedup_by_key(|&mut (s, _)| s);
        swaps.sort_unstable();
        swaps.dedup_by_key(|&mut (s, _)| s);
        PerturbQueue {
            inner: BinaryHeapQueue::new(),
            delays,
            swaps,
            pushes: 0,
            pops: 0,
        }
    }

    /// Total pushes observed so far (diagnostics: how much of the schedule's
    /// step space a run actually covered).
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    pub fn pops(&self) -> u64 {
        self.pops
    }
}

impl<E> EventQueue<E> for PerturbQueue<E> {
    fn push(&mut self, mut ev: Sequenced<E>) {
        if let Ok(i) = self.delays.binary_search_by_key(&self.pushes, |&(s, _)| s) {
            ev.key.time = SimTime(ev.key.time.0.saturating_add(self.delays[i].1));
        }
        self.pushes += 1;
        self.inner.push(ev);
    }

    fn pop(&mut self) -> Option<Sequenced<E>> {
        let step = self.pops;
        self.pops += 1;
        let rank = match self.swaps.binary_search_by_key(&step, |&(s, _)| s) {
            Ok(i) => self.swaps[i].1,
            Err(_) => 0,
        };
        let first = self.inner.pop()?;
        if rank == 0 {
            return Some(first);
        }
        // Pull events tied at the minimal timestamp (at most `rank` more —
        // no need to drain a deep tie bucket to pick the k-th entry).
        let t = first.key.time;
        let mut ties = vec![first];
        while (ties.len() as u64) <= rank {
            match self.inner.peek_key() {
                Some(k) if k.time == t => ties.push(self.inner.pop().expect("peeked event")),
                _ => break,
            }
        }
        let pick = (rank as usize).min(ties.len() - 1);
        let chosen = ties.swap_remove(pick);
        for ev in ties {
            self.inner.push(ev);
        }
        Some(chosen)
    }

    #[inline]
    fn peek_key(&self) -> Option<EventKey> {
        self.inner.peek_key()
    }

    #[inline]
    fn len(&self) -> usize {
        self.inner.len()
    }
}

// ---------------------------------------------------------------------------
// Model-checker choice queue
// ---------------------------------------------------------------------------

/// An independently schedulable event stream: messages along one ordered
/// node pair (fixed link delay ⇒ per-channel FIFO), or one actor's timers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Lane {
    Channel { from: u32, to: u32 },
    Timers { on: u32 },
}

fn lane_of<M, T>(ev: &KernelEvent<M, T>) -> Lane {
    match ev {
        KernelEvent::Msg { from, to, .. } => Lane::Channel {
            from: from.0,
            to: to.0,
        },
        KernelEvent::Timer { on, .. } => Lane::Timers { on: on.0 },
    }
}

/// Pending-event set whose delivery order is chosen by an external driver,
/// one *lane head* at a time (see [`Lane`]'s realizability contract in the
/// module docs). The driver enumerates [`ChoiceQueue::num_choices`],
/// [`choose`](ChoiceQueue::choose)s one, and steps the world; without a
/// pending choice, pops fall back to the baseline minimal-key order, so the
/// queue is also a well-behaved ordinary backend.
///
/// Popped events are re-stamped to `max(event time, virtual now)`: a
/// later-chosen event is treated as having been delayed to the moment it is
/// delivered, which keeps kernel time monotone (and means absolute
/// timestamps are *schedule-dependent* — checker state must be compared
/// time-abstractly).
pub struct ChoiceQueue<M, T> {
    pending: Vec<Sequenced<KernelEvent<M, T>>>,
    virtual_now: SimTime,
    next_choice: Option<usize>,
}

impl<M, T> ChoiceQueue<M, T> {
    pub fn new() -> Self {
        ChoiceQueue {
            pending: Vec::new(),
            virtual_now: SimTime::ZERO,
            next_choice: None,
        }
    }

    /// Indices (into [`pending_events`](Self::pending_events)) of the
    /// currently deliverable events: the earliest event of each lane, in
    /// ascending key order. Deterministic for a given pending multiset.
    pub fn enabled(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.pending.len()).collect();
        order.sort_by_key(|&i| self.pending[i].key);
        let mut seen: Vec<Lane> = Vec::new();
        let mut out = Vec::new();
        for i in order {
            let lane = lane_of(&self.pending[i].payload);
            if !seen.contains(&lane) {
                seen.push(lane);
                out.push(i);
            }
        }
        out
    }

    /// Number of schedulable lanes right now (the branching factor).
    pub fn num_choices(&self) -> usize {
        self.enabled().len()
    }

    /// Select which enabled event (by position in [`Self::enabled`]) the
    /// next pop delivers. Out-of-range choices clamp to the last lane.
    pub fn choose(&mut self, choice: usize) {
        self.next_choice = Some(choice);
    }

    /// All undelivered events (for state fingerprints). Order is internal;
    /// hash via a key-sorted view.
    pub fn pending_events(&self) -> &[Sequenced<KernelEvent<M, T>>] {
        &self.pending
    }

    /// The monotone delivery clock (time of the last popped event).
    pub fn virtual_now(&self) -> SimTime {
        self.virtual_now
    }
}

impl<M, T> Default for ChoiceQueue<M, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M, T> EventQueue<KernelEvent<M, T>> for ChoiceQueue<M, T> {
    fn push(&mut self, ev: Sequenced<KernelEvent<M, T>>) {
        self.pending.push(ev);
    }

    fn pop(&mut self) -> Option<Sequenced<KernelEvent<M, T>>> {
        if self.pending.is_empty() {
            self.next_choice = None;
            return None;
        }
        let enabled = self.enabled();
        let c = self.next_choice.take().unwrap_or(0).min(enabled.len() - 1);
        let mut ev = self.pending.swap_remove(enabled[c]);
        if ev.key.time < self.virtual_now {
            ev.key.time = self.virtual_now;
        } else {
            self.virtual_now = ev.key.time;
        }
        Some(ev)
    }

    fn peek_key(&self) -> Option<EventKey> {
        self.pending.iter().map(|e| e.key).min().map(|mut k| {
            if k.time < self.virtual_now {
                k.time = self.virtual_now;
            }
            k
        })
    }

    #[inline]
    fn len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ActorId;

    fn msg(at: u64, seq: u64, from: u32, to: u32, tag: u32) -> Sequenced<KernelEvent<u32, u32>> {
        Sequenced {
            key: EventKey::compose(SimTime(at), from, seq),
            payload: KernelEvent::Msg {
                from: ActorId(from),
                to: ActorId(to),
                msg: tag,
            },
        }
    }

    fn tag_of(ev: &KernelEvent<u32, u32>) -> u32 {
        match ev {
            KernelEvent::Msg { msg, .. } => *msg,
            KernelEvent::Timer { timer, .. } => *timer,
        }
    }

    #[test]
    fn schedule_text_round_trips() {
        let sched = Schedule {
            seed: 42,
            perturbations: vec![
                Perturb::Delay {
                    push_step: 17,
                    extra_ns: 2_500_000,
                },
                Perturb::TieSwap {
                    pop_step: 90,
                    rank: 2,
                },
            ],
        };
        let text = sched.to_text();
        assert_eq!(Schedule::from_text(&text).unwrap(), sched);
        assert!(Schedule::from_text("delay 1 2\n").is_err(), "seed required");
        assert!(Schedule::from_text("seed 1\nbogus 2 3\n").is_err());
        assert!(Schedule::from_text("seed 1\n# comment\n\n").is_ok());
    }

    #[test]
    fn empty_schedule_is_a_pass_through() {
        let mut plain: BinaryHeapQueue<KernelEvent<u32, u32>> = BinaryHeapQueue::new();
        let mut wrapped = PerturbQueue::new(&Schedule::default());
        for (i, t) in [50u64, 10, 30, 10, 70, 0].iter().enumerate() {
            plain.push(msg(*t, i as u64, 0, 1, i as u32));
            wrapped.push(msg(*t, i as u64, 0, 1, i as u32));
        }
        loop {
            match (plain.pop(), wrapped.pop()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a.key, b.key);
                    assert_eq!(tag_of(&a.payload), tag_of(&b.payload));
                }
                _ => panic!("lengths diverged"),
            }
        }
    }

    #[test]
    fn delay_shifts_exactly_the_targeted_push() {
        let sched = Schedule {
            seed: 0,
            perturbations: vec![Perturb::Delay {
                push_step: 1,
                extra_ns: 100,
            }],
        };
        let mut q = PerturbQueue::new(&sched);
        q.push(msg(10, 0, 0, 1, 0));
        q.push(msg(10, 1, 0, 1, 1)); // delayed to t=110
        q.push(msg(20, 2, 0, 1, 2));
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.key.time.0, tag_of(&e.payload)))
            .collect();
        assert_eq!(order, vec![(10, 0), (20, 2), (110, 1)]);
    }

    #[test]
    fn tieswap_picks_rank_among_ties_and_loses_nothing() {
        let sched = Schedule {
            seed: 0,
            perturbations: vec![Perturb::TieSwap {
                pop_step: 0,
                rank: 2,
            }],
        };
        let mut q = PerturbQueue::new(&sched);
        for i in 0..4u64 {
            q.push(msg(5, i, 0, 1, i as u32));
        }
        q.push(msg(9, 9, 0, 1, 99));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| tag_of(&e.payload))
            .collect();
        // Rank 2 of the t=5 ties goes first; the remaining ties keep their
        // order; the t=9 straggler stays last. Nothing lost or duplicated.
        assert_eq!(order, vec![2, 0, 1, 3, 99]);
    }

    #[test]
    fn tieswap_rank_clamps_to_tie_count() {
        let sched = Schedule {
            seed: 0,
            perturbations: vec![Perturb::TieSwap {
                pop_step: 0,
                rank: 10,
            }],
        };
        let mut q = PerturbQueue::new(&sched);
        q.push(msg(5, 0, 0, 1, 0));
        q.push(msg(5, 1, 0, 1, 1));
        q.push(msg(9, 2, 0, 1, 2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| tag_of(&e.payload))
            .collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn pop_times_stay_monotone_under_perturbation() {
        let sched = Schedule {
            seed: 0,
            perturbations: vec![
                Perturb::Delay {
                    push_step: 3,
                    extra_ns: 1_000,
                },
                Perturb::TieSwap {
                    pop_step: 2,
                    rank: 1,
                },
            ],
        };
        let mut q = PerturbQueue::new(&sched);
        for i in 0..10u64 {
            q.push(msg(10 * (i % 3), i, 0, 1, i as u32));
        }
        let mut last = 0u64;
        while let Some(ev) = q.pop() {
            assert!(ev.key.time.0 >= last, "pop time went backwards");
            last = ev.key.time.0;
        }
    }

    #[test]
    fn choice_queue_respects_channel_fifo() {
        let mut q: ChoiceQueue<u32, u32> = ChoiceQueue::new();
        // Two messages on channel 0→1 (FIFO forced) and one on 2→1.
        q.push(msg(10, 0, 0, 1, 100));
        q.push(msg(20, 1, 0, 1, 101));
        q.push(msg(30, 2, 2, 1, 200));
        let enabled = q.enabled();
        assert_eq!(enabled.len(), 2, "second 0→1 message is lane-blocked");
        // Choice 1 = the 2→1 lane (later key). Its pop re-stamps to its own
        // time (30 ≥ virtual now 0).
        q.choose(1);
        let ev = q.pop().unwrap();
        assert_eq!(tag_of(&ev.payload), 200);
        assert_eq!(ev.key.time, SimTime(30));
        // Now the earlier 0→1 message pops at max(10, 30) = 30.
        q.choose(0);
        let ev = q.pop().unwrap();
        assert_eq!(tag_of(&ev.payload), 100);
        assert_eq!(ev.key.time, SimTime(30), "re-stamped onto virtual now");
        assert_eq!(q.virtual_now(), SimTime(30));
    }

    #[test]
    fn choice_queue_defaults_to_min_key_order() {
        let mut q: ChoiceQueue<u32, u32> = ChoiceQueue::new();
        q.push(msg(30, 2, 2, 1, 2));
        q.push(msg(10, 0, 0, 1, 0));
        q.push(msg(20, 1, 3, 1, 1));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| tag_of(&e.payload))
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn choice_queue_timer_lane_is_per_actor() {
        let mut q: ChoiceQueue<u32, u32> = ChoiceQueue::new();
        let timer = |at: u64, seq: u64, on: u32, tag: u32| Sequenced {
            key: EventKey::compose(SimTime(at), on, seq),
            payload: KernelEvent::Timer {
                on: ActorId(on),
                token: crate::engine::TimerToken::test_token(),
                timer: tag,
            },
        };
        q.push(timer(10, 0, 0, 1));
        q.push(timer(20, 1, 0, 2)); // same actor: lane-blocked
        q.push(timer(30, 2, 1, 3)); // other actor: independent lane
        assert_eq!(q.num_choices(), 2);
    }
}
