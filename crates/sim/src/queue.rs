//! Pending-event set implementations.
//!
//! The simulator's hot loop is `pop-min / handle / push-futures`; the pending
//! event set dominates kernel cost in large runs (80 nodes × thousands of
//! in-flight transactions). Two implementations are provided behind the
//! [`EventQueue`] trait:
//!
//! * [`BinaryHeapQueue`] — `std::collections::BinaryHeap` of
//!   [`Sequenced`] entries. O(log n), excellent constants, the default.
//! * [`CalendarQueue`] — the classic Brown (1988) calendar queue: an array of
//!   day-buckets over a year of virtual time, giving amortized O(1)
//!   enqueue/dequeue when event inter-arrival times are roughly stationary —
//!   which they are for the steady-state throughput experiments (Figs. 4–5).
//!
//! Both are exercised by the same property tests (total order out, FIFO among
//! ties) and compared in the `micro` criterion bench.

use crate::event::{EventKey, Sequenced};
use crate::time::SimTime;

/// A pending-event set: a priority queue keyed by [`EventKey`].
pub trait EventQueue<E> {
    /// Insert an event. Keys may arrive in any order but must be unique
    /// (the engine guarantees uniqueness via the sequence counter).
    fn push(&mut self, ev: Sequenced<E>);

    /// Remove and return the minimum-key event.
    fn pop(&mut self) -> Option<Sequenced<E>>;

    /// Key of the minimum event without removing it.
    fn peek_key(&self) -> Option<EventKey>;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Binary heap
// ---------------------------------------------------------------------------

/// Heap-based pending-event set (the default; historically a binary heap,
/// now a 4-ary indexed heap — the name survives as the public API).
///
/// Two data-layout decisions, both from profiles where heap push/pop was the
/// single largest kernel cost:
///
/// * The heap stores only `(EventKey, slot index)` pairs — 24 bytes — while
///   payloads sit in a slab with a free list. Sifting moves small POD
///   entries instead of full `Sequenced<E>` values (≈88 bytes for the
///   kernel's `NodeEvent`), cutting memmove traffic. Slots are recycled, so
///   steady state allocates nothing.
/// * The heap is 4-ary: half the levels of a binary heap, and the four
///   children of a node are contiguous (96 bytes, ~2 cache lines), so a
///   sift-down touches fewer distinct lines for the same comparison count.
///
/// Keys are unique (engine-assigned sequence numbers), so pop order — hence
/// simulation output — is bit-identical to the previous
/// `std::collections::BinaryHeap` representation regardless of heap shape.
pub struct BinaryHeapQueue<E> {
    /// Min-heap of `(key, index into slots)`, 4-ary.
    heap: Vec<(EventKey, u32)>,
    /// Payload slab; `None` entries are free and listed in `free`.
    slots: Vec<Option<E>>,
    free: Vec<u32>,
}

/// Heap arity. 4 keeps sibling scans inside two cache lines while halving
/// tree depth vs. binary.
const D: usize = 4;

impl<E> BinaryHeapQueue<E> {
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeapQueue {
            heap: Vec::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / D;
            if self.heap[parent].0 <= entry.0 {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = entry;
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let entry = self.heap[i];
        loop {
            let first = D * i + 1;
            if first >= len {
                break;
            }
            // Smallest of the (up to D) children.
            let last = (first + D).min(len);
            let mut child = first;
            let mut child_key = self.heap[first].0;
            for c in first + 1..last {
                let k = self.heap[c].0;
                if k < child_key {
                    child = c;
                    child_key = k;
                }
            }
            if entry.0 <= child_key {
                break;
            }
            self.heap[i] = self.heap[child];
            i = child;
        }
        self.heap[i] = entry;
    }
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for BinaryHeapQueue<E> {
    fn push(&mut self, ev: Sequenced<E>) {
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(ev.payload);
                i
            }
            None => {
                self.slots.push(Some(ev.payload));
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push((ev.key, idx));
        self.sift_up(self.heap.len() - 1);
    }

    fn pop(&mut self) -> Option<Sequenced<E>> {
        let (key, idx) = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let payload = self.slots[idx as usize].take().expect("occupied slot");
        self.free.push(idx);
        Some(Sequenced { key, payload })
    }

    #[inline]
    fn peek_key(&self) -> Option<EventKey> {
        self.heap.first().map(|&(k, _)| k)
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------------

/// Calendar-queue pending-event set (Brown 1988).
///
/// Events are hashed into `nbuckets` day-buckets by
/// `(time / day_width) % nbuckets`; a dequeue scans forward from the current
/// day, only considering events belonging to the current "year". The
/// structure resizes (doubling/halving buckets, re-estimating day width from
/// a sample of inter-event gaps) when the population crosses thresholds, the
/// standard recipe for keeping O(1) behaviour under load swings.
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<Sequenced<E>>>,
    /// Width of one day in nanoseconds.
    day_width: u64,
    /// Index of the bucket the next dequeue starts scanning from.
    current_bucket: usize,
    /// Start time of `current_bucket`'s current day.
    bucket_top: u64,
    len: usize,
    /// Resize thresholds.
    grow_at: usize,
    shrink_at: usize,
    /// Lower bound on the last dequeued key, for ordering assertions.
    last_popped: Option<EventKey>,
    /// Memoized minimum key: `Some` = known-correct min, `None` = recompute
    /// on next peek. Interior-mutable because [`EventQueue::peek_key`] takes
    /// `&self`. Keeps repeated peeks (the `run_until` loop) O(1) instead of
    /// O(nbuckets) per call.
    min_cache: std::cell::Cell<Option<EventKey>>,
}

impl<E> CalendarQueue<E> {
    /// A queue with a day width tuned for millisecond-scale inter-arrivals.
    pub fn new() -> Self {
        Self::with_params(16, 1_000_000) // 16 buckets, 1 ms days
    }

    pub fn with_params(nbuckets: usize, day_width: u64) -> Self {
        assert!(
            nbuckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        assert!(day_width > 0);
        CalendarQueue {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            day_width,
            current_bucket: 0,
            bucket_top: day_width,
            len: 0,
            grow_at: nbuckets * 2,
            shrink_at: 0,
            last_popped: None,
            min_cache: std::cell::Cell::new(None),
        }
    }

    #[inline]
    fn bucket_of(&self, t: SimTime) -> usize {
        ((t.0 / self.day_width) as usize) & (self.buckets.len() - 1)
    }

    fn resize(&mut self, nbuckets: usize) {
        let mut all: Vec<Sequenced<E>> = Vec::with_capacity(self.len);
        for b in self.buckets.iter_mut() {
            all.append(b);
        }
        // Re-estimate day width as ~3x the average gap between the next few
        // events, the classic heuristic; fall back to the old width when the
        // sample is degenerate.
        all.sort();
        let sample = all.len().min(32);
        let new_width = if sample >= 2 {
            let span = all[sample - 1].key.time.0.saturating_sub(all[0].key.time.0);
            let avg_gap = span / (sample as u64 - 1);
            (avg_gap.saturating_mul(3)).max(1)
        } else {
            self.day_width
        };

        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        self.day_width = new_width;
        self.grow_at = nbuckets * 2;
        self.shrink_at = if nbuckets > 16 { nbuckets / 2 } else { 0 };
        self.len = 0;

        // Position the calendar at the earliest pending event so the scan
        // starts in the right day.
        if let Some(first) = all.first() {
            let t = first.key.time.0;
            self.current_bucket = ((t / self.day_width) as usize) & (nbuckets - 1);
            self.bucket_top = (t / self.day_width + 1) * self.day_width;
        } else {
            self.current_bucket = 0;
            self.bucket_top = self.day_width;
        }
        for ev in all {
            self.push_inner(ev);
        }
    }

    fn push_inner(&mut self, ev: Sequenced<E>) {
        let b = self.bucket_of(ev.key.time);
        // Keep buckets sorted descending so pop-min can use Vec::pop; buckets
        // are short (O(1) expected), so insertion cost stays bounded.
        let bucket = &mut self.buckets[b];
        let pos = bucket
            .binary_search_by(|probe| ev.key.cmp(&probe.key))
            .unwrap_or_else(|p| p);
        // A still-valid cached minimum only tightens on insert.
        if let Some(m) = self.min_cache.get() {
            if ev.key < m {
                self.min_cache.set(Some(ev.key));
            }
        }
        bucket.insert(pos, ev);
        self.len += 1;

        // If the new event is earlier than where the scan currently points,
        // rewind the calendar so it is not skipped.
        let t = self.buckets[b].last().map(|e| e.key.time.0).unwrap_or(0);
        if t < self.bucket_top.saturating_sub(self.day_width) {
            self.current_bucket = b;
            self.bucket_top = (t / self.day_width + 1) * self.day_width;
        }
    }

    /// Earliest key across all buckets — O(nbuckets), used when the forward
    /// scan wraps a whole year without finding anything (sparse regime).
    fn global_min(&self) -> Option<EventKey> {
        self.buckets
            .iter()
            .filter_map(|b| b.last().map(|e| e.key))
            .min()
    }

    /// Non-destructive mirror of `pop`'s search: scan forward from the
    /// current day for at most one year (amortized O(1) in the dense regime),
    /// falling back to the O(nbuckets) global scan only when the calendar is
    /// sparse. Must find the same event `pop` would, which holds because
    /// `push_inner` rewinds the calendar whenever an event lands before the
    /// scan point.
    fn scan_min(&self) -> Option<EventKey> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len();
        let mut b = self.current_bucket;
        let mut top = self.bucket_top;
        for _ in 0..nbuckets {
            if let Some(ev) = self.buckets[b].last() {
                if ev.key.time.0 < top {
                    return Some(ev.key);
                }
            }
            b = (b + 1) & (nbuckets - 1);
            top += self.day_width;
        }
        self.global_min()
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn push(&mut self, ev: Sequenced<E>) {
        if let Some(last) = self.last_popped {
            // Time-only monotonicity: under the interleaving-independent key
            // a zero-delay send from a low-id actor may legitimately carry a
            // key *below* the last-popped key at the same timestamp (its
            // issuer/seq tiebreak is smaller). Scheduling strictly before the
            // current time is still a bug.
            debug_assert!(
                ev.key.time >= last.time,
                "event scheduled in the past: {:?} < {:?}",
                ev.key,
                last
            );
        }
        self.push_inner(ev);
        if self.len > self.grow_at {
            let n = self.buckets.len() * 2;
            self.resize(n);
        }
    }

    fn pop(&mut self) -> Option<Sequenced<E>> {
        if self.len == 0 {
            return None;
        }
        self.min_cache.set(None);
        let nbuckets = self.buckets.len();
        loop {
            // Scan at most one full year; in the sparse regime fall back to a
            // global min search and jump the calendar there.
            for _ in 0..nbuckets {
                let b = self.current_bucket;
                if let Some(ev) = self.buckets[b].last() {
                    if ev.key.time.0 < self.bucket_top {
                        let ev = self.buckets[b].pop().expect("non-empty bucket");
                        self.len -= 1;
                        self.last_popped = Some(ev.key);
                        if self.len < self.shrink_at {
                            let n = (self.buckets.len() / 2).max(16);
                            self.resize(n);
                        }
                        return Some(ev);
                    }
                }
                self.current_bucket = (b + 1) & (nbuckets - 1);
                self.bucket_top += self.day_width;
            }
            let min = self.global_min().expect("len > 0 implies a pending event");
            let t = min.time.0;
            self.current_bucket = ((t / self.day_width) as usize) & (nbuckets - 1);
            self.bucket_top = (t / self.day_width + 1) * self.day_width;
        }
    }

    fn peek_key(&self) -> Option<EventKey> {
        if self.len == 0 {
            return None;
        }
        if let Some(k) = self.min_cache.get() {
            return Some(k);
        }
        let k = self.scan_min().expect("len > 0 implies a pending event");
        self.min_cache.set(Some(k));
        Some(k)
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<EventKey> {
        let mut out = Vec::new();
        while let Some(ev) = q.pop() {
            out.push(ev.key);
        }
        out
    }

    fn check_total_order(keys: &[EventKey]) {
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "out of order: {:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn heap_orders_events() {
        let mut q = BinaryHeapQueue::new();
        for (i, t) in [50u64, 10, 30, 10, 70, 0].iter().enumerate() {
            q.push(Sequenced::new(SimTime(*t), i as u64, i as u32));
        }
        assert_eq!(q.len(), 6);
        assert_eq!(q.peek_key().unwrap().time, SimTime(0));
        let keys = drain(&mut q);
        check_total_order(&keys);
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn calendar_orders_events() {
        let mut q = CalendarQueue::with_params(16, 1000);
        for (i, t) in [50u64, 10, 30, 10, 70, 0, 100_000, 3].iter().enumerate() {
            q.push(Sequenced::new(SimTime(*t), i as u64, i as u32));
        }
        let keys = drain(&mut q);
        check_total_order(&keys);
        assert_eq!(keys.len(), 8);
    }

    #[test]
    fn calendar_handles_sparse_far_future() {
        let mut q = CalendarQueue::with_params(16, 1000);
        q.push(Sequenced::new(SimTime(10_000_000_000), 0, 1u32));
        q.push(Sequenced::new(SimTime(20_000_000_000), 1, 2u32));
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_resizes_under_load() {
        let mut q = CalendarQueue::with_params(16, 1000);
        for i in 0..10_000u64 {
            q.push(Sequenced::new(SimTime(i * 37 % 5000), i, i as u32));
        }
        assert_eq!(q.len(), 10_000);
        let keys = drain(&mut q);
        check_total_order(&keys);
        assert_eq!(keys.len(), 10_000);
    }

    #[test]
    fn calendar_peek_matches_pop_through_churn() {
        // peek_key must always name the key the next pop returns, across
        // interleaved pushes (cache tightening), pops (cache invalidation),
        // resizes, and the sparse far-future fallback.
        let mut q = CalendarQueue::with_params(16, 1000);
        let mut seq = 0u64;
        let mut push = |q: &mut CalendarQueue<u32>, t: u64| {
            q.push(Sequenced::new(SimTime(t), seq, 0u32));
            seq += 1;
        };
        for i in 0..500u64 {
            push(&mut q, 10_000 + i * 13 % 4000);
        }
        push(&mut q, 5); // earlier than everything: cache must tighten
        assert_eq!(q.peek_key().unwrap().time, SimTime(5));
        while q.len() > 0 {
            let peeked = q.peek_key().expect("non-empty");
            assert_eq!(q.peek_key(), Some(peeked), "repeated peek disagrees");
            let popped = q.pop().expect("non-empty");
            assert_eq!(peeked, popped.key, "peek disagreed with pop");
        }
        assert_eq!(q.peek_key(), None);

        // Sparse regime: events far beyond one calendar year.
        push(&mut q, 10_000_000_000);
        push(&mut q, 20_000_000_000);
        assert_eq!(q.peek_key().unwrap().time, SimTime(10_000_000_000));
        assert_eq!(q.pop().unwrap().key.time, SimTime(10_000_000_000));
        assert_eq!(q.peek_key().unwrap().time, SimTime(20_000_000_000));
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        for i in 0..100 {
            q.push(Sequenced::new(SimTime(42), i, i as u32));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<u32>>());
    }
}
