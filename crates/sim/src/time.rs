//! Virtual time for the simulator.
//!
//! Time is a `u64` count of **nanoseconds** since the start of the run, which
//! gives ~584 years of range — far beyond any experiment here — while keeping
//! arithmetic exact (no floating point drift between runs). The paper's
//! quantities of interest are milliseconds (link delays of 1–50 ms) and
//! microseconds (local execution), so nanoseconds leave plenty of headroom
//! for sub-scaling.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is actually later (callers comparing concurrent timestamps from
    /// different nodes may race in either direction).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    #[inline]
    pub const fn from_nanos(n: u64) -> SimDuration {
        SimDuration(n)
    }

    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale the duration by a rational factor, rounding down. Used by the
    /// RTS backoff computation ("a backoff time is computed as a percentage
    /// of estimated execution time").
    #[inline]
    pub fn mul_ratio(self, num: u64, den: u64) -> SimDuration {
        debug_assert!(den > 0, "ratio denominator must be positive");
        // Use u128 so that durations up to u64::MAX never overflow.
        SimDuration(((self.0 as u128 * num as u128) / den as u128) as u64)
    }

    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; use [`SimTime::saturating_since`]
    /// when the ordering is not statically known.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_nanos(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_nanos(self.0))
    }
}

/// Render a nanosecond count with a human-friendly unit.
fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.3}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.3}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.3}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_millis(50).as_millis(), 50);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime(1_500_000).as_millis(), 1);
        assert_eq!(SimTime(1_500_000).as_micros(), 1_500);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(t.as_millis(), 3);
        let d = t - SimTime(1_000_000);
        assert_eq!(d.as_millis(), 2);
        assert_eq!(t.saturating_since(SimTime::MAX), SimDuration::ZERO);
        assert_eq!(t.checked_since(SimTime::MAX), None);
        assert_eq!(
            t.checked_since(SimTime::ZERO),
            Some(SimDuration::from_millis(3))
        );
    }

    #[test]
    fn duration_ratio_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_ratio(1, 2).as_millis(), 5);
        assert_eq!(d.mul_ratio(3, 2).as_millis(), 15);
        // No overflow near the top of the range.
        assert_eq!(SimDuration::MAX.mul_ratio(1, 2).0, u64::MAX / 2);
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
