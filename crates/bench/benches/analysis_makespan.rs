//! Regenerates the **§III-D analysis**: Lemma 3.2/3.3 makespan bounds,
//! Theorem 3.4's RCR, and the measured worst-case makespans (N
//! transactions, one object) under TFA and RTS.

use dstm_bench::emit;
use dstm_harness::experiments::analysis;

fn main() {
    let scale = dstm_harness::experiments::Scale::from_env();
    let counts: Vec<usize> = scale.node_counts.clone();
    let t0 = std::time::Instant::now();
    let rows = analysis::run(&counts);
    let mut out = analysis::render(&rows);
    out.push_str(&format!("\n[{} s]\n", t0.elapsed().as_secs()));
    emit("analysis_makespan", &out);
}
