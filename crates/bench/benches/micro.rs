//! Criterion micro-benchmarks of the engine's hot paths: the pending-event
//! set (binary heap vs calendar queue), the RNG, the Bloom filter, the CL
//! window, scheduling-table operations, policy decisions, and a complete
//! small simulation cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dstm_benchmarks::Benchmark;
use dstm_harness::runner::{run_cell, run_cell_traced, Cell};
use dstm_sim::{
    Actor, ActorId, BinaryHeapQueue, CalendarQueue, Ctx, EventQueue, GenericWorld, KernelEvent,
    Sequenced, SimDuration, SimRng, SimTime, World,
};
use rts_core::{
    BloomFilter, ConflictCtx, ConflictPolicy, Ets, ObjectClWindow, ObjectId, Requester, RtsPolicy,
    SchedulingTable, TxId,
};
use std::hint::black_box;

fn bench_event_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("event-queue");
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("binary-heap", n), &n, |b, &n| {
            let mut rng = SimRng::new(1);
            let times: Vec<u64> = (0..n).map(|_| rng.below(10_000_000)).collect();
            b.iter(|| {
                let mut q = BinaryHeapQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(Sequenced::new(SimTime(t), i as u64, i));
                }
                let mut sum = 0usize;
                while let Some(ev) = q.pop() {
                    sum += ev.payload;
                }
                black_box(sum)
            });
        });
        group.bench_with_input(BenchmarkId::new("calendar", n), &n, |b, &n| {
            let mut rng = SimRng::new(1);
            let times: Vec<u64> = (0..n).map(|_| rng.below(10_000_000)).collect();
            b.iter(|| {
                let mut q = CalendarQueue::with_params(64, 100_000);
                for (i, &t) in times.iter().enumerate() {
                    q.push(Sequenced::new(SimTime(t), i as u64, i));
                }
                let mut sum = 0usize;
                while let Some(ev) = q.pop() {
                    sum += ev.payload;
                }
                black_box(sum)
            });
        });
    }
    group.finish();
}

/// A two-actor ping-pong with jittered delays: every delivered message costs
/// exactly one pop + one push, so `wall-clock / messages_delivered` is the
/// kernel's marginal ns/event through the full dispatch path (queue, timer
/// slab bookkeeping, RNG, actor call).
struct PingPong;

impl Actor for PingPong {
    type Msg = u32;
    type Timer = u32;

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u32>, _from: ActorId, msg: u32) {
        if msg > 0 {
            let to = ActorId(1 - ctx.me().0);
            let d = SimDuration::from_micros(1 + ctx.rng().below(100));
            ctx.send(to, msg - 1, d);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32, u32>, _timer: u32) {}
}

fn run_pingpong<Q: EventQueue<KernelEvent<u32, u32>>>(queue: Q, events: u32) -> u64 {
    let mut w = GenericWorld::with_queue(vec![PingPong, PingPong], 1, queue);
    w.send_external(ActorId(0), events, SimDuration::ZERO);
    w.run();
    w.messages_delivered()
}

fn bench_kernel(c: &mut Criterion) {
    // Marginal per-event kernel cost by queue backend. Each iteration
    // delivers `N + 1` messages, so ns/event = reported time / (N + 1).
    const N: u32 = 10_000;
    let mut group = c.benchmark_group("kernel-events");
    group.bench_with_input(BenchmarkId::new("heap", N), &N, |b, &n| {
        b.iter(|| black_box(run_pingpong(BinaryHeapQueue::new(), n)));
    });
    group.bench_with_input(BenchmarkId::new("calendar", N), &N, |b, &n| {
        b.iter(|| black_box(run_pingpong(CalendarQueue::new(), n)));
    });
    group.finish();

    // Timer arm + cancel through the generation-stamped slab, including the
    // kernel draining the dead (tombstoned) events.
    c.bench_function("kernel/timer-arm-cancel-x64", |b| {
        let mut w: World<PingPong> = World::new(vec![PingPong], 1);
        b.iter(|| {
            w.with_ctx(ActorId(0), |_, ctx| {
                for i in 0..64u64 {
                    let t = ctx.set_timer(SimDuration::from_micros(1 + i), i as u32);
                    ctx.cancel_timer(t);
                }
            });
            w.run();
            black_box(w.timers_fired())
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| black_box(rng.next()));
    });
    c.bench_function("rng/below", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| black_box(rng.below(1_000_003)));
    });
}

fn bench_bloom(c: &mut Criterion) {
    c.bench_function("bloom/insert", |b| {
        let mut f = BloomFilter::with_capacity(10_000, 0.01);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            f.insert(black_box(i));
        });
    });
    c.bench_function("bloom/contains", |b| {
        let mut f = BloomFilter::with_capacity(10_000, 0.01);
        for i in 0..10_000u64 {
            f.insert(i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(f.contains(i))
        });
    });
}

fn bench_cl_window(c: &mut Criterion) {
    c.bench_function("cl-window/record+query", |b| {
        let mut w = ObjectClWindow::new(SimDuration::from_millis(500));
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000;
            w.record(SimTime(t), TxId::new((t % 7) as u32, t));
            black_box(w.local_cl(SimTime(t)))
        });
    });
}

fn bench_policy(c: &mut Criterion) {
    c.bench_function("rts-policy/on_conflict", |b| {
        let mut policy = RtsPolicy::with_fixed_threshold(8);
        let mut table = SchedulingTable::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let start = SimTime(i * 1_000_000);
            let request = start + SimDuration::from_millis(40);
            let ctx = ConflictCtx {
                now: request,
                oid: ObjectId(i % 16),
                requester: Requester {
                    node: (i % 8) as u32,
                    tx: TxId::new((i % 8) as u32, i),
                    read_only: i.is_multiple_of(4),
                    attempt: 0,
                    enqueued_at: request,
                },
                ets: Ets::new(start, request, request + SimDuration::from_millis(30)),
                requester_cl: (i % 5) as u32,
                local_cl: (i % 7) as u32,
                attempt: 0,
            };
            black_box(policy.on_conflict(&ctx, &mut table));
            if i.is_multiple_of(64) {
                table = SchedulingTable::new(); // keep queues bounded
            }
        });
    });
}

fn bench_full_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation-cell");
    group.sample_size(10);
    group.bench_function("bank-4nodes-rts", |b| {
        b.iter(|| {
            let mut cell =
                Cell::new(Benchmark::Bank, rts_core::SchedulerKind::Rts, 4, 0.5).with_txns(5);
            cell.params.objects_per_node = 4;
            black_box(run_cell(cell).metrics.merged.commits)
        });
    });
    group.finish();
}

/// Guard for the tracing subsystem's zero-cost claim: the same complete
/// cell with protocol tracing compiled in but disabled (the production
/// default — every recording site is behind one branch) versus enabled
/// (events are pushed into per-node buffers and merged at the end). The
/// `off` variant must track `simulation-cell/bank-4nodes-rts` exactly;
/// `dstm-sweep kernel` records the same comparison per benchmark into
/// `BENCH_kernel.json` (`"trace": "off"` vs `"on"` rows).
fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace-overhead");
    group.sample_size(10);
    let mk = || {
        let mut cell =
            Cell::new(Benchmark::Bank, rts_core::SchedulerKind::Rts, 4, 0.5).with_txns(5);
        cell.params.objects_per_node = 4;
        cell
    };
    group.bench_function("cell-trace-off", |b| {
        b.iter(|| black_box(run_cell(mk()).metrics.merged.commits));
    });
    group.bench_function("cell-trace-on", |b| {
        b.iter(|| {
            let (r, trace) = run_cell_traced(mk());
            black_box((r.metrics.merged.commits, trace.records.len()))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel,
    bench_event_queues,
    bench_rng,
    bench_bloom,
    bench_cl_window,
    bench_policy,
    bench_full_cell,
    bench_trace_overhead
);
criterion_main!(benches);
