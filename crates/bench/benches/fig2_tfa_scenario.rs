//! Regenerates **Figure 2** — the TFA abort anatomy: six transactions race
//! for one object; the committer's validation aborts both the transactions
//! that requested earlier (their versions go stale) and the ones that
//! request during the validation window.

use dstm_bench::emit;
use dstm_harness::experiments::scenarios;
use rts_core::SchedulerKind;

fn main() {
    let r = scenarios::run_collision(SchedulerKind::Tfa, 6, 0);
    let mut out = scenarios::render(
        "Figure 2 — TFA scenario: six writers, one object, no scheduler",
        &r,
    );
    out.push_str(
        "\nExpected anatomy: scheduler(lock-busy) aborts > 0 AND validation aborts > 0;\n\
         all six transactions eventually commit and the counter serializes to 6.\n",
    );
    emit("fig2_tfa_scenario", &out);
}
