//! Regenerates **Figure 6** — summary of RTS's throughput speedup over TFA
//! and TFA+Backoff at low and high contention (re-running Figs. 4 and 5
//! and summarizing, as the paper does).

use dstm_bench::{emit, workers};
use dstm_harness::experiments::{speedup, Scale};

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();
    let (_, _, summary) = speedup::run(&scale, workers());
    let mut out = String::from("Figure 6 — Summary of Throughput Speedup (RTS / competitor)\n\n");
    out.push_str(&summary.render());
    out.push_str(&format!(
        "\nspeedup range: {:.2}x – {:.2}x (paper: up to 1.53x low / 1.88x high)\n[{} s]\n",
        summary.min_speedup(),
        summary.max_speedup(),
        t0.elapsed().as_secs()
    ));
    emit("fig6_speedup", &out);
}
