//! Ablation: closed vs flat nesting — §I's motivating claim that flat
//! nesting's monolithic rollbacks hurt, quantified on this substrate.

use dstm_bench::{emit, workers};
use dstm_benchmarks::Benchmark;
use dstm_harness::experiments::{nesting, Scale};

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();
    let rows = nesting::run(
        &scale,
        &[Benchmark::Bank, Benchmark::Vacation, Benchmark::Dht],
        workers(),
    );
    let mut out = nesting::render(&rows);
    out.push_str(&format!("\n[{} s]\n", t0.elapsed().as_secs()));
    emit("ablation_nesting", &out);
}
