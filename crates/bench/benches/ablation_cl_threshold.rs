//! Ablation: sweep the CL threshold and locate the throughput peak — the
//! paper's §IV-A procedure ("at a certain point of the CL's threshold, we
//! observe a peak point of transactional throughput"). Also compares the
//! adaptive hill-climbing controller.

use dstm_bench::{emit, workers};
use dstm_benchmarks::Benchmark;
use dstm_harness::experiments::{threshold, Scale};

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();
    let sweeps = threshold::run(
        &scale,
        &[Benchmark::Bank, Benchmark::Dht, Benchmark::Vacation],
        &[2, 4, 8, 16, 32, 64, 128],
        workers(),
    );
    let mut out = threshold::render(&sweeps);
    out.push_str(&format!("\n[{} s]\n", t0.elapsed().as_secs()));
    emit("ablation_cl_threshold", &out);
}
