//! Regenerates **Table I** — abort rate of nested transactions (RTS vs TFA
//! at low/high contention, all six benchmarks).

use dstm_bench::{emit, workers};
use dstm_harness::experiments::{table1, Scale};

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();
    let table = table1::run(&scale, workers());
    let mut out = String::new();
    out.push_str(&format!(
        "Table I — Abort rate of nested transactions (nested aborts caused by a parent abort / all nested aborts)\n\
         {} nodes, {} txns/node, 1-50 ms delays\n\n",
        scale.table1_nodes, scale.txns_per_node
    ));
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nMean reduction of the rate under RTS vs TFA: {:.0}% (paper reports ≈60%)\n",
        100.0 * table.mean_reduction()
    ));
    out.push_str("\nPaper's Table I for comparison (Low RTS/TFA, High RTS/TFA):\n");
    for (i, (lr, lt, hr, ht)) in table1::PAPER_TABLE1.iter().enumerate() {
        out.push_str(&format!(
            "  {:<12} {lr:>5.1}% {lt:>5.1}%   {hr:>5.1}% {ht:>5.1}%\n",
            dstm_benchmarks::Benchmark::ALL[i].label()
        ));
    }
    out.push_str(&format!("\n[{} s]\n", t0.elapsed().as_secs()));
    emit("table1_abort_rate", &out);
}
