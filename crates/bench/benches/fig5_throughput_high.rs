//! Regenerates **Figure 5** — transactional throughput vs node count at
//! high contention (10% read transactions).

use dstm_bench::{emit, workers};
use dstm_harness::experiments::{throughput, Scale};

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();
    let fig = throughput::run(&scale, 0.1, workers());
    let mut out =
        String::from("Figure 5 — Transactional throughput on HIGH contention (10% reads)\n\n");
    out.push_str(&fig.render());
    let incomplete = fig.raw.iter().filter(|r| !r.completed).count();
    out.push_str(&format!(
        "cells: {} ({} incomplete)\n[{} s]\n",
        fig.raw.len(),
        incomplete,
        t0.elapsed().as_secs()
    ));
    emit("fig5_throughput_high", &out);
}
