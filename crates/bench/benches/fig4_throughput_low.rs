//! Regenerates **Figure 4** — transactional throughput vs node count at
//! low contention (90% read transactions), six benchmarks × three
//! schedulers.

use dstm_bench::{emit, workers};
use dstm_harness::experiments::{throughput, Scale};

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();
    let fig = throughput::run(&scale, 0.9, workers());
    let mut out =
        String::from("Figure 4 — Transactional throughput on LOW contention (90% reads)\n\n");
    out.push_str(&fig.render());
    let incomplete = fig.raw.iter().filter(|r| !r.completed).count();
    out.push_str(&format!(
        "cells: {} ({} incomplete)\n[{} s]\n",
        fig.raw.len(),
        incomplete,
        t0.elapsed().as_secs()
    ));
    emit("fig4_throughput_low", &out);
}
