//! Regenerates **Figure 3** — the RTS scheduling scenario: under the same
//! collision pattern conflicting parents are enqueued and handed the object
//! on release; consecutive read requesters are served simultaneously.

use dstm_bench::emit;
use dstm_harness::experiments::scenarios;
use rts_core::SchedulerKind;

fn main() {
    let writers = scenarios::run_collision(SchedulerKind::Rts, 6, 0);
    let readers = scenarios::run_collision(SchedulerKind::Rts, 1, 3);
    let mut out = scenarios::render(
        "Figure 3(a) — RTS scenario: six writers, one object",
        &writers,
    );
    out.push('\n');
    out.push_str(&scenarios::render(
        "Figure 3(b) — RTS scenario: one writer + three readers (read fan-out)",
        &readers,
    ));
    out.push_str(
        "\nExpected: enqueued > 0 and queue_served > 0 under RTS (parents parked,\n\
         object handed down the queue); readers served concurrently in (b).\n",
    );
    emit("fig3_rts_scenario", &out);
}
