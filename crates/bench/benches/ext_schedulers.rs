//! Extension: five-way scheduler comparison (RTS, TFA, TFA+Backoff, and
//! §V's related-work schedulers ATS and Bi-interval) on three benchmarks.

use dstm_bench::{emit, workers};
use dstm_benchmarks::Benchmark;
use dstm_harness::experiments::{ext_schedulers, Scale};

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();
    let rows = ext_schedulers::run(
        &scale,
        &[Benchmark::Bank, Benchmark::Vacation, Benchmark::Dht],
        workers(),
    );
    let mut out = ext_schedulers::render(&rows);
    out.push_str(&format!("\n[{} s]\n", t0.elapsed().as_secs()));
    emit("ext_schedulers", &out);
}
