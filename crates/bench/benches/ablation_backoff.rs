//! Ablation: RTS queue-deadline slack and the TFA+Backoff base backoff
//! (design choices the paper leaves implicit; see DESIGN.md AB2).

use dstm_bench::{emit, workers};
use dstm_harness::experiments::{backoff, Scale};

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();
    let a = backoff::run(&scale, workers());
    let mut out = backoff::render(&a);
    out.push_str(&format!("\n[{} s]\n", t0.elapsed().as_secs()));
    emit("ablation_backoff", &out);
}
