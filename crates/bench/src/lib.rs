//! # dstm-bench — regeneration targets for every table and figure
//!
//! Each `cargo bench -p dstm-bench --bench <target>` either runs Criterion
//! micro-benchmarks (`micro`) or regenerates one artifact of the paper's
//! evaluation (printing the table/series and writing it under
//! `paper_results/`). Set `DSTM_SCALE=quick` or `DSTM_SCALE=smoke` to run
//! reduced sweeps.

use std::io::Write as _;
use std::path::PathBuf;

/// Where regenerated artifacts are written: `paper_results/` at the
/// workspace root (override with `DSTM_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let path = match std::env::var("DSTM_RESULTS_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("paper_results"),
    };
    let _ = std::fs::create_dir_all(&path);
    path
}

/// Print a regenerated artifact and persist it for EXPERIMENTS.md.
pub fn emit(name: &str, contents: &str) {
    println!("{contents}");
    let path = results_dir().join(format!("{name}.txt"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = f.write_all(contents.as_bytes());
            println!("[written to {}]", path.display());
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Worker-thread budget for the sweeps (`DSTM_WORKERS` override).
pub fn workers() -> Option<usize> {
    std::env::var("DSTM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
}
