//! # dstm-bench — regeneration targets for every table and figure
//!
//! Each `cargo bench -p dstm-bench --bench <target>` either runs Criterion
//! micro-benchmarks (`micro`) or regenerates one artifact of the paper's
//! evaluation (printing the table/series and writing it under
//! `paper_results/`). Set `DSTM_SCALE=quick` or `DSTM_SCALE=smoke` to run
//! reduced sweeps.

use std::io::Write as _;
use std::path::PathBuf;

/// Where regenerated artifacts are written: `paper_results/` at the
/// workspace root (override with `DSTM_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let path = match std::env::var("DSTM_RESULTS_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("paper_results"),
    };
    let _ = std::fs::create_dir_all(&path);
    path
}

/// Print a regenerated artifact and persist it for EXPERIMENTS.md.
///
/// Every file gets a one-line provenance header recording the worker-pool
/// width and shard count that produced it, so numbers in `paper_results/`
/// are attributable to a host configuration. Simulated results are
/// identical at any `workers`/`shards` setting — only wall clocks move.
pub fn emit(name: &str, contents: &str) {
    println!("{contents}");
    let path = results_dir().join(format!("{name}.txt"));
    let header = format!(
        "# workers={} shards={} (host-parallelism knobs; simulated results are \
         independent of both)\n",
        effective_workers(),
        shards()
    );
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = f.write_all(header.as_bytes());
            let _ = f.write_all(contents.as_bytes());
            println!("[written to {}]", path.display());
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Worker-thread budget for the sweeps (`DSTM_WORKERS` override).
pub fn workers() -> Option<usize> {
    std::env::var("DSTM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// The worker-pool width the sweeps actually run with: `DSTM_WORKERS` if
/// set, else the parallelism the OS reports (the `run_cells` default).
pub fn effective_workers() -> usize {
    workers().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Shards for the time-windowed parallel executor (`DSTM_SHARDS`
/// override); 1 (serial) when unset.
pub fn shards() -> usize {
    std::env::var("DSTM_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}
