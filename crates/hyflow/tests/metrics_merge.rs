//! Property tests for metrics aggregation: merging per-node metrics must
//! be a plain sum for every counter (each `AbortCause` and
//! `NestedAbortCause` independently), and histogram merging must be
//! order-independent — the guarantees the trace audits and sweep sidecars
//! lean on when they cross-check span-derived numbers against counters.

use dstm_sim::Histogram;
use hyflow_dstm::{AbortCause, NestedAbortCause, NodeMetrics};
use proptest::collection::vec;
use proptest::prelude::*;

/// Build one node's metrics from a compact seed vector: four abort-cause
/// counts, two nested-cause counts, commits/nested commits, and a few
/// histogram samples.
fn node_from_seed(seed: &[u64]) -> NodeMetrics {
    let mut m = NodeMetrics::default();
    for (i, cause) in AbortCause::ALL.into_iter().enumerate() {
        for _ in 0..seed[i] % 7 {
            m.record_abort(cause);
        }
    }
    m.record_nested_aborts(NestedAbortCause::Own, seed[4] % 11);
    m.record_nested_aborts(NestedAbortCause::ParentAbort, seed[5] % 11);
    m.commits = seed[6] % 100;
    m.nested_commits = seed[7] % 100;
    m.enqueued = seed[8] % 50;
    m.queue_served = seed[9] % 50;
    for &s in &seed[10..] {
        m.commit_latency_hist.record(s);
        m.queue_wait_hist.record(s / 2);
        m.fetch_rtt_hist.record(s / 3);
        m.retries_per_commit.record(s % 16);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn merged_metrics_equal_sum_of_per_node_counters(
        seeds in vec(vec(0u64..1_000_000_000, 16..17), 1..8),
    ) {
        let nodes: Vec<NodeMetrics> = seeds.iter().map(|s| node_from_seed(s)).collect();
        let mut merged = NodeMetrics::default();
        for n in &nodes {
            merged.merge(n);
        }

        // Every AbortCause tallies independently.
        let sum_by_cause = |f: fn(&NodeMetrics) -> u64| nodes.iter().map(f).sum::<u64>();
        prop_assert_eq!(
            merged.aborts_forward_validation,
            sum_by_cause(|n| n.aborts_forward_validation)
        );
        prop_assert_eq!(
            merged.aborts_commit_validation,
            sum_by_cause(|n| n.aborts_commit_validation)
        );
        prop_assert_eq!(merged.aborts_scheduler, sum_by_cause(|n| n.aborts_scheduler));
        prop_assert_eq!(
            merged.aborts_queue_timeout,
            sum_by_cause(|n| n.aborts_queue_timeout)
        );
        prop_assert_eq!(merged.total_aborts(), sum_by_cause(NodeMetrics::total_aborts));

        // Both NestedAbortCause legs (the Table-I split).
        prop_assert_eq!(merged.nested_aborts_own, sum_by_cause(|n| n.nested_aborts_own));
        prop_assert_eq!(
            merged.nested_aborts_parent,
            sum_by_cause(|n| n.nested_aborts_parent)
        );

        // Remaining scalar counters.
        prop_assert_eq!(merged.commits, sum_by_cause(|n| n.commits));
        prop_assert_eq!(merged.nested_commits, sum_by_cause(|n| n.nested_commits));
        prop_assert_eq!(merged.enqueued, sum_by_cause(|n| n.enqueued));
        prop_assert_eq!(merged.queue_served, sum_by_cause(|n| n.queue_served));

        // Histogram counts and means survive the merge.
        prop_assert_eq!(
            merged.commit_latency_hist.count(),
            sum_by_cause(|n| n.commit_latency_hist.count())
        );
        prop_assert_eq!(
            merged.retries_per_commit.count(),
            sum_by_cause(|n| n.retries_per_commit.count())
        );
    }

    #[test]
    fn histogram_merge_is_order_independent(
        samples_a in vec(0u64..u64::MAX / 2, 0..40),
        samples_b in vec(0u64..u64::MAX / 2, 0..40),
        samples_c in vec(0u64..u64::MAX / 2, 0..40),
    ) {
        let mk = |samples: &[u64]| {
            let mut h = Histogram::default();
            for &s in samples {
                h.record(s);
            }
            h
        };
        let (a, b, c) = (mk(&samples_a), mk(&samples_b), mk(&samples_c));

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // c + (b + a)
        let mut right = c.clone();
        right.merge(&b);
        right.merge(&a);
        prop_assert_eq!(&left, &right);

        // Merging also equals recording the concatenated stream directly.
        let mut all: Vec<u64> = samples_a.clone();
        all.extend_from_slice(&samples_b);
        all.extend_from_slice(&samples_c);
        let direct = mk(&all);
        prop_assert_eq!(&left, &direct);
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(left.quantile_upper_bound(q), direct.quantile_upper_bound(q));
        }
    }

    #[test]
    fn node_metrics_merge_is_order_independent(
        seeds in vec(vec(0u64..1_000_000_000, 16..17), 2..6),
    ) {
        let nodes: Vec<NodeMetrics> = seeds.iter().map(|s| node_from_seed(s)).collect();
        let mut fwd = NodeMetrics::default();
        for n in nodes.iter() {
            fwd.merge(n);
        }
        let mut rev = NodeMetrics::default();
        for n in nodes.iter().rev() {
            rev.merge(n);
        }
        prop_assert_eq!(fwd.total_aborts(), rev.total_aborts());
        prop_assert_eq!(fwd.total_nested_aborts(), rev.total_nested_aborts());
        prop_assert_eq!(&fwd.commit_latency_hist, &rev.commit_latency_hist);
        prop_assert_eq!(&fwd.queue_wait_hist, &rev.queue_wait_hist);
        prop_assert_eq!(&fwd.fetch_rtt_hist, &rev.fetch_rtt_hist);
        prop_assert_eq!(&fwd.retries_per_commit, &rev.retries_per_commit);
    }
}
