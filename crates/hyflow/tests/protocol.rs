//! Protocol-level integration tests: drive whole mini-systems through the
//! ownership-migration, queue-service, and nesting paths and assert on the
//! protocol-visible outcomes.

use dstm_net::Topology;
use dstm_sim::SimDuration;
use hyflow_dstm::program::{ScriptOp, ScriptProgram};
use hyflow_dstm::{
    BoxedProgram, ConflictScope, DstmConfig, NestingMode, Payload, System, SystemBuilder,
    WorkloadSource,
};
use rts_core::{ObjectId, SchedulerKind, TxKind};

fn oid_homed_at(node: u32, n: usize) -> ObjectId {
    (1..)
        .map(ObjectId)
        .find(|o| o.home(n) == node)
        .expect("ids cover all homes")
}

fn writer(oid: ObjectId, delta: i64, start_ms: u64) -> BoxedProgram {
    Box::new(ScriptProgram::new(
        TxKind(1),
        vec![
            ScriptOp::Compute(SimDuration::from_millis(start_ms)),
            ScriptOp::Write(oid),
            ScriptOp::AddScalar(oid, delta),
        ],
    ))
}

fn build(
    n: usize,
    cfg: DstmConfig,
    objects: Vec<(ObjectId, Payload)>,
    programs: Vec<Vec<BoxedProgram>>,
) -> System {
    let topo = Topology::complete(n, 10);
    SystemBuilder::new(topo, cfg)
        .seed(5)
        .build(WorkloadSource { objects, programs })
}

#[test]
fn ownership_chain_spans_many_moves() {
    // One object, five nodes, each commits a write in turn: ownership walks
    // across the system and late requests still find the object through
    // the tombstone chain.
    let n = 5;
    let oid = oid_homed_at(0, n);
    let cfg = DstmConfig {
        scheduler: SchedulerKind::Tfa,
        concurrency_per_node: 1,
        ..DstmConfig::default()
    };
    let programs: Vec<Vec<BoxedProgram>> = (0..n)
        .map(|i| {
            if i == 0 {
                vec![]
            } else {
                // Strongly staggered starts: each writer runs alone.
                vec![writer(oid, 1, 200 * i as u64)]
            }
        })
        .collect();
    let mut sys = build(n, cfg, vec![(oid, Payload::Scalar(0))], programs);
    let m = sys.run(10_000_000);
    assert!(sys.all_done());
    assert_eq!(m.merged.commits, 4);
    // With fully staggered single writers there is no contention at all.
    assert_eq!(
        m.merged.total_aborts(),
        0,
        "staggered writers must not conflict"
    );
    let state = sys.object_state();
    assert_eq!(state[&oid].0.as_scalar(), 4);
    // Ownership ended away from the home node (the last committer's node).
    let owner_node = sys
        .world()
        .actors()
        .iter()
        .position(|node| node.owned_object(oid).is_some())
        .expect("someone owns it");
    assert_ne!(owner_node, 0, "ownership should have migrated off the home");
    // Each of the 4 writes moved the object to a new node.
    assert_eq!(m.merged.objects_received, 4);
}

#[test]
fn flat_nesting_has_no_nested_commits() {
    let n = 2;
    let oid = oid_homed_at(0, n);
    let prog = || -> BoxedProgram {
        Box::new(ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::OpenNested(TxKind(2)),
                ScriptOp::Write(oid),
                ScriptOp::AddScalar(oid, 1),
                ScriptOp::CloseNested,
            ],
        ))
    };
    for (mode, expect_nested) in [(NestingMode::Closed, true), (NestingMode::Flat, false)] {
        let cfg = DstmConfig {
            scheduler: SchedulerKind::Tfa,
            nesting: mode,
            ..DstmConfig::default()
        };
        let mut sys = build(
            n,
            cfg,
            vec![(oid, Payload::Scalar(0))],
            vec![vec![prog()], vec![prog()]],
        );
        let m = sys.run(10_000_000);
        assert!(sys.all_done(), "{mode:?} stalled");
        assert_eq!(m.merged.commits, 2, "{mode:?}");
        assert_eq!(
            m.merged.nested_commits > 0,
            expect_nested,
            "{mode:?} nested-commit accounting"
        );
        // Semantics identical either way: two increments.
        assert_eq!(sys.object_state()[&oid].0.as_scalar(), 2, "{mode:?}");
    }
}

#[test]
fn flat_nesting_never_records_child_retries() {
    // Under flat nesting every conflict is parent-level by construction.
    let n = 4;
    let oid = oid_homed_at(0, n);
    let prog = || -> BoxedProgram {
        Box::new(ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::OpenNested(TxKind(2)),
                ScriptOp::Write(oid),
                ScriptOp::AddScalar(oid, 1),
                ScriptOp::CloseNested,
                ScriptOp::Compute(SimDuration::from_millis(5)),
            ],
        ))
    };
    let cfg = DstmConfig {
        scheduler: SchedulerKind::Tfa,
        nesting: NestingMode::Flat,
        concurrency_per_node: 1,
        ..DstmConfig::default()
    };
    let programs: Vec<Vec<BoxedProgram>> = (0..n)
        .map(|i| if i == 0 { vec![] } else { vec![prog(), prog()] })
        .collect();
    let mut sys = build(n, cfg, vec![(oid, Payload::Scalar(0))], programs);
    let m = sys.run(20_000_000);
    assert!(sys.all_done());
    assert_eq!(m.merged.commits, 6);
    assert_eq!(m.merged.child_conflict_retries, 0);
    assert_eq!(m.merged.nested_aborts_own, 0);
    assert_eq!(sys.object_state()[&oid].0.as_scalar(), 6);
}

#[test]
fn parent_conflict_scope_escalates_child_conflicts() {
    // Same contended workload, both scopes: with `Parent`, lock-busy
    // conflicts on child requests abort whole parents instead of children.
    let n = 4;
    let oid = oid_homed_at(0, n);
    let prog = || -> BoxedProgram {
        Box::new(ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::OpenNested(TxKind(2)),
                ScriptOp::Write(oid),
                ScriptOp::AddScalar(oid, 1),
                ScriptOp::CloseNested,
                ScriptOp::Compute(SimDuration::from_millis(2)),
            ],
        ))
    };
    let run = |scope: ConflictScope| {
        let cfg = DstmConfig {
            scheduler: SchedulerKind::Tfa,
            conflict_scope: scope,
            concurrency_per_node: 2,
            ..DstmConfig::default()
        };
        let programs: Vec<Vec<BoxedProgram>> = (0..n)
            .map(|i| if i == 0 { vec![] } else { vec![prog(), prog()] })
            .collect();
        let mut sys = build(n, cfg, vec![(oid, Payload::Scalar(0))], programs);
        let m = sys.run(50_000_000);
        assert!(sys.all_done(), "{scope:?} stalled");
        assert_eq!(sys.object_state()[&oid].0.as_scalar(), 6, "{scope:?}");
        m
    };
    let child = run(ConflictScope::Child);
    let parent = run(ConflictScope::Parent);
    // Child scope keeps conflicts at child granularity...
    assert!(child.merged.child_conflict_retries > 0);
    // ...Parent scope never records child retries.
    assert_eq!(parent.merged.child_conflict_retries, 0);
}

#[test]
fn rts_queue_survives_ownership_transfer() {
    // Several staggered writers collide on one hot object under RTS; the
    // requester queue must follow the object as ownership moves, and every
    // transaction must still commit exactly once.
    let n = 6;
    let oid = oid_homed_at(0, n);
    let cfg = DstmConfig {
        scheduler: SchedulerKind::Rts,
        cl_threshold: 1_000_000,
        concurrency_per_node: 1,
        ..DstmConfig::default()
    };
    let programs: Vec<Vec<BoxedProgram>> = (0..n)
        .map(|i| {
            if i == 0 {
                vec![]
            } else {
                vec![writer(oid, 1, 30 + 4 * i as u64)]
            }
        })
        .collect();
    let mut sys = build(n, cfg, vec![(oid, Payload::Scalar(0))], programs);
    let m = sys.run(50_000_000);
    assert!(sys.all_done());
    assert_eq!(m.merged.commits, 5);
    assert_eq!(sys.object_state()[&oid].0.as_scalar(), 5);
}

#[test]
fn trace_records_protocol_messages() {
    let n = 2;
    let oid = oid_homed_at(0, n);
    let cfg = DstmConfig {
        scheduler: SchedulerKind::Tfa,
        ..DstmConfig::default()
    };
    let mut sys = build(
        n,
        cfg,
        vec![(oid, Payload::Scalar(0))],
        vec![vec![], vec![writer(oid, 1, 0)]],
    );
    sys.world_mut().enable_trace(512);
    let m = sys.run(10_000_000);
    assert!(sys.all_done());
    assert_eq!(m.merged.commits, 1);
    let events = sys.world().trace_events();
    assert!(!events.is_empty(), "trace must capture deliveries");
    // Times are monotone in the trace.
    assert!(events.windows(2).all(|w| w[0].at() <= w[1].at()));
}
