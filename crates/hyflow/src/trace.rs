//! Protocol-level tracing: typed events for transaction lifecycle spans,
//! closed-nesting child spans, scheduler decisions, queue service, and
//! object migration — attributed to virtual time and node.
//!
//! This sits **above** the kernel's [`dstm_sim::TraceSink`] (which sees raw
//! message delivery): events here carry protocol semantics (`TxId`s,
//! versions, `AbortCause`s, CL/ETS numbers), which is what the offline
//! `dstm-trace` auditor and the Chrome exporter need.
//!
//! Cost discipline: every instrumentation site in `node.rs` is guarded by
//! [`ProtoTrace::on`] — one branch on a bool — and no event (or its `Vec`
//! payloads) is constructed when tracing is off.
//!
//! Serialization is hand-rolled JSONL (one record per line) because the
//! workspace is offline and carries no serde; the format is a flat object
//! whose values are unsigned integers, short label strings, or arrays of
//! integer arrays, and [`TraceRecord::parse`] reads exactly that subset
//! back.

use crate::metrics::{AbortCause, NodeMetrics};
use dstm_sim::{SimDuration, SimTime};
use rts_core::{ObjectId, TxId, TxKind};
use std::fmt::Write as _;

/// The scheduler's verdict shape, as recorded in a trace (the backoff
/// magnitude travels separately so the variant stays label-encodable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    Abort,
    AbortBackoff,
    Enqueue,
}

impl Verdict {
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Abort => "abort",
            Verdict::AbortBackoff => "abort-backoff",
            Verdict::Enqueue => "enqueue",
        }
    }

    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "abort" => Some(Verdict::Abort),
            "abort-backoff" => Some(Verdict::AbortBackoff),
            "enqueue" => Some(Verdict::Enqueue),
            _ => None,
        }
    }
}

/// One typed protocol occurrence. Times live on the enclosing
/// [`TraceRecord`]; durations inside events are plain nanosecond values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoEvent {
    /// A top-level attempt began executing (attempt 0 = first start,
    /// higher = retry after an abort).
    TxStart {
        tx: TxId,
        kind: TxKind,
        attempt: u32,
    },
    /// Transactional forwarding: a fetched version exceeded the
    /// transaction's write-version clock, triggering early validation.
    TxForward {
        tx: TxId,
        attempt: u32,
        oid: ObjectId,
        wv_old: u64,
        wv_new: u64,
    },
    /// The attempt reached its serialization point (locks held, reads
    /// validated). `reads` is every `(object, version)` the commit is based
    /// on; `writes` is `(object, expected_version, new_version)` for each
    /// published object. For a read-only commit `writes` is empty and the
    /// record is emitted at finalization.
    TxCommit {
        tx: TxId,
        attempt: u32,
        nested_committed: u64,
        reads: Vec<(ObjectId, u64)>,
        writes: Vec<(ObjectId, u64, u64)>,
    },
    /// The whole (parent) transaction aborted; it will retry as
    /// `attempt + 1`. `nested_parent` children died with it (Table I).
    ///
    /// Abort attribution rides along unconditionally (the fields are plain
    /// integers, so recording them costs nothing extra): `wasted_ns` is the
    /// virtual time the attempt had been running, `msgs` the protocol
    /// messages it had sent — both discarded. `oid` is the contended object
    /// (when the abort traces to one) and `aggressor` the transaction
    /// holding its lock, when the owner knew it (queue timeouts know the
    /// object but not the holder).
    TxAbort {
        tx: TxId,
        attempt: u32,
        cause: AbortCause,
        nested_parent: u64,
        backoff: SimDuration,
        wasted_ns: u64,
        msgs: u64,
        oid: Option<ObjectId>,
        aggressor: Option<TxId>,
    },
    /// A closed-nested child level opened.
    NestedOpen {
        tx: TxId,
        attempt: u32,
        level: u32,
        kind: TxKind,
    },
    /// The innermost child merged into its parent.
    NestedCommit { tx: TxId, attempt: u32, level: u32 },
    /// A child level rolled back for its own conflict (`own`) taking
    /// `parent`-caused casualties (committed descendants) with it.
    NestedAbort {
        tx: TxId,
        attempt: u32,
        level: u32,
        own: u64,
        parent: u64,
    },
    /// The owner-side scheduler adjudicated a lock-busy fetch
    /// (Algorithm 3): the full decision inputs and the verdict.
    SchedDecision {
        oid: ObjectId,
        tx: TxId,
        attempt: u32,
        local_cl: u32,
        requester_cl: u32,
        window_requests: u32,
        executed: SimDuration,
        remaining: SimDuration,
        queue_depth: u64,
        bk: SimDuration,
        threshold: Option<u32>,
        verdict: Verdict,
        backoff: SimDuration,
    },
    /// A queued requester was handed the object on release, after `wait`.
    QueueServed {
        oid: ObjectId,
        tx: TxId,
        attempt: u32,
        wait: SimDuration,
    },
    /// Ownership of `oid` moved from `from` to `to` at a commit.
    Migrate {
        oid: ObjectId,
        tx: TxId,
        from: u32,
        to: u32,
        version: u64,
    },
    /// Run identity prepended by the harness (scheduler and node count) so
    /// offline tools can label and segment multi-run logs.
    RunInfo { scheduler: SchedLabel, nodes: u64 },
    /// End-of-run counter snapshot appended by the harness so an offline
    /// audit can compare span-derived totals against the live counters.
    /// The wasted-work totals let `dstm-trace analyze` reconcile its
    /// event-derived ledger against the live counters.
    RunSummary {
        commits: u64,
        aborts: u64,
        nested_own: u64,
        nested_parent: u64,
        nested_commits: u64,
        wasted_ns: u64,
        wasted_msgs: u64,
        attributed: u64,
        /// Remote-read cache totals (`DstmConfig::cache`). Written only
        /// when any is nonzero so cache-off traces stay byte-identical to
        /// the pre-cache format; absent fields parse as zero.
        cache_hits: u64,
        cache_misses: u64,
        cache_invalidations: u64,
    },
}

/// Scheduler identity as recorded in traces — a copy of the harness's
/// scheduler axis that stays label-encodable without depending on the
/// scheduler crate's internals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedLabel {
    Rts,
    Tfa,
    TfaBackoff,
    Ats,
    BiInterval,
}

impl SchedLabel {
    pub fn label(self) -> &'static str {
        match self {
            SchedLabel::Rts => "RTS",
            SchedLabel::Tfa => "TFA",
            SchedLabel::TfaBackoff => "TFA+Backoff",
            SchedLabel::Ats => "ATS",
            SchedLabel::BiInterval => "Bi-interval",
        }
    }

    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "RTS" => Some(SchedLabel::Rts),
            "TFA" => Some(SchedLabel::Tfa),
            "TFA+Backoff" => Some(SchedLabel::TfaBackoff),
            "ATS" => Some(SchedLabel::Ats),
            "Bi-interval" => Some(SchedLabel::BiInterval),
            _ => None,
        }
    }
}

/// A timestamped, node-attributed protocol event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    pub at: SimTime,
    /// The node that observed/recorded the event (requester side for
    /// lifecycle events, owner side for scheduler/queue events).
    pub node: u32,
    pub ev: ProtoEvent,
}

fn write_tx(out: &mut String, tx: TxId) {
    let _ = write!(out, "\"tx\":[{},{}]", tx.node, tx.seq);
}

impl TraceRecord {
    /// Append this record as one JSONL line (including the newline).
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = write!(out, "{{\"at\":{},\"node\":{},", self.at.0, self.node);
        match &self.ev {
            ProtoEvent::TxStart { tx, kind, attempt } => {
                out.push_str("\"ev\":\"tx_start\",");
                write_tx(out, *tx);
                let _ = write!(out, ",\"kind\":{},\"attempt\":{attempt}", kind.0);
            }
            ProtoEvent::TxForward {
                tx,
                attempt,
                oid,
                wv_old,
                wv_new,
            } => {
                out.push_str("\"ev\":\"tx_forward\",");
                write_tx(out, *tx);
                let _ = write!(
                    out,
                    ",\"attempt\":{attempt},\"oid\":{},\"wv_old\":{wv_old},\"wv_new\":{wv_new}",
                    oid.0
                );
            }
            ProtoEvent::TxCommit {
                tx,
                attempt,
                nested_committed,
                reads,
                writes,
            } => {
                out.push_str("\"ev\":\"tx_commit\",");
                write_tx(out, *tx);
                let _ = write!(
                    out,
                    ",\"attempt\":{attempt},\"nested_committed\":{nested_committed},\"reads\":["
                );
                for (i, (oid, v)) in reads.iter().enumerate() {
                    let sep = if i == 0 { "" } else { "," };
                    let _ = write!(out, "{sep}[{},{v}]", oid.0);
                }
                out.push_str("],\"writes\":[");
                for (i, (oid, expect, new)) in writes.iter().enumerate() {
                    let sep = if i == 0 { "" } else { "," };
                    let _ = write!(out, "{sep}[{},{expect},{new}]", oid.0);
                }
                out.push(']');
            }
            ProtoEvent::TxAbort {
                tx,
                attempt,
                cause,
                nested_parent,
                backoff,
                wasted_ns,
                msgs,
                oid,
                aggressor,
            } => {
                out.push_str("\"ev\":\"tx_abort\",");
                write_tx(out, *tx);
                let _ = write!(
                    out,
                    ",\"attempt\":{attempt},\"cause\":\"{}\",\"nested_parent\":{nested_parent},\"backoff\":{}\
                     ,\"wasted_ns\":{wasted_ns},\"msgs\":{msgs}",
                    cause.label(),
                    backoff.0
                );
                if let Some(oid) = oid {
                    let _ = write!(out, ",\"oid\":{}", oid.0);
                }
                if let Some(a) = aggressor {
                    let _ = write!(out, ",\"aggr\":[{},{}]", a.node, a.seq);
                }
            }
            ProtoEvent::NestedOpen {
                tx,
                attempt,
                level,
                kind,
            } => {
                out.push_str("\"ev\":\"nested_open\",");
                write_tx(out, *tx);
                let _ = write!(
                    out,
                    ",\"attempt\":{attempt},\"level\":{level},\"kind\":{}",
                    kind.0
                );
            }
            ProtoEvent::NestedCommit { tx, attempt, level } => {
                out.push_str("\"ev\":\"nested_commit\",");
                write_tx(out, *tx);
                let _ = write!(out, ",\"attempt\":{attempt},\"level\":{level}");
            }
            ProtoEvent::NestedAbort {
                tx,
                attempt,
                level,
                own,
                parent,
            } => {
                out.push_str("\"ev\":\"nested_abort\",");
                write_tx(out, *tx);
                let _ = write!(
                    out,
                    ",\"attempt\":{attempt},\"level\":{level},\"own\":{own},\"parent\":{parent}"
                );
            }
            ProtoEvent::SchedDecision {
                oid,
                tx,
                attempt,
                local_cl,
                requester_cl,
                window_requests,
                executed,
                remaining,
                queue_depth,
                bk,
                threshold,
                verdict,
                backoff,
            } => {
                let _ = write!(out, "\"ev\":\"sched_decision\",\"oid\":{},", oid.0);
                write_tx(out, *tx);
                let _ = write!(
                    out,
                    ",\"attempt\":{attempt},\"local_cl\":{local_cl},\"requester_cl\":{requester_cl},\
                     \"window_requests\":{window_requests},\"executed\":{},\"remaining\":{},\
                     \"queue_depth\":{queue_depth},\"bk\":{}",
                    executed.0, remaining.0, bk.0
                );
                if let Some(t) = threshold {
                    let _ = write!(out, ",\"threshold\":{t}");
                }
                let _ = write!(
                    out,
                    ",\"verdict\":\"{}\",\"backoff\":{}",
                    verdict.label(),
                    backoff.0
                );
            }
            ProtoEvent::QueueServed {
                oid,
                tx,
                attempt,
                wait,
            } => {
                let _ = write!(out, "\"ev\":\"queue_served\",\"oid\":{},", oid.0);
                write_tx(out, *tx);
                let _ = write!(out, ",\"attempt\":{attempt},\"wait\":{}", wait.0);
            }
            ProtoEvent::Migrate {
                oid,
                tx,
                from,
                to,
                version,
            } => {
                let _ = write!(out, "\"ev\":\"migrate\",\"oid\":{},", oid.0);
                write_tx(out, *tx);
                let _ = write!(out, ",\"from\":{from},\"to\":{to},\"version\":{version}");
            }
            ProtoEvent::RunInfo { scheduler, nodes } => {
                let _ = write!(
                    out,
                    "\"ev\":\"run_info\",\"scheduler\":\"{}\",\"nodes\":{nodes}",
                    scheduler.label()
                );
            }
            ProtoEvent::RunSummary {
                commits,
                aborts,
                nested_own,
                nested_parent,
                nested_commits,
                wasted_ns,
                wasted_msgs,
                attributed,
                cache_hits,
                cache_misses,
                cache_invalidations,
            } => {
                let _ = write!(
                    out,
                    "\"ev\":\"run_summary\",\"commits\":{commits},\"aborts\":{aborts},\
                     \"nested_own\":{nested_own},\"nested_parent\":{nested_parent},\
                     \"nested_commits\":{nested_commits},\"wasted_ns\":{wasted_ns},\
                     \"wasted_msgs\":{wasted_msgs},\"attributed\":{attributed}"
                );
                if *cache_hits != 0 || *cache_misses != 0 || *cache_invalidations != 0 {
                    let _ = write!(
                        out,
                        ",\"cache_hits\":{cache_hits},\"cache_misses\":{cache_misses},\
                         \"cache_inval\":{cache_invalidations}"
                    );
                }
            }
        }
        out.push_str("}\n");
    }

    /// Parse one JSONL line written by [`TraceRecord::write_jsonl`].
    pub fn parse(line: &str) -> Result<TraceRecord, String> {
        let obj = json::parse_object(line)?;
        let at = SimTime(obj.num("at")?);
        let node = obj.num("node")? as u32;
        let ev_name = obj.str("ev")?;
        let tx = || -> Result<TxId, String> {
            let pair = obj.num_array("tx")?;
            if pair.len() != 2 {
                return Err("tx must be [node,seq]".into());
            }
            Ok(TxId::new(pair[0] as u32, pair[1]))
        };
        let attempt = || obj.num("attempt").map(|a| a as u32);
        let ev = match ev_name {
            "tx_start" => ProtoEvent::TxStart {
                tx: tx()?,
                kind: TxKind(obj.num("kind")? as u16),
                attempt: attempt()?,
            },
            "tx_forward" => ProtoEvent::TxForward {
                tx: tx()?,
                attempt: attempt()?,
                oid: ObjectId(obj.num("oid")?),
                wv_old: obj.num("wv_old")?,
                wv_new: obj.num("wv_new")?,
            },
            "tx_commit" => {
                let reads = obj
                    .pair_array("reads")?
                    .into_iter()
                    .map(|p| (ObjectId(p[0]), p[1]))
                    .collect();
                let writes = obj
                    .triple_array("writes")?
                    .into_iter()
                    .map(|p| (ObjectId(p[0]), p[1], p[2]))
                    .collect();
                ProtoEvent::TxCommit {
                    tx: tx()?,
                    attempt: attempt()?,
                    nested_committed: obj.num("nested_committed")?,
                    reads,
                    writes,
                }
            }
            "tx_abort" => ProtoEvent::TxAbort {
                tx: tx()?,
                attempt: attempt()?,
                cause: AbortCause::from_label(obj.str("cause")?)
                    .ok_or_else(|| format!("unknown abort cause {:?}", obj.str("cause")))?,
                nested_parent: obj.num("nested_parent")?,
                backoff: SimDuration(obj.num("backoff")?),
                // Attribution fields default to zero/absent so traces
                // written before they existed still parse.
                wasted_ns: obj.opt_num("wasted_ns").unwrap_or(0),
                msgs: obj.opt_num("msgs").unwrap_or(0),
                oid: obj.opt_num("oid").map(ObjectId),
                aggressor: obj.opt_pair("aggr").map(|[n, s]| TxId::new(n as u32, s)),
            },
            "nested_open" => ProtoEvent::NestedOpen {
                tx: tx()?,
                attempt: attempt()?,
                level: obj.num("level")? as u32,
                kind: TxKind(obj.num("kind")? as u16),
            },
            "nested_commit" => ProtoEvent::NestedCommit {
                tx: tx()?,
                attempt: attempt()?,
                level: obj.num("level")? as u32,
            },
            "nested_abort" => ProtoEvent::NestedAbort {
                tx: tx()?,
                attempt: attempt()?,
                level: obj.num("level")? as u32,
                own: obj.num("own")?,
                parent: obj.num("parent")?,
            },
            "sched_decision" => ProtoEvent::SchedDecision {
                oid: ObjectId(obj.num("oid")?),
                tx: tx()?,
                attempt: attempt()?,
                local_cl: obj.num("local_cl")? as u32,
                requester_cl: obj.num("requester_cl")? as u32,
                window_requests: obj.num("window_requests")? as u32,
                executed: SimDuration(obj.num("executed")?),
                remaining: SimDuration(obj.num("remaining")?),
                queue_depth: obj.num("queue_depth")?,
                bk: SimDuration(obj.num("bk")?),
                threshold: obj.opt_num("threshold").map(|t| t as u32),
                verdict: Verdict::from_label(obj.str("verdict")?)
                    .ok_or_else(|| format!("unknown verdict {:?}", obj.str("verdict")))?,
                backoff: SimDuration(obj.num("backoff")?),
            },
            "queue_served" => ProtoEvent::QueueServed {
                oid: ObjectId(obj.num("oid")?),
                tx: tx()?,
                attempt: attempt()?,
                wait: SimDuration(obj.num("wait")?),
            },
            "migrate" => ProtoEvent::Migrate {
                oid: ObjectId(obj.num("oid")?),
                tx: tx()?,
                from: obj.num("from")? as u32,
                to: obj.num("to")? as u32,
                version: obj.num("version")?,
            },
            "run_info" => ProtoEvent::RunInfo {
                scheduler: SchedLabel::from_label(obj.str("scheduler")?)
                    .ok_or_else(|| format!("unknown scheduler {:?}", obj.str("scheduler")))?,
                nodes: obj.num("nodes")?,
            },
            "run_summary" => ProtoEvent::RunSummary {
                commits: obj.num("commits")?,
                aborts: obj.num("aborts")?,
                nested_own: obj.num("nested_own")?,
                nested_parent: obj.num("nested_parent")?,
                nested_commits: obj.num("nested_commits")?,
                wasted_ns: obj.opt_num("wasted_ns").unwrap_or(0),
                wasted_msgs: obj.opt_num("wasted_msgs").unwrap_or(0),
                attributed: obj.opt_num("attributed").unwrap_or(0),
                cache_hits: obj.opt_num("cache_hits").unwrap_or(0),
                cache_misses: obj.opt_num("cache_misses").unwrap_or(0),
                cache_invalidations: obj.opt_num("cache_inval").unwrap_or(0),
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(TraceRecord { at, node, ev })
    }
}

/// Per-node protocol-event sink. Disabled by default; every caller guards
/// with [`ProtoTrace::on`] before building an event, so the disabled path is
/// one branch and zero allocation.
#[derive(Debug, Default)]
pub struct ProtoTrace {
    enabled: bool,
    records: Vec<TraceRecord>,
}

impl ProtoTrace {
    pub fn disabled() -> Self {
        ProtoTrace::default()
    }

    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// The one-branch guard callers check before constructing an event.
    #[inline]
    pub fn on(&self) -> bool {
        self.enabled
    }

    #[inline]
    pub fn push(&mut self, at: SimTime, node: u32, ev: ProtoEvent) {
        if self.enabled {
            self.records.push(TraceRecord { at, node, ev });
        }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drain the recorded events (end-of-run collection).
    pub fn take(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }
}

/// A whole run's merged trace, time-ordered across nodes.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    pub records: Vec<TraceRecord>,
}

impl TraceLog {
    /// Merge per-node record streams (each already time-ordered) into one
    /// deterministic global order: by time, ties by node.
    pub fn from_node_streams(streams: Vec<Vec<TraceRecord>>) -> Self {
        let mut records: Vec<TraceRecord> = streams.into_iter().flatten().collect();
        records.sort_by_key(|r| (r.at, r.node));
        TraceLog { records }
    }

    /// Prepend the run-identity record (scheduler, node count) offline
    /// tools use to label and segment the log. Sits at time zero, before
    /// every protocol event.
    pub fn push_run_info(&mut self, scheduler: SchedLabel, nodes: u64) {
        self.records.insert(
            0,
            TraceRecord {
                at: SimTime::ZERO,
                node: 0,
                ev: ProtoEvent::RunInfo { scheduler, nodes },
            },
        );
    }

    /// Append the end-of-run counter snapshot the auditor cross-checks
    /// span-derived totals against.
    pub fn push_summary(&mut self, at: SimTime, merged: &NodeMetrics) {
        self.records.push(TraceRecord {
            at,
            node: 0,
            ev: ProtoEvent::RunSummary {
                commits: merged.commits,
                aborts: merged.total_aborts(),
                nested_own: merged.nested_aborts_own,
                nested_parent: merged.nested_aborts_parent,
                nested_commits: merged.nested_commits,
                wasted_ns: merged.wasted_work_ns,
                wasted_msgs: merged.wasted_msgs,
                attributed: merged.aborts_attributed,
                cache_hits: merged.cache_hits,
                cache_misses: merged.cache_misses,
                cache_invalidations: merged.cache_invalidations,
            },
        });
    }

    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 96);
        for r in &self.records {
            r.write_jsonl(&mut out);
        }
        out
    }

    pub fn parse_jsonl(text: &str) -> Result<TraceLog, String> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            records.push(TraceRecord::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(TraceLog { records })
    }
}

/// Minimal JSON-subset reader for the flat objects this module writes:
/// string keys; values are unsigned integers, short strings, or arrays of
/// integer arrays. Not a general JSON parser.
mod json {
    pub struct Obj {
        fields: Vec<(String, Val)>,
    }

    pub enum Val {
        Num(u64),
        Str(String),
        Arr(Vec<Val>),
    }

    impl Obj {
        fn get(&self, key: &str) -> Option<&Val> {
            self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        pub fn num(&self, key: &str) -> Result<u64, String> {
            match self.get(key) {
                Some(Val::Num(n)) => Ok(*n),
                _ => Err(format!("missing numeric field {key:?}")),
            }
        }

        pub fn opt_num(&self, key: &str) -> Option<u64> {
            match self.get(key) {
                Some(Val::Num(n)) => Some(*n),
                _ => None,
            }
        }

        /// An optional `[a,b]` field (absent → `None`; malformed → `None`
        /// too, matching `opt_num`'s lenient shape).
        pub fn opt_pair(&self, key: &str) -> Option<[u64; 2]> {
            match self.get(key) {
                Some(Val::Arr(items)) if items.len() == 2 => match (&items[0], &items[1]) {
                    (Val::Num(a), Val::Num(b)) => Some([*a, *b]),
                    _ => None,
                },
                _ => None,
            }
        }

        pub fn str(&self, key: &str) -> Result<&str, String> {
            match self.get(key) {
                Some(Val::Str(s)) => Ok(s),
                _ => Err(format!("missing string field {key:?}")),
            }
        }

        pub fn num_array(&self, key: &str) -> Result<Vec<u64>, String> {
            match self.get(key) {
                Some(Val::Arr(items)) => items
                    .iter()
                    .map(|v| match v {
                        Val::Num(n) => Ok(*n),
                        _ => Err(format!("non-numeric element in {key:?}")),
                    })
                    .collect(),
                _ => Err(format!("missing array field {key:?}")),
            }
        }

        fn tuple_array(&self, key: &str, arity: usize) -> Result<Vec<Vec<u64>>, String> {
            match self.get(key) {
                Some(Val::Arr(items)) => items
                    .iter()
                    .map(|v| match v {
                        Val::Arr(inner) if inner.len() == arity => inner
                            .iter()
                            .map(|n| match n {
                                Val::Num(n) => Ok(*n),
                                _ => Err(format!("non-numeric tuple element in {key:?}")),
                            })
                            .collect(),
                        _ => Err(format!("{key:?} must hold {arity}-tuples")),
                    })
                    .collect(),
                _ => Err(format!("missing array field {key:?}")),
            }
        }

        pub fn pair_array(&self, key: &str) -> Result<Vec<Vec<u64>>, String> {
            self.tuple_array(key, 2)
        }

        pub fn triple_array(&self, key: &str) -> Result<Vec<Vec<u64>>, String> {
            self.tuple_array(key, 3)
        }
    }

    pub fn parse_object(line: &str) -> Result<Obj, String> {
        let mut p = Parser {
            bytes: line.as_bytes(),
            pos: 0,
        };
        let obj = p.object()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err("trailing garbage after object".into());
        }
        Ok(obj)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", b as char, self.pos))
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn object(&mut self) -> Result<Obj, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Obj { fields });
            }
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                let val = self.value()?;
                fields.push((key, val));
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Obj { fields });
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn value(&mut self) -> Result<Val, String> {
            match self.peek() {
                Some(b'"') => Ok(Val::Str(self.string()?)),
                Some(b'[') => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Val::Arr(items));
                    }
                    loop {
                        items.push(self.value()?);
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                return Ok(Val::Arr(items));
                            }
                            _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                        }
                    }
                }
                Some(b) if b.is_ascii_digit() => {
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                        self.pos += 1;
                    }
                    let s =
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are utf8");
                    s.parse::<u64>()
                        .map(Val::Num)
                        .map_err(|e| format!("bad number {s:?}: {e}"))
                }
                _ => Err(format!("unexpected value at byte {}", self.pos)),
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                if b == b'\\' {
                    return Err("escape sequences are not part of the trace format".into());
                }
                self.pos += 1;
            }
            Err("unterminated string".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: TraceRecord) {
        let mut line = String::new();
        rec.write_jsonl(&mut line);
        let back = TraceRecord::parse(line.trim_end()).expect("parse back");
        assert_eq!(rec, back, "line was {line}");
    }

    #[test]
    fn all_variants_roundtrip() {
        let tx = TxId::new(3, 17);
        let variants = vec![
            ProtoEvent::TxStart {
                tx,
                kind: TxKind(2),
                attempt: 0,
            },
            ProtoEvent::TxForward {
                tx,
                attempt: 1,
                oid: ObjectId(9),
                wv_old: 4,
                wv_new: 11,
            },
            ProtoEvent::TxCommit {
                tx,
                attempt: 2,
                nested_committed: 3,
                reads: vec![(ObjectId(1), 5), (ObjectId(2), 0)],
                writes: vec![(ObjectId(1), 5, 9)],
            },
            ProtoEvent::TxCommit {
                tx,
                attempt: 0,
                nested_committed: 0,
                reads: vec![],
                writes: vec![],
            },
            ProtoEvent::TxAbort {
                tx,
                attempt: 2,
                cause: AbortCause::QueueTimeout,
                nested_parent: 4,
                backoff: SimDuration::from_millis(7),
                wasted_ns: 123_456,
                msgs: 9,
                oid: Some(ObjectId(42)),
                aggressor: None,
            },
            ProtoEvent::TxAbort {
                tx,
                attempt: 0,
                cause: AbortCause::SchedulerAbort,
                nested_parent: 0,
                backoff: SimDuration::ZERO,
                wasted_ns: 0,
                msgs: 0,
                oid: Some(ObjectId(3)),
                aggressor: Some(TxId::new(5, 77)),
            },
            ProtoEvent::NestedOpen {
                tx,
                attempt: 0,
                level: 1,
                kind: TxKind(8),
            },
            ProtoEvent::NestedCommit {
                tx,
                attempt: 0,
                level: 1,
            },
            ProtoEvent::NestedAbort {
                tx,
                attempt: 1,
                level: 2,
                own: 1,
                parent: 1,
            },
            ProtoEvent::SchedDecision {
                oid: ObjectId(7),
                tx,
                attempt: 3,
                local_cl: 2,
                requester_cl: 1,
                window_requests: 5,
                executed: SimDuration::from_millis(50),
                remaining: SimDuration::from_millis(20),
                queue_depth: 2,
                bk: SimDuration::from_millis(45),
                threshold: Some(16),
                verdict: Verdict::Enqueue,
                backoff: SimDuration::from_millis(45),
            },
            ProtoEvent::SchedDecision {
                oid: ObjectId(7),
                tx,
                attempt: 0,
                local_cl: 0,
                requester_cl: 0,
                window_requests: 1,
                executed: SimDuration::ZERO,
                remaining: SimDuration::ZERO,
                queue_depth: 0,
                bk: SimDuration::ZERO,
                threshold: None,
                verdict: Verdict::Abort,
                backoff: SimDuration::ZERO,
            },
            ProtoEvent::QueueServed {
                oid: ObjectId(7),
                tx,
                attempt: 1,
                wait: SimDuration::from_millis(12),
            },
            ProtoEvent::Migrate {
                oid: ObjectId(7),
                tx,
                from: 0,
                to: 3,
                version: 12,
            },
            ProtoEvent::RunInfo {
                scheduler: SchedLabel::TfaBackoff,
                nodes: 160,
            },
            ProtoEvent::RunSummary {
                commits: 10,
                aborts: 4,
                nested_own: 2,
                nested_parent: 5,
                nested_commits: 12,
                wasted_ns: 1_000_000,
                wasted_msgs: 40,
                attributed: 3,
                cache_hits: 0,
                cache_misses: 0,
                cache_invalidations: 0,
            },
            ProtoEvent::RunSummary {
                commits: 10,
                aborts: 4,
                nested_own: 2,
                nested_parent: 5,
                nested_commits: 12,
                wasted_ns: 1_000_000,
                wasted_msgs: 40,
                attributed: 3,
                cache_hits: 15,
                cache_misses: 4,
                cache_invalidations: 2,
            },
        ];
        for (i, ev) in variants.into_iter().enumerate() {
            roundtrip(TraceRecord {
                at: SimTime(1_000 + i as u64),
                node: i as u32 % 4,
                ev,
            });
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut t = ProtoTrace::disabled();
        assert!(!t.on());
        t.push(
            SimTime(1),
            0,
            ProtoEvent::TxStart {
                tx: TxId::new(0, 1),
                kind: TxKind(1),
                attempt: 0,
            },
        );
        assert!(t.is_empty());
    }

    #[test]
    fn log_merges_streams_in_time_order() {
        let mk = |at: u64, node: u32| TraceRecord {
            at: SimTime(at),
            node,
            ev: ProtoEvent::NestedCommit {
                tx: TxId::new(node, 1),
                attempt: 0,
                level: 1,
            },
        };
        let log =
            TraceLog::from_node_streams(vec![vec![mk(5, 0), mk(9, 0)], vec![mk(1, 1), mk(9, 1)]]);
        let order: Vec<(u64, u32)> = log.records.iter().map(|r| (r.at.0, r.node)).collect();
        assert_eq!(order, vec![(1, 1), (5, 0), (9, 0), (9, 1)]);
    }

    #[test]
    fn jsonl_text_roundtrip_with_summary() {
        let mut log = TraceLog::from_node_streams(vec![vec![TraceRecord {
            at: SimTime(3),
            node: 2,
            ev: ProtoEvent::QueueServed {
                oid: ObjectId(1),
                tx: TxId::new(2, 4),
                attempt: 0,
                wait: SimDuration::from_millis(3),
            },
        }]]);
        let metrics = NodeMetrics {
            commits: 6,
            nested_commits: 8,
            nested_aborts_own: 1,
            nested_aborts_parent: 2,
            aborts_scheduler: 3,
            ..NodeMetrics::default()
        };
        log.push_run_info(SchedLabel::Rts, 8);
        log.push_summary(SimTime(10), &metrics);
        assert!(matches!(log.records[0].ev, ProtoEvent::RunInfo { .. }));
        let text = log.to_jsonl();
        let back = TraceLog::parse_jsonl(&text).unwrap();
        assert_eq!(log.records, back.records);
    }

    #[test]
    fn pre_attribution_traces_still_parse() {
        // A tx_abort line written before the wasted-work fields existed.
        let line = "{\"at\":5,\"node\":1,\"ev\":\"tx_abort\",\"tx\":[1,2],\"attempt\":0,\
                    \"cause\":\"scheduler-abort\",\"nested_parent\":0,\"backoff\":0}";
        let rec = TraceRecord::parse(line).unwrap();
        match rec.ev {
            ProtoEvent::TxAbort {
                wasted_ns,
                msgs,
                oid,
                aggressor,
                ..
            } => {
                assert_eq!((wasted_ns, msgs), (0, 0));
                assert!(oid.is_none() && aggressor.is_none());
            }
            other => panic!("parsed {other:?}"),
        }
        // Same for a pre-attribution run_summary.
        let line = "{\"at\":9,\"node\":0,\"ev\":\"run_summary\",\"commits\":3,\"aborts\":1,\
                    \"nested_own\":0,\"nested_parent\":0,\"nested_commits\":2}";
        let rec = TraceRecord::parse(line).unwrap();
        assert!(matches!(
            rec.ev,
            ProtoEvent::RunSummary {
                wasted_ns: 0,
                wasted_msgs: 0,
                attributed: 0,
                cache_hits: 0,
                cache_misses: 0,
                cache_invalidations: 0,
                ..
            }
        ));
    }

    #[test]
    fn cache_off_summary_line_has_no_cache_fields() {
        // Bit-identity guard: with all cache counters zero the summary line
        // must be byte-identical to the pre-cache format.
        let mut log = TraceLog::default();
        log.push_summary(SimTime(10), &NodeMetrics::default());
        let text = log.to_jsonl();
        assert!(!text.contains("cache"), "line was {text}");
        let mut cached = TraceLog::default();
        cached.push_summary(
            SimTime(10),
            &NodeMetrics {
                cache_hits: 3,
                ..NodeMetrics::default()
            },
        );
        assert!(cached.to_jsonl().contains("\"cache_hits\":3"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TraceRecord::parse("{\"at\":1}").is_err());
        assert!(TraceRecord::parse("not json").is_err());
        assert!(TraceRecord::parse("{\"at\":1,\"node\":0,\"ev\":\"bogus\"}").is_err());
        assert!(TraceLog::parse_jsonl("{\"at\":oops\n").is_err());
    }
}
