//! Versioned shared objects.
//!
//! An object's **version** is the TFA clock value of the transaction that
//! last committed a write to it; versions are strictly increasing per
//! object, which is what early validation checks. The **owner** of an
//! object is the single node holding its writable copy (dataflow model);
//! reads are served as copies, and ownership moves to the committing
//! writer.

use rts_core::{ObjectId, TxId};
use std::sync::Arc;

/// The application-visible contents of an object. The benchmarks of §IV
/// need scalars (Bank accounts, Vacation inventories), pointer-shaped nodes
/// (Linked-List, BST, RB-Tree), and key–value buckets (DHT).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// A plain integer cell.
    Scalar(i64),
    /// A mutable reference cell (list head / tree root).
    Ptr(Option<ObjectId>),
    /// Singly linked list node.
    ListNode { value: i64, next: Option<ObjectId> },
    /// Binary tree node; `red` is used by the RB-Tree benchmark and ignored
    /// by the plain BST.
    TreeNode {
        value: i64,
        left: Option<ObjectId>,
        right: Option<ObjectId>,
        red: bool,
    },
    /// DHT bucket of key → value pairs.
    Bucket(Vec<(u64, i64)>),
}

impl Payload {
    /// Convenience accessor for `Scalar`.
    pub fn as_scalar(&self) -> i64 {
        match self {
            Payload::Scalar(v) => *v,
            other => panic!("expected Scalar payload, found {other:?}"),
        }
    }

    /// Convenience accessor for `Ptr`.
    pub fn as_ptr(&self) -> Option<ObjectId> {
        match self {
            Payload::Ptr(p) => *p,
            other => panic!("expected Ptr payload, found {other:?}"),
        }
    }

    /// Fold the payload's full contents into a structural fingerprint
    /// (see [`crate::small::Fnv64`]); used by the verification harness.
    pub fn hash_into(&self, h: &mut crate::small::Fnv64) {
        fn opt_oid(h: &mut crate::small::Fnv64, o: &Option<ObjectId>) {
            match o {
                Some(oid) => {
                    h.write_u8(1);
                    h.write_u64(oid.0);
                }
                None => h.write_u8(0),
            }
        }
        match self {
            Payload::Scalar(v) => {
                h.write_u8(1);
                h.write_u64(*v as u64);
            }
            Payload::Ptr(p) => {
                h.write_u8(2);
                opt_oid(h, p);
            }
            Payload::ListNode { value, next } => {
                h.write_u8(3);
                h.write_u64(*value as u64);
                opt_oid(h, next);
            }
            Payload::TreeNode {
                value,
                left,
                right,
                red,
            } => {
                h.write_u8(4);
                h.write_u64(*value as u64);
                opt_oid(h, left);
                opt_oid(h, right);
                h.write_u8(u8::from(*red));
            }
            Payload::Bucket(kvs) => {
                h.write_u8(5);
                h.write_u64(kvs.len() as u64);
                for (k, v) in kvs {
                    h.write_u64(*k);
                    h.write_u64(*v as u64);
                }
            }
        }
    }

    /// Rough serialized size in bytes, for network-volume accounting.
    pub fn approx_size(&self) -> usize {
        match self {
            Payload::Scalar(_) => 8,
            Payload::Ptr(_) => 9,
            Payload::ListNode { .. } => 17,
            Payload::TreeNode { .. } => 27,
            Payload::Bucket(kvs) => 8 + kvs.len() * 16,
        }
    }
}

/// A read copy retained after a grant (`DstmConfig::cache`). Reuse is a
/// freshness heuristic, never a correctness mechanism: a cached copy that
/// turns out stale is caught by the same commit-time validation (lock
/// `expect_version` for writes, `VersionCheck` for clean reads) that guards
/// every ordinary fetch.
#[derive(Clone, Debug)]
pub struct CachedCopy {
    pub payload: Arc<Payload>,
    /// Version of the copy at grant time.
    pub version: u64,
    /// The owner's TFA clock when the copy was granted: while the caching
    /// node's own clock has not passed this value, no commit the node has
    /// observed can have overwritten the copy.
    pub owner_clock: u64,
    /// Owner-side local CL at grant time (folded into `myCL` on reuse).
    pub local_cl: u32,
    /// Who granted the copy.
    pub owner: u32,
}

/// An object as held by its owner node.
///
/// The payload is behind an [`Arc`]: serving a read copy, migrating
/// ownership, and installing fetched copies are all pointer bumps
/// (copy-on-write — a writer builds a *new* payload and swaps the pointer,
/// it never mutates through the `Arc`).
#[derive(Clone, Debug)]
pub struct OwnedObject {
    pub payload: Arc<Payload>,
    /// TFA commit clock of the last writer.
    pub version: u64,
    /// `Some(tx)` while a committing transaction holds the validation lock —
    /// the paper's "object is being validated" state that triggers the
    /// scheduler.
    pub lock: Option<TxId>,
}

impl OwnedObject {
    pub fn new(payload: Payload) -> Self {
        Self::new_shared(Arc::new(payload))
    }

    /// Install an already-shared payload (the zero-copy migration path).
    pub fn new_shared(payload: Arc<Payload>) -> Self {
        OwnedObject {
            payload,
            version: 0,
            lock: None,
        }
    }

    #[inline]
    pub fn is_locked(&self) -> bool {
        self.lock.is_some()
    }

    /// Try to take the validation lock for `tx`. Re-entrant for the same
    /// transaction (a committer may lock several of its objects at one
    /// owner).
    pub fn try_lock(&mut self, tx: TxId) -> bool {
        match self.lock {
            None => {
                self.lock = Some(tx);
                true
            }
            Some(holder) => holder == tx,
        }
    }

    /// Release the lock if held by `tx`; returns whether it was released.
    pub fn unlock(&mut self, tx: TxId) -> bool {
        if self.lock == Some(tx) {
            self.lock = None;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_protocol() {
        let mut o = OwnedObject::new(Payload::Scalar(5));
        let t1 = TxId::new(0, 1);
        let t2 = TxId::new(1, 1);
        assert!(!o.is_locked());
        assert!(o.try_lock(t1));
        assert!(o.try_lock(t1), "re-entrant for the same tx");
        assert!(!o.try_lock(t2), "second tx must not steal the lock");
        assert!(!o.unlock(t2), "non-holder cannot unlock");
        assert!(o.unlock(t1));
        assert!(!o.is_locked());
        assert!(o.try_lock(t2));
    }

    #[test]
    fn payload_accessors() {
        assert_eq!(Payload::Scalar(7).as_scalar(), 7);
        assert_eq!(Payload::Ptr(Some(ObjectId(3))).as_ptr(), Some(ObjectId(3)));
        assert_eq!(Payload::Ptr(None).as_ptr(), None);
    }

    #[test]
    #[should_panic(expected = "expected Scalar")]
    fn wrong_accessor_panics() {
        Payload::Ptr(None).as_scalar();
    }

    #[test]
    fn sizes_monotone_in_content() {
        let small = Payload::Bucket(vec![(1, 1)]);
        let big = Payload::Bucket(vec![(1, 1); 10]);
        assert!(big.approx_size() > small.approx_size());
    }
}
