//! Runtime configuration for a D-STM system.

use dstm_sim::SimDuration;
use rts_core::SchedulerKind;

/// How `OpenNested`/`CloseNested` are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NestingMode {
    /// Closed nesting (§I/§II): children keep their own read/write sets,
    /// abort independently, and merge into the parent on child commit.
    Closed,
    /// Flat nesting: nested delimiters are inlined into the parent — *"if
    /// a large monolithic transaction is aborted, all nested transactions
    /// are also aborted and rolled back, even if they don't conflict with
    /// the outer transaction"* (§I). Kept for the nesting ablation.
    Flat,
}

/// Which context a lock-busy fetch conflict aborts when the scheduler's
/// verdict is "abort".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictScope {
    /// The whole (parent) transaction aborts — TFA as described in §II:
    /// *"parent transactions, which are designated to abort due to the
    /// second case of aborting in TFA"*. The paper's baseline.
    Parent,
    /// Only the innermost closed-nested child aborts and replays (an
    /// alternative contention-management granularity; kept for the
    /// ablation benches).
    Child,
}

/// Which pending-event-set implementation backs the simulation kernel for a
/// run. Both produce bit-identical schedules (same `EventKey` total order);
/// they differ only in wall-clock cost per event, so this is purely a
/// performance knob for the host machine running the sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// `std::collections::BinaryHeap`-backed — O(log n) push/pop, the
    /// safe default at any queue size.
    #[default]
    BinaryHeap,
    /// Calendar queue (Brown 1988) — amortized O(1) push/pop when event
    /// times are roughly uniform, which D-STM workloads are.
    Calendar,
}

impl QueueBackend {
    /// Short label for reports and CLI parsing.
    pub fn label(&self) -> &'static str {
        match self {
            QueueBackend::BinaryHeap => "heap",
            QueueBackend::Calendar => "calendar",
        }
    }

    /// Parse a CLI spelling (`heap` / `calendar`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" | "binary-heap" => Some(QueueBackend::BinaryHeap),
            "calendar" | "cal" => Some(QueueBackend::Calendar),
            _ => None,
        }
    }
}

/// All the knobs of a run. `Default` gives the harness's baseline setup.
#[derive(Clone, Debug)]
pub struct DstmConfig {
    /// Which conflict policy owners use.
    pub scheduler: SchedulerKind,
    /// CL threshold for RTS (fixed mode). The harness's ablation bench
    /// sweeps this; per-benchmark peak values are used for the figures.
    pub cl_threshold: u32,
    /// Use the adaptive (hill-climbing) threshold controller instead of the
    /// fixed threshold.
    pub adaptive_threshold: bool,
    /// Base backoff for the TFA+Backoff policy.
    pub backoff_base: SimDuration,
    /// Sliding window for the owner-side local CL.
    pub cl_window: SimDuration,
    /// Prior for expected execution time before a kind has history.
    pub default_exec_estimate: SimDuration,
    /// Extra latency of a *granted* lock acknowledgement, modelling the
    /// paper's slow commit-time validation: "a validation in distributed
    /// systems includes global registration of object ownership, which
    /// takes a relatively long time" (§II). Lengthens the window in which
    /// fetches hit locked objects.
    pub validation_overhead: SimDuration,
    /// Extra slack multiplied onto RTS queue-wait deadlines (percent).
    /// 100 = use the assigned backoff as-is.
    pub queue_deadline_percent: u64,
    /// Abort granularity for lock-busy conflicts (see [`ConflictScope`]).
    pub conflict_scope: ConflictScope,
    /// Closed (the paper's model) or flat nesting (see [`NestingMode`]).
    pub nesting: NestingMode,
    /// Kernel pending-event-set implementation (see [`QueueBackend`]).
    pub queue_backend: QueueBackend,
    /// Record typed protocol events ([`crate::trace`]) during the run.
    /// Off by default: every instrumentation site is behind a one-branch
    /// guard, so a disabled run allocates nothing for tracing.
    pub trace_protocol: bool,
    /// Record time-resolved telemetry ([`crate::telemetry`]): per-node
    /// epoch samples of commit/abort/queue/CL activity plus the per-object
    /// wasted-work rollup. Off by default behind the same one-branch guard
    /// discipline as `trace_protocol` — a disabled run takes one branch per
    /// event and allocates nothing.
    pub telemetry: bool,
    /// Simulated-time width of one telemetry epoch (ignored when
    /// `telemetry` is off).
    pub epoch: SimDuration,
    /// Clock-validated remote-read caching plus same-tick message
    /// coalescing (`--cache` / `DSTM_CACHE`). Off by default: the cached
    /// fast paths and per-destination send buffers change message timing,
    /// so the flag must stay opt-in for the golden digests of the default
    /// configuration to remain bit-identical.
    pub cache: bool,
    /// Concurrent transactions each node keeps in flight.
    pub concurrency_per_node: usize,
    /// Top-level transactions each node runs in total (the workload size).
    pub txns_per_node: usize,
}

impl Default for DstmConfig {
    fn default() -> Self {
        DstmConfig {
            scheduler: SchedulerKind::Rts,
            cl_threshold: 16,
            adaptive_threshold: false,
            backoff_base: SimDuration::from_millis(10),
            cl_window: SimDuration::from_millis(500),
            default_exec_estimate: SimDuration::from_millis(60),
            validation_overhead: SimDuration::from_millis(25),
            queue_deadline_percent: 150,
            conflict_scope: ConflictScope::Child,
            nesting: NestingMode::Closed,
            queue_backend: QueueBackend::default(),
            trace_protocol: false,
            telemetry: false,
            epoch: SimDuration::from_millis(50),
            cache: false,
            concurrency_per_node: 4,
            txns_per_node: 50,
        }
    }
}

impl DstmConfig {
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    pub fn with_cl_threshold(mut self, t: u32) -> Self {
        self.cl_threshold = t;
        self
    }

    pub fn with_txns_per_node(mut self, n: usize) -> Self {
        self.txns_per_node = n;
        self
    }

    pub fn with_concurrency(mut self, c: usize) -> Self {
        self.concurrency_per_node = c;
        self
    }

    pub fn with_queue_backend(mut self, q: QueueBackend) -> Self {
        self.queue_backend = q;
        self
    }

    pub fn with_protocol_trace(mut self, on: bool) -> Self {
        self.trace_protocol = on;
        self
    }

    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        self.epoch = epoch;
        self
    }

    pub fn with_cache(mut self, on: bool) -> Self {
        self.cache = on;
        self
    }

    /// The deadline a requester arms when RTS enqueues it with `backoff`.
    pub fn queue_deadline(&self, backoff: SimDuration) -> SimDuration {
        backoff.mul_ratio(self.queue_deadline_percent, 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = DstmConfig::default()
            .with_scheduler(SchedulerKind::Tfa)
            .with_cl_threshold(7)
            .with_txns_per_node(10)
            .with_concurrency(2);
        assert_eq!(c.scheduler, SchedulerKind::Tfa);
        assert_eq!(c.cl_threshold, 7);
        assert_eq!(c.txns_per_node, 10);
        assert_eq!(c.concurrency_per_node, 2);
    }

    #[test]
    fn queue_backend_parses_and_labels() {
        assert_eq!(QueueBackend::parse("heap"), Some(QueueBackend::BinaryHeap));
        assert_eq!(
            QueueBackend::parse("calendar"),
            Some(QueueBackend::Calendar)
        );
        assert_eq!(QueueBackend::parse("cal"), Some(QueueBackend::Calendar));
        assert_eq!(QueueBackend::parse("bogus"), None);
        assert_eq!(QueueBackend::BinaryHeap.label(), "heap");
        assert_eq!(QueueBackend::Calendar.label(), "calendar");
        assert_eq!(QueueBackend::default(), QueueBackend::BinaryHeap);
    }

    #[test]
    fn telemetry_knobs_default_off() {
        let c = DstmConfig::default();
        assert!(!c.telemetry);
        assert_eq!(c.epoch, SimDuration::from_millis(50));
        let c = c
            .with_telemetry(true)
            .with_epoch(SimDuration::from_millis(20));
        assert!(c.telemetry);
        assert_eq!(c.epoch, SimDuration::from_millis(20));
    }

    #[test]
    fn cache_defaults_off() {
        let c = DstmConfig::default();
        assert!(!c.cache, "cache must be opt-in to keep golden digests");
        assert!(c.with_cache(true).cache);
    }

    #[test]
    fn queue_deadline_scales() {
        let c = DstmConfig {
            queue_deadline_percent: 150,
            ..DstmConfig::default()
        };
        assert_eq!(
            c.queue_deadline(SimDuration::from_millis(100)),
            SimDuration::from_millis(150)
        );
    }
}
