//! The D-STM wire protocol.
//!
//! Five conversations:
//!
//! 1. **Fetch** (`ObjReq` → `ObjResp`, possibly forwarded along the
//!    ownership chain): Algorithm 2's `Open_Object` / Algorithm 3's
//!    `Retrieve_Request`. Requests carry the ETS timestamps and `myCL`;
//!    responses carry the object or a scheduler verdict.
//! 2. **Commit** (`LockReq`/`LockResp`, then `Publish`/`PublishAck` or
//!    `Unlock`): TFA's validation — lock every written object at its owner,
//!    check versions, then publish new versions (moving ownership to the
//!    committer) or roll back.
//! 3. **Version checks** (`VersionCheck` → `VersionResp`): TFA's early
//!    validation during transactional forwarding and read-set validation at
//!    commit.
//! 4. **Queue service** (`ObjResp` pushed to enqueued requesters on
//!    release; `ObjectDecline` when the requester has moved on) —
//!    Algorithm 4's `Retrieve_Response`.
//! 5. **Workload** (`StartWorkload`) — kicks off each node's transaction
//!    supply at time zero.

use crate::object::Payload;
use crate::small::Fnv64;
use dstm_sim::SimDuration;
use rts_core::{Ets, ObjectId, TxId};
use std::sync::Arc;

use crate::program::AccessMode;

/// Outcome of a fetch, carried in [`Msg::ObjResp`].
#[derive(Clone, Debug)]
pub enum FetchResult {
    /// The object copy, its version, the owner-side local CL of the object
    /// (folded into the requester's `myCL`), and the current owner (to heal
    /// the requester's owner cache). The payload is shared (`Arc`): granting
    /// a copy is a pointer bump, not a deep clone (copy-on-write discipline —
    /// writers replace payloads, never mutate them in place).
    Granted {
        payload: Arc<Payload>,
        version: u64,
        local_cl: u32,
        owner: u32,
        /// The owner's TFA clock at grant time. Stored alongside the payload
        /// by caching requesters (`DstmConfig::cache`): a later open may
        /// reuse the copy without any message while the requester's own
        /// clock has not passed this value.
        owner_clock: u64,
    },
    /// The object is being validated and the scheduler decided against this
    /// requester. `enqueued == true` is the RTS path: stay live and wait up
    /// to `backoff` for the object; `enqueued == false` aborts now and
    /// retries after `backoff` (zero for plain TFA).
    Conflict {
        backoff: SimDuration,
        enqueued: bool,
        owner: u32,
        /// The transaction holding the object's lock when the conflict was
        /// adjudicated — the aggressor for abort attribution. `None` when
        /// the verdict was produced without a live lock holder (e.g. a
        /// child-scope early return before the owner resolved one).
        aggressor: Option<TxId>,
    },
}

/// Protocol messages between TM proxies.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Request `oid` (Algorithm 2 sends "oid, txid, myCL, and ETS").
    ObjReq {
        oid: ObjectId,
        tx: TxId,
        attempt: u32,
        mode: AccessMode,
        ets: Ets,
        my_cl: u32,
        /// Whether the request was issued inside a closed-nested child. The
        /// scheduler only adjudicates parent-level requests (§III-A: RTS
        /// acts on "a losing parent transaction"); child-level conflicts
        /// are ordinary closed-nesting retries.
        nested: bool,
        /// The node the response must go to (stable under forwarding).
        reply_to: u32,
    },
    /// Response to a fetch, or a queue-service push on release.
    ObjResp {
        oid: ObjectId,
        tx: TxId,
        attempt: u32,
        result: FetchResult,
    },
    /// The requester no longer wants a pushed object (it aborted/retried in
    /// the meantime); the owner should serve the next queued requester.
    ObjectDecline { oid: ObjectId, tx: TxId },

    /// Cache revalidation (`DstmConfig::cache`): an `ObjReq` that names the
    /// version the requester already holds. Forwarded along the ownership
    /// chain exactly like `ObjReq`; the owner answers with a payload-free
    /// [`Msg::VersionAck`] when the copy is still current and unlocked, and
    /// otherwise falls back to the full fetch path (so a stale cache never
    /// costs an extra round trip).
    VersionReq {
        oid: ObjectId,
        tx: TxId,
        attempt: u32,
        mode: AccessMode,
        ets: Ets,
        my_cl: u32,
        nested: bool,
        reply_to: u32,
        /// Version of the requester's cached copy.
        version: u64,
    },
    /// Positive answer to [`Msg::VersionReq`]: the cached copy is current.
    /// Carries everything a `Granted` does except the payload.
    VersionAck {
        oid: ObjectId,
        tx: TxId,
        attempt: u32,
        version: u64,
        local_cl: u32,
        owner: u32,
        owner_clock: u64,
    },

    /// Commit step 1: lock `oid` at its owner if `expect_version` is still
    /// current.
    LockReq {
        oid: ObjectId,
        tx: TxId,
        attempt: u32,
        expect_version: u64,
        reply_to: u32,
    },
    LockResp {
        oid: ObjectId,
        tx: TxId,
        attempt: u32,
        granted: bool,
    },
    /// Commit abandoned: release a previously granted lock.
    Unlock { oid: ObjectId, tx: TxId },
    /// Commit step 2: install the new version; ownership moves to
    /// `new_owner` (the committer). The old owner replies with the object's
    /// queued requesters so the queue follows the object.
    Publish {
        oid: ObjectId,
        tx: TxId,
        payload: Arc<Payload>,
        new_version: u64,
        new_owner: u32,
    },
    /// Ack of `Publish`, carrying the handed-off requester queue.
    PublishAck {
        oid: ObjectId,
        tx: TxId,
        queue: Vec<rts_core::Requester>,
    },

    /// Early/commit validation: is `expect_version` still the current
    /// version of `oid`? (A moved object means an intervening write commit,
    /// hence stale.)
    VersionCheck {
        oid: ObjectId,
        tx: TxId,
        attempt: u32,
        expect_version: u64,
        reply_to: u32,
    },
    VersionResp {
        oid: ObjectId,
        tx: TxId,
        attempt: u32,
        ok: bool,
    },

    /// Bootstrap: start issuing this node's transactions.
    StartWorkload,

    /// Transport-level coalescing (`DstmConfig::cache`): every message one
    /// node sends to one neighbor with the same departure tick and latency,
    /// folded into a single DES event. The receiver unpacks in order, so
    /// the protocol history is identical to k separate deliveries; only the
    /// event count (and the kernel's delivered-message tally) shrinks.
    Batch(Vec<Msg>),
}

/// Node-local timers.
#[derive(Clone, Debug)]
pub enum Timer {
    /// A `Compute(d)` step finished for this transaction.
    ComputeDone { tx: TxId, attempt: u32 },
    /// An RTS queue-wait deadline expired before the object arrived:
    /// abort and re-request (Algorithm 2 lines 9–15).
    QueueDeadline {
        tx: TxId,
        attempt: u32,
        oid: ObjectId,
    },
    /// A TFA+Backoff retry delay elapsed: restart the transaction.
    RetryBackoff { tx: TxId, attempt: u32 },
}

impl Msg {
    /// Short tag for traces.
    pub fn tag(&self) -> &'static str {
        match self {
            Msg::ObjReq { .. } => "ObjReq",
            Msg::ObjResp { .. } => "ObjResp",
            Msg::ObjectDecline { .. } => "ObjectDecline",
            Msg::LockReq { .. } => "LockReq",
            Msg::LockResp { .. } => "LockResp",
            Msg::Unlock { .. } => "Unlock",
            Msg::Publish { .. } => "Publish",
            Msg::PublishAck { .. } => "PublishAck",
            Msg::VersionCheck { .. } => "VersionCheck",
            Msg::VersionResp { .. } => "VersionResp",
            Msg::VersionReq { .. } => "VersionReq",
            Msg::VersionAck { .. } => "VersionAck",
            Msg::StartWorkload => "StartWorkload",
            Msg::Batch(_) => "Batch",
        }
    }

    /// Fold this message into a **time-abstract** structural fingerprint.
    ///
    /// Used by the model checker to deduplicate protocol states: two
    /// in-flight messages that differ only in wall-clock-valued fields
    /// ([`Ets`] deadlines, backoff durations) are the same protocol event
    /// under a different schedule, so those fields are deliberately
    /// excluded. Logical TFA clocks (`my_cl`, `local_cl`, `owner_clock`)
    /// and versions *are* protocol state and are included.
    pub fn hash_into(&self, h: &mut Fnv64) {
        fn tx_into(h: &mut Fnv64, tx: &TxId, attempt: u32) {
            h.write_u64(u64::from(tx.node));
            h.write_u64(tx.seq);
            h.write_u64(u64::from(attempt));
        }
        h.write_bytes(self.tag().as_bytes());
        match self {
            Msg::ObjReq {
                oid,
                tx,
                attempt,
                mode,
                ets: _,
                my_cl,
                nested,
                reply_to,
            } => {
                h.write_u64(oid.0);
                tx_into(h, tx, *attempt);
                h.write_u8(matches!(mode, AccessMode::Write) as u8);
                h.write_u64(u64::from(*my_cl));
                h.write_u8(u8::from(*nested));
                h.write_u64(u64::from(*reply_to));
            }
            Msg::ObjResp {
                oid,
                tx,
                attempt,
                result,
            } => {
                h.write_u64(oid.0);
                tx_into(h, tx, *attempt);
                match result {
                    FetchResult::Granted {
                        payload,
                        version,
                        local_cl,
                        owner,
                        owner_clock,
                    } => {
                        h.write_u8(1);
                        payload.hash_into(h);
                        h.write_u64(*version);
                        h.write_u64(u64::from(*local_cl));
                        h.write_u64(u64::from(*owner));
                        h.write_u64(*owner_clock);
                    }
                    FetchResult::Conflict {
                        backoff: _,
                        enqueued,
                        owner,
                        aggressor,
                    } => {
                        h.write_u8(2);
                        h.write_u8(u8::from(*enqueued));
                        h.write_u64(u64::from(*owner));
                        match aggressor {
                            Some(a) => tx_into(h, a, 0),
                            None => h.write_u8(0),
                        }
                    }
                }
            }
            Msg::ObjectDecline { oid, tx } => {
                h.write_u64(oid.0);
                tx_into(h, tx, 0);
            }
            Msg::VersionReq {
                oid,
                tx,
                attempt,
                mode,
                ets: _,
                my_cl,
                nested,
                reply_to,
                version,
            } => {
                h.write_u64(oid.0);
                tx_into(h, tx, *attempt);
                h.write_u8(matches!(mode, AccessMode::Write) as u8);
                h.write_u64(u64::from(*my_cl));
                h.write_u8(u8::from(*nested));
                h.write_u64(u64::from(*reply_to));
                h.write_u64(*version);
            }
            Msg::VersionAck {
                oid,
                tx,
                attempt,
                version,
                local_cl,
                owner,
                owner_clock,
            } => {
                h.write_u64(oid.0);
                tx_into(h, tx, *attempt);
                h.write_u64(*version);
                h.write_u64(u64::from(*local_cl));
                h.write_u64(u64::from(*owner));
                h.write_u64(*owner_clock);
            }
            Msg::LockReq {
                oid,
                tx,
                attempt,
                expect_version,
                reply_to,
            } => {
                h.write_u64(oid.0);
                tx_into(h, tx, *attempt);
                h.write_u64(*expect_version);
                h.write_u64(u64::from(*reply_to));
            }
            Msg::LockResp {
                oid,
                tx,
                attempt,
                granted,
            } => {
                h.write_u64(oid.0);
                tx_into(h, tx, *attempt);
                h.write_u8(u8::from(*granted));
            }
            Msg::Unlock { oid, tx } => {
                h.write_u64(oid.0);
                tx_into(h, tx, 0);
            }
            Msg::Publish {
                oid,
                tx,
                payload,
                new_version,
                new_owner,
            } => {
                h.write_u64(oid.0);
                tx_into(h, tx, 0);
                payload.hash_into(h);
                h.write_u64(*new_version);
                h.write_u64(u64::from(*new_owner));
            }
            Msg::PublishAck { oid, tx, queue } => {
                h.write_u64(oid.0);
                tx_into(h, tx, 0);
                h.write_u64(queue.len() as u64);
                for r in queue {
                    h.write_u64(u64::from(r.node));
                    tx_into(h, &r.tx, r.attempt);
                    h.write_u8(u8::from(r.read_only));
                }
            }
            Msg::VersionCheck {
                oid,
                tx,
                attempt,
                expect_version,
                reply_to,
            } => {
                h.write_u64(oid.0);
                tx_into(h, tx, *attempt);
                h.write_u64(*expect_version);
                h.write_u64(u64::from(*reply_to));
            }
            Msg::VersionResp {
                oid,
                tx,
                attempt,
                ok,
            } => {
                h.write_u64(oid.0);
                tx_into(h, tx, *attempt);
                h.write_u8(u8::from(*ok));
            }
            Msg::StartWorkload => {}
            Msg::Batch(msgs) => {
                h.write_u64(msgs.len() as u64);
                for m in msgs {
                    m.hash_into(h);
                }
            }
        }
    }
}

impl Timer {
    /// Time-abstract fingerprint companion to [`Msg::hash_into`].
    pub fn hash_into(&self, h: &mut Fnv64) {
        let (tag, tx, attempt, oid) = match self {
            Timer::ComputeDone { tx, attempt } => (1u8, tx, *attempt, None),
            Timer::QueueDeadline { tx, attempt, oid } => (2, tx, *attempt, Some(*oid)),
            Timer::RetryBackoff { tx, attempt } => (3, tx, *attempt, None),
        };
        h.write_u8(tag);
        h.write_u64(u64::from(tx.node));
        h.write_u64(tx.seq);
        h.write_u64(u64::from(attempt));
        if let Some(oid) = oid {
            h.write_u64(oid.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_cover_all_variants() {
        let m = Msg::ObjectDecline {
            oid: ObjectId(1),
            tx: TxId::new(0, 1),
        };
        assert_eq!(m.tag(), "ObjectDecline");
        assert_eq!(Msg::StartWorkload.tag(), "StartWorkload");
        assert_eq!(Msg::Batch(Vec::new()).tag(), "Batch");
    }
}
