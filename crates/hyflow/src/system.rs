//! System assembly: topology + configuration + objects + workload → a
//! runnable [`World`] of [`Node`]s, plus end-of-run aggregation.

use crate::config::DstmConfig;
use crate::message::{Msg, Timer};
use crate::metrics::{NodeMetrics, RunMetrics};
use crate::node::Node;
use crate::object::Payload;
use crate::program::BoxedProgram;
use crate::trace::TraceLog;
use dstm_net::Topology;
use dstm_sim::{
    ActorId, BinaryHeapQueue, EventQueue, GenericWorld, KernelEvent, Partition, ShardRunStats,
    SimDuration, SimTime,
};
use rts_core::{build_policy, ObjectId, RtsPolicy, ThresholdController};
use std::collections::HashMap;
use std::sync::Arc;

/// The kernel event type of a D-STM world (what a queue backend must hold).
pub type NodeEvent = KernelEvent<Msg, Timer>;

/// How [`System::run_sharded_with`] assigns nodes to executor shards.
///
/// Either way the run is bit-identical to serial — the partition is purely
/// a performance knob (it decides which messages cross shards and therefore
/// how wide the conservative windows can be).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// `node i → shard i % S`. Ignores the workload; the PR-4 default.
    #[default]
    RoundRobin,
    /// Deterministic greedy co-location of object homes with their heaviest
    /// requesters, seeded from the static program access profile
    /// ([`crate::program::TxProgram::access_hint`]) and balance-capped at
    /// +10% actors per shard so a locality-hungry split cannot starve a
    /// shard (the competitive-analysis constraint).
    Locality,
}

impl PartitionStrategy {
    /// Stable name used by CLI flags and bench-row labels.
    pub fn label(self) -> &'static str {
        match self {
            PartitionStrategy::RoundRobin => "round-robin",
            PartitionStrategy::Locality => "locality",
        }
    }

    /// Parse a CLI/env spelling (`round-robin`/`rr`, `locality`/`loc`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "round-robin" | "roundrobin" | "rr" => Some(PartitionStrategy::RoundRobin),
            "locality" | "loc" => Some(PartitionStrategy::Locality),
            _ => None,
        }
    }
}

/// Greedy balanced graph partitioning over the access-affinity adjacency
/// (`affinity[i]` = sorted `(neighbour, weight)` list, symmetric). Nodes are
/// placed in descending order of total affinity (heaviest talkers first,
/// ties by id); each lands on the shard it has the most already-placed
/// affinity with, among shards still under the +10% balance cap; nodes with
/// no placed affinity go to the least-loaded shard. Entirely deterministic.
fn locality_partition(affinity: &[Vec<(u32, u64)>], shards: usize) -> Vec<u32> {
    let n = affinity.len();
    // +10% over a perfectly even split, and never below ⌈n/S⌉ so a
    // feasible shard always exists.
    let cap = (n * 11).div_ceil(shards * 10).max(1);
    let total: Vec<u64> = affinity
        .iter()
        .map(|adj| adj.iter().map(|&(_, w)| w).sum())
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(total[i]), i));
    let mut assign = vec![u32::MAX; n];
    let mut counts = vec![0usize; shards];
    let mut score = vec![0u64; shards];
    for &i in &order {
        score.iter_mut().for_each(|s| *s = 0);
        for &(nb, w) in &affinity[i] {
            let a = assign[nb as usize];
            if a != u32::MAX {
                score[a as usize] += w;
            }
        }
        let mut best: Option<usize> = None;
        for s in 0..shards {
            if counts[s] >= cap {
                continue;
            }
            // Strictly-greater keeps the lowest shard id on full ties;
            // `Reverse(counts)` prefers the emptier shard at equal score,
            // which is also the zero-affinity fallback.
            let better = match best {
                None => true,
                Some(b) => {
                    (score[s], std::cmp::Reverse(counts[s]))
                        > (score[b], std::cmp::Reverse(counts[b]))
                }
            };
            if better {
                best = Some(s);
            }
        }
        let s = best.expect("cap × shards ≥ n, so an open shard exists");
        assign[i] = s as u32;
        counts[s] += 1;
    }
    assign
}

/// Where a system gets its shared objects and transactions.
///
/// `objects` are placed at their **home node** (`ObjectId::home`), which is
/// how every node's owner cache is implicitly seeded. `programs[i]` is the
/// transaction queue of node `i`.
pub struct WorkloadSource {
    pub objects: Vec<(ObjectId, Payload)>,
    pub programs: Vec<Vec<BoxedProgram>>,
}

/// Builder for a complete simulated D-STM deployment.
pub struct SystemBuilder {
    topo: Arc<Topology>,
    cfg: DstmConfig,
    seed: u64,
}

impl SystemBuilder {
    pub fn new(topo: Topology, cfg: DstmConfig) -> Self {
        SystemBuilder {
            topo: Arc::new(topo),
            cfg,
            seed: 0x5EED,
        }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Assemble the world on the default binary-heap event queue. Panics if
    /// `programs` does not match the node count or if an object is homed
    /// outside the node range.
    pub fn build(self, workload: WorkloadSource) -> System {
        self.build_with_queue(workload, BinaryHeapQueue::new())
    }

    /// Assemble the world on an explicit event-queue backend (the schedule —
    /// and therefore every metric — is bit-identical across backends; only
    /// host wall-clock differs).
    pub fn build_with_queue<Q: EventQueue<NodeEvent>>(
        self,
        workload: WorkloadSource,
        queue: Q,
    ) -> System<Q> {
        let n = self.topo.n();
        assert_eq!(
            workload.programs.len(),
            n,
            "one program queue per node required"
        );
        let cfg = Arc::new(self.cfg);

        // Static access profile for the locality partitioner: every hinted
        // access is an affinity edge between the requesting node and the
        // object's home node. Collected here, while the pristine programs
        // are still in hand; self-edges carry no partitioning information
        // and are dropped.
        let mut edges: HashMap<(u32, u32), u64> = HashMap::new();
        let mut hint: Vec<ObjectId> = Vec::new();
        for (i, queue) in workload.programs.iter().enumerate() {
            for prog in queue {
                hint.clear();
                prog.access_hint(&mut hint);
                for oid in hint.drain(..) {
                    let h = oid.home(n);
                    let i = i as u32;
                    if h != i {
                        *edges.entry((i.min(h), i.max(h))).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut sorted_edges: Vec<((u32, u32), u64)> = edges.into_iter().collect();
        sorted_edges.sort_unstable();
        let mut affinity: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for ((a, b), w) in sorted_edges {
            affinity[a as usize].push((b, w));
            affinity[b as usize].push((a, w));
        }

        // Partition objects to their home nodes.
        let mut per_node: Vec<Vec<(ObjectId, Payload)>> = (0..n).map(|_| Vec::new()).collect();
        for (oid, payload) in workload.objects {
            per_node[oid.home(n) as usize].push((oid, payload));
        }

        let mut programs = workload.programs;
        let nodes: Vec<Node> = (0..n)
            .map(|i| {
                let policy =
                    if cfg.adaptive_threshold && cfg.scheduler == rts_core::SchedulerKind::Rts {
                        Box::new(RtsPolicy::new(ThresholdController::adaptive(
                            cfg.cl_threshold,
                            1,
                            cfg.cl_threshold * 4,
                            SimDuration::from_millis(500),
                        ))) as Box<dyn rts_core::ConflictPolicy>
                    } else {
                        build_policy(cfg.scheduler, cfg.backoff_base, cfg.cl_threshold)
                    };
                Node::new(
                    i as u32,
                    Arc::clone(&self.topo),
                    Arc::clone(&cfg),
                    policy,
                    std::mem::take(&mut per_node[i]),
                    std::mem::take(&mut programs[i]),
                )
            })
            .collect();

        let mut world = GenericWorld::with_queue(nodes, self.seed, queue);
        for i in 0..n {
            world.send_external(ActorId(i as u32), Msg::StartWorkload, SimDuration::ZERO);
        }
        System {
            world,
            topo: self.topo,
            affinity,
            shard_stats: None,
        }
    }
}

/// A runnable deployment, generic over the kernel's event-queue backend
/// (defaults to the binary heap so existing `System` call sites are
/// unchanged).
pub struct System<Q = BinaryHeapQueue<NodeEvent>> {
    world: GenericWorld<Node, Q>,
    topo: Arc<Topology>,
    /// Symmetric requester↔home affinity adjacency from the static access
    /// profile (input to [`PartitionStrategy::Locality`]).
    affinity: Vec<Vec<(u32, u64)>>,
    /// Executor statistics of the most recent sharded run, if any.
    shard_stats: Option<ShardRunStats>,
}

impl<Q: EventQueue<NodeEvent>> System<Q> {
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn world(&self) -> &GenericWorld<Node, Q> {
        &self.world
    }

    pub fn world_mut(&mut self) -> &mut GenericWorld<Node, Q> {
        &mut self.world
    }

    /// Drive the system to **quiescence**: every event is processed until
    /// the queue drains (or the runaway `event_budget` backstop trips).
    /// Returns the aggregated run metrics.
    ///
    /// All protocol timers are one-shot and the workload is finite, so a
    /// run always drains shortly after the last node finishes; quiescence
    /// is — unlike "stop at the event that completed the last node" — the
    /// *same* stop point the sharded executor reaches, which is what makes
    /// [`run_sharded`](Self::run_sharded) bit-identical to this method.
    /// The makespan reported in the metrics still ends at the last commit,
    /// not at the drain: see [`collect`](Self::collect).
    pub fn run(&mut self, event_budget: u64) -> RunMetrics {
        let started_at = self.world.now();
        self.world.run_while(event_budget, |_| true);
        self.collect(started_at)
    }

    /// Like [`run`](Self::run), but executes on `shards` threads using the
    /// kernel's conservative time-windowed parallel executor with round-robin
    /// partitioning. The outcome — metrics, histograms, object state,
    /// protocol traces — is bit-identical to the serial `run` for every
    /// shard count. Shorthand for [`run_sharded_with`](Self::run_sharded_with)
    /// with [`PartitionStrategy::RoundRobin`].
    pub fn run_sharded(&mut self, event_budget: u64, shards: usize) -> RunMetrics
    where
        Q: Default + Send,
    {
        self.run_sharded_with(event_budget, shards, PartitionStrategy::RoundRobin)
    }

    /// [`run_sharded`](Self::run_sharded) with an explicit partitioning
    /// strategy. The lookahead is the topology's per-shard-pair minimum
    /// cross-delay matrix ([`Topology::cross_min_delay`]) — every pair's
    /// window is at least as wide as the old fleet-wide `min_delay` window,
    /// and far wider wherever the partition keeps chatty nodes together.
    /// Executor statistics (per-shard event counts, barrier-wait ns) are
    /// retained and readable via [`shard_stats`](Self::shard_stats).
    pub fn run_sharded_with(
        &mut self,
        event_budget: u64,
        shards: usize,
        strategy: PartitionStrategy,
    ) -> RunMetrics
    where
        Q: Default + Send,
    {
        let started_at = self.world.now();
        let part = self.partition_for(strategy, shards);
        let lookahead = self.topo.cross_min_delay(part.shard_of(), part.shards());
        let stats = self.world.run_partitioned(part, &lookahead, event_budget);
        self.shard_stats = Some(stats);
        self.collect(started_at)
    }

    /// The node→shard assignment a sharded run with this strategy would
    /// use (shard count clamped to the node count). Exposed so tests and
    /// the harness can audit partition balance without running anything.
    pub fn partition_for(&self, strategy: PartitionStrategy, shards: usize) -> Partition {
        let n = self.topo.n();
        let s = shards.clamp(1, n.max(1));
        match strategy {
            PartitionStrategy::RoundRobin => Partition::round_robin(n, s),
            PartitionStrategy::Locality => {
                Partition::from_assignment(locality_partition(&self.affinity, s), s)
            }
        }
    }

    /// Executor statistics of the most recent sharded run (`None` until one
    /// happens): per-shard event counts and per-shard barrier-wait time.
    pub fn shard_stats(&self) -> Option<&ShardRunStats> {
        self.shard_stats.as_ref()
    }

    fn collect(&self, started_at: SimTime) -> RunMetrics {
        // The run executes to quiescence, but the makespan the figures
        // divide throughput by ends at the last *commit* — the trailing
        // in-flight replies and stale retry timers that drain afterwards
        // are not useful work (RTS in particular leaves long retry timers
        // pending, and counting them would understate its throughput by
        // several-fold). Each node records its own completion time, so the
        // max is identical under serial and sharded execution even though
        // the two drain the tail in different orders. An incomplete run
        // (budget backstop tripped) has no last commit; fall back to the
        // stop time.
        let ended_at = self
            .world
            .actors()
            .iter()
            .map(|n| n.done_at())
            .try_fold(SimTime::ZERO, |acc, t| t.map(|t| acc.max(t)))
            .unwrap_or_else(|| self.world.now());
        let mut merged = NodeMetrics::default();
        for node in self.world.actors() {
            merged.merge(&node.metrics);
        }
        RunMetrics {
            nodes: self.topo.n(),
            merged,
            elapsed: ended_at.saturating_since(started_at),
            messages: self.world.messages_delivered(),
            started_at,
            ended_at,
        }
    }

    /// Run with a default event budget generous enough for the harness
    /// workloads (≈50k events per transaction).
    pub fn run_default(&mut self) -> RunMetrics {
        self.run(self.default_budget())
    }

    /// [`run_sharded`](Self::run_sharded) with the same default event budget
    /// as [`run_default`](Self::run_default).
    pub fn run_sharded_default(&mut self, shards: usize) -> RunMetrics
    where
        Q: Default + Send,
    {
        self.run_sharded(self.default_budget(), shards)
    }

    /// [`run_sharded_with`](Self::run_sharded_with) with the default budget.
    pub fn run_sharded_default_with(
        &mut self,
        shards: usize,
        strategy: PartitionStrategy,
    ) -> RunMetrics
    where
        Q: Default + Send,
    {
        self.run_sharded_with(self.default_budget(), shards, strategy)
    }

    fn default_budget(&self) -> u64 {
        let total_txns: usize = self.world.actors().iter().map(|n| n.backlog()).sum();
        (total_txns as u64 + 16) * 50_000
    }

    /// Whether every node finished its workload.
    pub fn all_done(&self) -> bool {
        self.world.actors().iter().all(|n| n.done())
    }

    /// Snapshot of the current committed state of every object in the
    /// system (owner-held authoritative copies), for invariant checks.
    pub fn object_state(&self) -> HashMap<ObjectId, (Payload, u64)> {
        match self.try_object_state() {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`System::object_state`] for the verification
    /// harness: a double-owned object is reported as a violation string
    /// instead of a panic, so the fuzzer/checker can record it as a finding
    /// (and shrink the schedule that produced it).
    pub fn try_object_state(&self) -> Result<HashMap<ObjectId, (Payload, u64)>, String> {
        let mut out = HashMap::new();
        for node in self.world.actors() {
            for (oid, o) in node.owned_objects() {
                let prev = out.insert(*oid, ((*o.payload).clone(), o.version));
                if prev.is_some() {
                    return Err(format!(
                        "single-writable-copy violated: {oid:?} owned twice \
                         (second owner: node {})",
                        node.id()
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Virtual time now.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Drain every node's protocol-event stream into one time-ordered
    /// [`TraceLog`] (empty unless the run was built with
    /// `DstmConfig::trace_protocol`). Call after `run`.
    pub fn take_trace(&mut self) -> TraceLog {
        let streams = self
            .world
            .actors_mut()
            .iter_mut()
            .map(|n| n.take_trace())
            .collect();
        TraceLog::from_node_streams(streams)
    }

    /// Drain every node's telemetry (empty unless the run was built with
    /// `DstmConfig::telemetry`), closing each node's final partial epoch at
    /// the current virtual time. Call after `run`; one report per node, in
    /// node order.
    pub fn take_telemetry(&mut self) -> Vec<crate::telemetry::TelemetryReport> {
        let now = self.world.now();
        self.world
            .actors_mut()
            .iter_mut()
            .map(|n| n.take_telemetry(now))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{nested_increments, ScriptOp, ScriptProgram};
    use dstm_sim::SimRng;
    use rts_core::{SchedulerKind, TxKind};

    fn single_node_system(
        programs: Vec<BoxedProgram>,
        objects: Vec<(ObjectId, Payload)>,
    ) -> System {
        let topo = Topology::complete(1, 1);
        let cfg = DstmConfig::default().with_scheduler(SchedulerKind::Tfa);
        SystemBuilder::new(topo, cfg).build(WorkloadSource {
            objects,
            programs: vec![programs],
        })
    }

    #[test]
    fn single_node_single_tx_commits() {
        let p = ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::Write(ObjectId(1)),
                ScriptOp::AddScalar(ObjectId(1), 5),
            ],
        );
        let mut sys =
            single_node_system(vec![Box::new(p)], vec![(ObjectId(1), Payload::Scalar(10))]);
        let m = sys.run(100_000);
        assert!(sys.all_done());
        assert_eq!(m.merged.commits, 1);
        assert_eq!(m.merged.total_aborts(), 0);
        let state = sys.object_state();
        assert_eq!(state[&ObjectId(1)].0, Payload::Scalar(15));
        assert!(state[&ObjectId(1)].1 > 0, "version bumped by the commit");
    }

    #[test]
    fn nested_commit_merges_and_publishes() {
        let p = nested_increments(TxKind(1), TxKind(2), &[ObjectId(1), ObjectId(2)]);
        let mut sys = single_node_system(
            vec![Box::new(p)],
            vec![
                (ObjectId(1), Payload::Scalar(0)),
                (ObjectId(2), Payload::Scalar(7)),
            ],
        );
        let m = sys.run(100_000);
        assert!(sys.all_done());
        assert_eq!(m.merged.commits, 1);
        assert_eq!(m.merged.nested_commits, 2);
        let state = sys.object_state();
        assert_eq!(state[&ObjectId(1)].0, Payload::Scalar(1));
        assert_eq!(state[&ObjectId(2)].0, Payload::Scalar(8));
    }

    #[test]
    fn two_node_remote_fetch_moves_ownership() {
        // One object, homed somewhere; a writer on each node increments it
        // twice; total must be 4 regardless of schedule.
        let oid = ObjectId(9);
        let topo = Topology::complete(2, 5);
        let cfg = DstmConfig::default()
            .with_scheduler(SchedulerKind::Tfa)
            .with_concurrency(1);
        let mk = || -> BoxedProgram {
            Box::new(ScriptProgram::new(
                TxKind(1),
                vec![ScriptOp::Write(oid), ScriptOp::AddScalar(oid, 1)],
            ))
        };
        let mut sys = SystemBuilder::new(topo, cfg).build(WorkloadSource {
            objects: vec![(oid, Payload::Scalar(0))],
            programs: vec![vec![mk(), mk()], vec![mk(), mk()]],
        });
        let m = sys.run(1_000_000);
        assert!(sys.all_done(), "system stalled");
        assert_eq!(m.merged.commits, 4);
        let state = sys.object_state();
        assert_eq!(
            state[&oid].0,
            Payload::Scalar(4),
            "increments must serialize"
        );
    }

    #[test]
    fn contended_counter_is_linearizable_under_all_schedulers() {
        // 4 nodes × 5 increments of one shared counter each, under each
        // scheduler: the final value must always be exactly 20.
        for scheduler in [
            SchedulerKind::Tfa,
            SchedulerKind::TfaBackoff,
            SchedulerKind::Rts,
        ] {
            let oid = ObjectId(1);
            let mut rng = SimRng::new(7);
            let topo = Topology::uniform_random(4, 1, 10, &mut rng);
            let cfg = DstmConfig::default()
                .with_scheduler(scheduler)
                .with_concurrency(2);
            let mk = || -> BoxedProgram {
                Box::new(ScriptProgram::new(
                    TxKind(1),
                    vec![
                        ScriptOp::Write(oid),
                        ScriptOp::AddScalar(oid, 1),
                        ScriptOp::Compute(SimDuration::from_micros(100)),
                    ],
                ))
            };
            let programs: Vec<Vec<BoxedProgram>> =
                (0..4).map(|_| (0..5).map(|_| mk()).collect()).collect();
            let mut sys = SystemBuilder::new(topo, cfg)
                .seed(99)
                .build(WorkloadSource {
                    objects: vec![(oid, Payload::Scalar(0))],
                    programs,
                });
            let m = sys.run(5_000_000);
            assert!(sys.all_done(), "{scheduler:?} run stalled");
            assert_eq!(m.merged.commits, 20, "{scheduler:?} lost commits");
            let state = sys.object_state();
            assert_eq!(
                state[&oid].0,
                Payload::Scalar(20),
                "{scheduler:?} violated serializability"
            );
        }
    }

    #[test]
    fn queue_backends_produce_identical_runs() {
        // The same contended multi-node workload on the heap-backed and
        // calendar-backed kernels must produce bit-identical metrics: same
        // commits, same message count, same virtual end time.
        use dstm_sim::CalendarQueue;

        fn build_cfg() -> (Topology, DstmConfig, WorkloadSource) {
            let oid = ObjectId(1);
            let mut rng = SimRng::new(41);
            let topo = Topology::uniform_random(3, 1, 20, &mut rng);
            let cfg = DstmConfig::default()
                .with_scheduler(SchedulerKind::Rts)
                .with_concurrency(2);
            let mk = || -> BoxedProgram {
                Box::new(ScriptProgram::new(
                    TxKind(1),
                    vec![
                        ScriptOp::Write(oid),
                        ScriptOp::AddScalar(oid, 1),
                        ScriptOp::Compute(SimDuration::from_micros(250)),
                    ],
                ))
            };
            let programs = (0..3).map(|_| (0..4).map(|_| mk()).collect()).collect();
            let workload = WorkloadSource {
                objects: vec![(oid, Payload::Scalar(0))],
                programs,
            };
            (topo, cfg, workload)
        }

        let (topo, cfg, workload) = build_cfg();
        let mut heap_sys = SystemBuilder::new(topo, cfg).seed(17).build(workload);
        let heap = heap_sys.run(5_000_000);
        assert!(heap_sys.all_done());

        let (topo, cfg, workload) = build_cfg();
        let mut cal_sys = SystemBuilder::new(topo, cfg)
            .seed(17)
            .build_with_queue(workload, CalendarQueue::new());
        let cal = cal_sys.run(5_000_000);
        assert!(cal_sys.all_done());

        assert_eq!(heap.merged.commits, cal.merged.commits);
        assert_eq!(heap.merged.total_aborts(), cal.merged.total_aborts());
        assert_eq!(heap.messages, cal.messages);
        assert_eq!(heap.ended_at, cal.ended_at);
        assert_eq!(heap_sys.object_state(), cal_sys.object_state());
    }

    #[test]
    fn sharded_run_is_bit_identical_to_serial() {
        // Contended multi-node workload: the conservative windowed executor
        // must reproduce the serial run exactly, for every shard count.
        fn build() -> System {
            let oid = ObjectId(1);
            let mut rng = SimRng::new(23);
            let topo = Topology::uniform_random(6, 1, 20, &mut rng);
            let cfg = DstmConfig::default()
                .with_scheduler(SchedulerKind::Rts)
                .with_concurrency(2);
            let mk = || -> BoxedProgram {
                Box::new(ScriptProgram::new(
                    TxKind(1),
                    vec![
                        ScriptOp::Write(oid),
                        ScriptOp::AddScalar(oid, 1),
                        ScriptOp::Compute(SimDuration::from_micros(250)),
                    ],
                ))
            };
            let programs = (0..6).map(|_| (0..3).map(|_| mk()).collect()).collect();
            SystemBuilder::new(topo, cfg)
                .seed(17)
                .build(WorkloadSource {
                    objects: vec![(ObjectId(1), Payload::Scalar(0))],
                    programs,
                })
        }

        let mut serial = build();
        let want = serial.run(5_000_000);
        assert!(serial.all_done());
        for strategy in [PartitionStrategy::RoundRobin, PartitionStrategy::Locality] {
            for shards in [1, 2, 4, 8] {
                let mut sys = build();
                let got = sys.run_sharded_with(5_000_000, shards, strategy);
                assert!(sys.all_done(), "sharded({shards}, {strategy:?}) stalled");
                assert_eq!(
                    got.merged, want.merged,
                    "metrics diverged at {shards} ({strategy:?})"
                );
                assert_eq!(got.messages, want.messages);
                assert_eq!(got.ended_at, want.ended_at);
                assert_eq!(sys.object_state(), serial.object_state());
                let stats = sys.shard_stats().expect("sharded run records stats");
                assert_eq!(
                    stats.shard_events.iter().sum::<u64>(),
                    stats.steps,
                    "per-shard events must sum to the total"
                );
            }
        }
    }

    #[test]
    fn partition_strategy_names_round_trip() {
        for s in [PartitionStrategy::RoundRobin, PartitionStrategy::Locality] {
            assert_eq!(PartitionStrategy::from_name(s.label()), Some(s));
        }
        assert_eq!(
            PartitionStrategy::from_name("rr"),
            Some(PartitionStrategy::RoundRobin)
        );
        assert_eq!(
            PartitionStrategy::from_name("loc"),
            Some(PartitionStrategy::Locality)
        );
        assert_eq!(PartitionStrategy::from_name("metis"), None);
    }

    #[test]
    fn locality_partition_balances_and_co_locates() {
        // Two chatty cliques {0,1,2} and {3,4,5} plus two silent nodes.
        // The partitioner must keep each clique together and still respect
        // the +10% cap (here: 8 nodes / 2 shards → cap 5).
        let mut affinity: Vec<Vec<(u32, u64)>> = vec![Vec::new(); 8];
        let mut link = |a: u32, b: u32, w: u64| {
            affinity[a as usize].push((b, w));
            affinity[b as usize].push((a, w));
        };
        for &(a, b) in &[(0, 1), (0, 2), (1, 2)] {
            link(a, b, 10);
        }
        for &(a, b) in &[(3, 4), (3, 5), (4, 5)] {
            link(a, b, 10);
        }
        let assign = locality_partition(&affinity, 2);
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[0], assign[2]);
        assert_eq!(assign[3], assign[4]);
        assert_eq!(assign[3], assign[5]);
        assert_ne!(assign[0], assign[3], "cliques spread over both shards");
        let mut counts = [0usize; 2];
        for &s in &assign {
            counts[s as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 5), "cap violated: {counts:?}");
        assert_eq!(assign, locality_partition(&affinity, 2), "deterministic");
    }

    #[test]
    fn locality_partition_cap_prevents_starvation() {
        // A star: everyone loves node 0. Greedy-without-cap would dump all
        // 10 nodes on one shard; the +10% cap (⌈10·1.1/2⌉ = 6) must stop
        // that — the competitive-analysis balance requirement.
        let mut affinity: Vec<Vec<(u32, u64)>> = vec![Vec::new(); 10];
        for b in 1..10u32 {
            affinity[0].push((b, 5));
            affinity[b as usize].push((0, 5));
        }
        let assign = locality_partition(&affinity, 2);
        let mut counts = [0usize; 2];
        for &s in &assign {
            counts[s as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| (4..=6).contains(&c)),
            "star workload starved a shard: {counts:?}"
        );
    }

    #[test]
    fn affinity_profile_reaches_the_partitioner() {
        // 4 nodes, each hammering one object homed at node 0: the built
        // system's affinity adjacency must contain requester→home edges
        // (3 requesters × 1 object each), and `partition_for(Locality)`
        // must produce a legal, balanced partition that differs from
        // round-robin in a way that keeps node 0 with some requester.
        let oid = ObjectId(0); // home = 0 % 4 = 0
        let topo = Topology::complete(4, 5);
        let cfg = DstmConfig::default().with_scheduler(rts_core::SchedulerKind::Tfa);
        let mk = || -> BoxedProgram {
            Box::new(ScriptProgram::new(
                rts_core::TxKind(1),
                vec![ScriptOp::Write(oid), ScriptOp::AddScalar(oid, 1)],
            ))
        };
        let sys = SystemBuilder::new(topo, cfg).build(WorkloadSource {
            objects: vec![(oid, Payload::Scalar(0))],
            programs: (0..4).map(|_| vec![mk()]).collect(),
        });
        // Nodes 1..3 each have one edge to node 0 of weight 1 (node 0's
        // own access is a self-edge and dropped).
        assert_eq!(sys.affinity[0].len(), 3);
        for r in 1..4 {
            assert_eq!(sys.affinity[r], vec![(0u32, 1u64)]);
        }
        let part = sys.partition_for(PartitionStrategy::Locality, 2);
        assert_eq!(part.shards(), 2);
        // Cap for 4 nodes / 2 shards is ⌈4·1.1/2⌉ = 3: node 0 plus two
        // requesters share a shard, the leftover requester gets the other.
        let home_shard = part.shard_of()[0];
        let with_home = part.shard_of().iter().filter(|&&s| s == home_shard).count();
        assert_eq!(with_home, 3, "partition: {:?}", part.shard_of());
    }

    #[test]
    fn protocol_trace_spans_match_counters() {
        // A contended nested workload with tracing on: every Table-I number
        // recomputed from spans must equal the live counters exactly, and
        // the JSONL round trip must be lossless.
        use crate::trace::{ProtoEvent, TraceLog};

        let oid = ObjectId(1);
        let mut rng = SimRng::new(13);
        let topo = Topology::uniform_random(3, 1, 10, &mut rng);
        let cfg = DstmConfig::default()
            .with_scheduler(SchedulerKind::Rts)
            .with_concurrency(2)
            .with_protocol_trace(true);
        let programs: Vec<Vec<BoxedProgram>> = (0..3)
            .map(|_| {
                (0..4)
                    .map(|_| {
                        Box::new(nested_increments(TxKind(1), TxKind(2), &[oid, ObjectId(2)]))
                            as BoxedProgram
                    })
                    .collect()
            })
            .collect();
        let mut sys = SystemBuilder::new(topo, cfg).seed(3).build(WorkloadSource {
            objects: vec![(oid, Payload::Scalar(0)), (ObjectId(2), Payload::Scalar(0))],
            programs,
        });
        let m = sys.run(5_000_000);
        assert!(sys.all_done());
        let trace = sys.take_trace();
        assert!(!trace.records.is_empty(), "tracing was enabled");

        let (mut commits, mut nested_commits) = (0u64, 0u64);
        let (mut own, mut parent) = (0u64, 0u64);
        for r in &trace.records {
            match &r.ev {
                ProtoEvent::TxCommit { .. } => commits += 1,
                ProtoEvent::NestedCommit { .. } => nested_commits += 1,
                ProtoEvent::NestedAbort {
                    own: o, parent: p, ..
                } => {
                    own += o;
                    parent += p;
                }
                ProtoEvent::TxAbort { nested_parent, .. } => parent += nested_parent,
                _ => {}
            }
        }
        assert_eq!(commits, m.merged.commits);
        assert_eq!(nested_commits, m.merged.nested_commits);
        assert_eq!(own, m.merged.nested_aborts_own, "Table I own split");
        assert_eq!(
            parent, m.merged.nested_aborts_parent,
            "Table I parent split"
        );

        let back = TraceLog::parse_jsonl(&trace.to_jsonl()).expect("jsonl parses");
        assert_eq!(back.records, trace.records);
    }

    #[test]
    fn telemetry_is_passive_and_epoch_sums_reconcile() {
        // The same contended workload with telemetry on and off: the
        // sampler must not perturb the schedule (identical metrics,
        // messages, end time, object state), the per-epoch deltas must sum
        // to the end-of-run totals, and the wasted-work ledger must
        // reconcile with the Table-I nested-abort split.
        fn build(telemetry: bool) -> System {
            let oid = ObjectId(1);
            let mut rng = SimRng::new(29);
            let topo = Topology::uniform_random(4, 1, 20, &mut rng);
            let cfg = DstmConfig::default()
                .with_scheduler(SchedulerKind::Rts)
                .with_concurrency(2)
                .with_telemetry(telemetry)
                .with_epoch(SimDuration::from_millis(5));
            let programs: Vec<Vec<BoxedProgram>> = (0..4)
                .map(|_| {
                    (0..4)
                        .map(|_| {
                            Box::new(nested_increments(TxKind(1), TxKind(2), &[oid, ObjectId(2)]))
                                as BoxedProgram
                        })
                        .collect()
                })
                .collect();
            SystemBuilder::new(topo, cfg)
                .seed(11)
                .build(WorkloadSource {
                    objects: vec![(oid, Payload::Scalar(0)), (ObjectId(2), Payload::Scalar(0))],
                    programs,
                })
        }

        let mut off = build(false);
        let want = off.run(5_000_000);
        assert!(off.all_done());
        assert!(off.take_telemetry().iter().all(|r| r.epochs.is_empty()));

        let mut on = build(true);
        let got = on.run(5_000_000);
        assert!(on.all_done());
        assert_eq!(got.merged, want.merged, "telemetry perturbed the run");
        assert_eq!(got.messages, want.messages);
        assert_eq!(got.ended_at, want.ended_at);
        assert_eq!(on.object_state(), off.object_state());

        let reports = on.take_telemetry();
        let series = crate::telemetry::merge_epoch_series(&reports);
        assert!(!series.is_empty(), "contended run spans several epochs");
        let commits: u64 = series.iter().map(|e| e.commits).sum();
        let aborts: u64 = series.iter().map(|e| e.aborts).sum();
        let wasted: u64 = series.iter().map(|e| e.wasted_ns).sum();
        assert_eq!(commits, got.merged.commits);
        assert_eq!(aborts, got.merged.total_aborts());
        assert_eq!(wasted, got.merged.wasted_work_ns);
        assert!(got.merged.wasted_work_reconciles(), "Table-I split ledger");
        // Aborts attributed to objects in the rollup are a subset of all
        // top-level aborts (timeout/validation aborts may know no object).
        let rollup = crate::telemetry::merge_object_waste(&reports);
        let rollup_aborts: u64 = rollup.iter().map(|o| o.aborts).sum();
        assert!(rollup_aborts <= got.merged.total_aborts());
        if got.merged.total_aborts() > 0 {
            assert!(!rollup.is_empty(), "contended aborts blame objects");
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let p = ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::Write(ObjectId(1)),
                ScriptOp::AddScalar(ObjectId(1), 1),
            ],
        );
        let mut sys =
            single_node_system(vec![Box::new(p)], vec![(ObjectId(1), Payload::Scalar(0))]);
        sys.run(100_000);
        assert!(sys.take_trace().records.is_empty());
    }

    #[test]
    fn read_only_transactions_commit() {
        let p = ScriptProgram::new(TxKind(1), vec![ScriptOp::Read(ObjectId(1))]);
        let mut sys =
            single_node_system(vec![Box::new(p)], vec![(ObjectId(1), Payload::Scalar(10))]);
        let m = sys.run(100_000);
        assert!(sys.all_done());
        assert_eq!(m.merged.commits, 1);
        // Read-only commit must not bump the version.
        assert_eq!(sys.object_state()[&ObjectId(1)].1, 0);
    }
}
