//! System assembly: topology + configuration + objects + workload → a
//! runnable [`World`] of [`Node`]s, plus end-of-run aggregation.

use crate::config::DstmConfig;
use crate::message::{Msg, Timer};
use crate::metrics::{NodeMetrics, RunMetrics};
use crate::node::Node;
use crate::object::Payload;
use crate::program::BoxedProgram;
use crate::trace::TraceLog;
use dstm_net::Topology;
use dstm_sim::{
    ActorId, BinaryHeapQueue, EventQueue, GenericWorld, KernelEvent, SimDuration, SimTime,
};
use rts_core::{build_policy, ObjectId, RtsPolicy, ThresholdController};
use std::collections::HashMap;
use std::sync::Arc;

/// The kernel event type of a D-STM world (what a queue backend must hold).
pub type NodeEvent = KernelEvent<Msg, Timer>;

/// Where a system gets its shared objects and transactions.
///
/// `objects` are placed at their **home node** (`ObjectId::home`), which is
/// how every node's owner cache is implicitly seeded. `programs[i]` is the
/// transaction queue of node `i`.
pub struct WorkloadSource {
    pub objects: Vec<(ObjectId, Payload)>,
    pub programs: Vec<Vec<BoxedProgram>>,
}

/// Builder for a complete simulated D-STM deployment.
pub struct SystemBuilder {
    topo: Arc<Topology>,
    cfg: DstmConfig,
    seed: u64,
}

impl SystemBuilder {
    pub fn new(topo: Topology, cfg: DstmConfig) -> Self {
        SystemBuilder {
            topo: Arc::new(topo),
            cfg,
            seed: 0x5EED,
        }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Assemble the world on the default binary-heap event queue. Panics if
    /// `programs` does not match the node count or if an object is homed
    /// outside the node range.
    pub fn build(self, workload: WorkloadSource) -> System {
        self.build_with_queue(workload, BinaryHeapQueue::new())
    }

    /// Assemble the world on an explicit event-queue backend (the schedule —
    /// and therefore every metric — is bit-identical across backends; only
    /// host wall-clock differs).
    pub fn build_with_queue<Q: EventQueue<NodeEvent>>(
        self,
        workload: WorkloadSource,
        queue: Q,
    ) -> System<Q> {
        let n = self.topo.n();
        assert_eq!(
            workload.programs.len(),
            n,
            "one program queue per node required"
        );
        let cfg = Arc::new(self.cfg);

        // Partition objects to their home nodes.
        let mut per_node: Vec<Vec<(ObjectId, Payload)>> = (0..n).map(|_| Vec::new()).collect();
        for (oid, payload) in workload.objects {
            per_node[oid.home(n) as usize].push((oid, payload));
        }

        let mut programs = workload.programs;
        let nodes: Vec<Node> = (0..n)
            .map(|i| {
                let policy =
                    if cfg.adaptive_threshold && cfg.scheduler == rts_core::SchedulerKind::Rts {
                        Box::new(RtsPolicy::new(ThresholdController::adaptive(
                            cfg.cl_threshold,
                            1,
                            cfg.cl_threshold * 4,
                            SimDuration::from_millis(500),
                        ))) as Box<dyn rts_core::ConflictPolicy>
                    } else {
                        build_policy(cfg.scheduler, cfg.backoff_base, cfg.cl_threshold)
                    };
                Node::new(
                    i as u32,
                    Arc::clone(&self.topo),
                    Arc::clone(&cfg),
                    policy,
                    std::mem::take(&mut per_node[i]),
                    std::mem::take(&mut programs[i]),
                )
            })
            .collect();

        let mut world = GenericWorld::with_queue(nodes, self.seed, queue);
        for i in 0..n {
            world.send_external(ActorId(i as u32), Msg::StartWorkload, SimDuration::ZERO);
        }
        System {
            world,
            topo: self.topo,
        }
    }
}

/// A runnable deployment, generic over the kernel's event-queue backend
/// (defaults to the binary heap so existing `System` call sites are
/// unchanged).
pub struct System<Q = BinaryHeapQueue<NodeEvent>> {
    world: GenericWorld<Node, Q>,
    topo: Arc<Topology>,
}

impl<Q: EventQueue<NodeEvent>> System<Q> {
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn world(&self) -> &GenericWorld<Node, Q> {
        &self.world
    }

    pub fn world_mut(&mut self) -> &mut GenericWorld<Node, Q> {
        &mut self.world
    }

    /// Drive the system to **quiescence**: every event is processed until
    /// the queue drains (or the runaway `event_budget` backstop trips).
    /// Returns the aggregated run metrics.
    ///
    /// All protocol timers are one-shot and the workload is finite, so a
    /// run always drains shortly after the last node finishes; quiescence
    /// is — unlike "stop at the event that completed the last node" — the
    /// *same* stop point the sharded executor reaches, which is what makes
    /// [`run_sharded`](Self::run_sharded) bit-identical to this method.
    /// The makespan reported in the metrics still ends at the last commit,
    /// not at the drain: see [`collect`](Self::collect).
    pub fn run(&mut self, event_budget: u64) -> RunMetrics {
        let started_at = self.world.now();
        self.world.run_while(event_budget, |_| true);
        self.collect(started_at)
    }

    /// Like [`run`](Self::run), but executes on `shards` threads using the
    /// kernel's conservative time-windowed parallel executor, with lookahead
    /// equal to the topology's minimum link delay (≥ 1 ms for the paper's
    /// 1–50 ms delay matrices). The outcome — metrics, histograms, object
    /// state, protocol traces — is bit-identical to the serial `run` for
    /// every shard count.
    pub fn run_sharded(&mut self, event_budget: u64, shards: usize) -> RunMetrics
    where
        Q: Default + Send,
    {
        let started_at = self.world.now();
        let lookahead = self.topo.min_delay();
        self.world.run_sharded(shards, lookahead, event_budget);
        self.collect(started_at)
    }

    fn collect(&self, started_at: SimTime) -> RunMetrics {
        // The run executes to quiescence, but the makespan the figures
        // divide throughput by ends at the last *commit* — the trailing
        // in-flight replies and stale retry timers that drain afterwards
        // are not useful work (RTS in particular leaves long retry timers
        // pending, and counting them would understate its throughput by
        // several-fold). Each node records its own completion time, so the
        // max is identical under serial and sharded execution even though
        // the two drain the tail in different orders. An incomplete run
        // (budget backstop tripped) has no last commit; fall back to the
        // stop time.
        let ended_at = self
            .world
            .actors()
            .iter()
            .map(|n| n.done_at())
            .try_fold(SimTime::ZERO, |acc, t| t.map(|t| acc.max(t)))
            .unwrap_or_else(|| self.world.now());
        let mut merged = NodeMetrics::default();
        for node in self.world.actors() {
            merged.merge(&node.metrics);
        }
        RunMetrics {
            nodes: self.topo.n(),
            merged,
            elapsed: ended_at.saturating_since(started_at),
            messages: self.world.messages_delivered(),
            started_at,
            ended_at,
        }
    }

    /// Run with a default event budget generous enough for the harness
    /// workloads (≈50k events per transaction).
    pub fn run_default(&mut self) -> RunMetrics {
        self.run(self.default_budget())
    }

    /// [`run_sharded`](Self::run_sharded) with the same default event budget
    /// as [`run_default`](Self::run_default).
    pub fn run_sharded_default(&mut self, shards: usize) -> RunMetrics
    where
        Q: Default + Send,
    {
        self.run_sharded(self.default_budget(), shards)
    }

    fn default_budget(&self) -> u64 {
        let total_txns: usize = self.world.actors().iter().map(|n| n.backlog()).sum();
        (total_txns as u64 + 16) * 50_000
    }

    /// Whether every node finished its workload.
    pub fn all_done(&self) -> bool {
        self.world.actors().iter().all(|n| n.done())
    }

    /// Snapshot of the current committed state of every object in the
    /// system (owner-held authoritative copies), for invariant checks.
    pub fn object_state(&self) -> HashMap<ObjectId, (Payload, u64)> {
        let mut out = HashMap::new();
        for node in self.world.actors() {
            for (oid, o) in node.owned_objects() {
                let prev = out.insert(*oid, ((*o.payload).clone(), o.version));
                assert!(
                    prev.is_none(),
                    "single-writable-copy violated: {oid:?} owned twice"
                );
            }
        }
        out
    }

    /// Virtual time now.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Drain every node's protocol-event stream into one time-ordered
    /// [`TraceLog`] (empty unless the run was built with
    /// `DstmConfig::trace_protocol`). Call after `run`.
    pub fn take_trace(&mut self) -> TraceLog {
        let streams = self
            .world
            .actors_mut()
            .iter_mut()
            .map(|n| n.take_trace())
            .collect();
        TraceLog::from_node_streams(streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{nested_increments, ScriptOp, ScriptProgram};
    use dstm_sim::SimRng;
    use rts_core::{SchedulerKind, TxKind};

    fn single_node_system(
        programs: Vec<BoxedProgram>,
        objects: Vec<(ObjectId, Payload)>,
    ) -> System {
        let topo = Topology::complete(1, 1);
        let cfg = DstmConfig::default().with_scheduler(SchedulerKind::Tfa);
        SystemBuilder::new(topo, cfg).build(WorkloadSource {
            objects,
            programs: vec![programs],
        })
    }

    #[test]
    fn single_node_single_tx_commits() {
        let p = ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::Write(ObjectId(1)),
                ScriptOp::AddScalar(ObjectId(1), 5),
            ],
        );
        let mut sys =
            single_node_system(vec![Box::new(p)], vec![(ObjectId(1), Payload::Scalar(10))]);
        let m = sys.run(100_000);
        assert!(sys.all_done());
        assert_eq!(m.merged.commits, 1);
        assert_eq!(m.merged.total_aborts(), 0);
        let state = sys.object_state();
        assert_eq!(state[&ObjectId(1)].0, Payload::Scalar(15));
        assert!(state[&ObjectId(1)].1 > 0, "version bumped by the commit");
    }

    #[test]
    fn nested_commit_merges_and_publishes() {
        let p = nested_increments(TxKind(1), TxKind(2), &[ObjectId(1), ObjectId(2)]);
        let mut sys = single_node_system(
            vec![Box::new(p)],
            vec![
                (ObjectId(1), Payload::Scalar(0)),
                (ObjectId(2), Payload::Scalar(7)),
            ],
        );
        let m = sys.run(100_000);
        assert!(sys.all_done());
        assert_eq!(m.merged.commits, 1);
        assert_eq!(m.merged.nested_commits, 2);
        let state = sys.object_state();
        assert_eq!(state[&ObjectId(1)].0, Payload::Scalar(1));
        assert_eq!(state[&ObjectId(2)].0, Payload::Scalar(8));
    }

    #[test]
    fn two_node_remote_fetch_moves_ownership() {
        // One object, homed somewhere; a writer on each node increments it
        // twice; total must be 4 regardless of schedule.
        let oid = ObjectId(9);
        let topo = Topology::complete(2, 5);
        let cfg = DstmConfig::default()
            .with_scheduler(SchedulerKind::Tfa)
            .with_concurrency(1);
        let mk = || -> BoxedProgram {
            Box::new(ScriptProgram::new(
                TxKind(1),
                vec![ScriptOp::Write(oid), ScriptOp::AddScalar(oid, 1)],
            ))
        };
        let mut sys = SystemBuilder::new(topo, cfg).build(WorkloadSource {
            objects: vec![(oid, Payload::Scalar(0))],
            programs: vec![vec![mk(), mk()], vec![mk(), mk()]],
        });
        let m = sys.run(1_000_000);
        assert!(sys.all_done(), "system stalled");
        assert_eq!(m.merged.commits, 4);
        let state = sys.object_state();
        assert_eq!(
            state[&oid].0,
            Payload::Scalar(4),
            "increments must serialize"
        );
    }

    #[test]
    fn contended_counter_is_linearizable_under_all_schedulers() {
        // 4 nodes × 5 increments of one shared counter each, under each
        // scheduler: the final value must always be exactly 20.
        for scheduler in [
            SchedulerKind::Tfa,
            SchedulerKind::TfaBackoff,
            SchedulerKind::Rts,
        ] {
            let oid = ObjectId(1);
            let mut rng = SimRng::new(7);
            let topo = Topology::uniform_random(4, 1, 10, &mut rng);
            let cfg = DstmConfig::default()
                .with_scheduler(scheduler)
                .with_concurrency(2);
            let mk = || -> BoxedProgram {
                Box::new(ScriptProgram::new(
                    TxKind(1),
                    vec![
                        ScriptOp::Write(oid),
                        ScriptOp::AddScalar(oid, 1),
                        ScriptOp::Compute(SimDuration::from_micros(100)),
                    ],
                ))
            };
            let programs: Vec<Vec<BoxedProgram>> =
                (0..4).map(|_| (0..5).map(|_| mk()).collect()).collect();
            let mut sys = SystemBuilder::new(topo, cfg)
                .seed(99)
                .build(WorkloadSource {
                    objects: vec![(oid, Payload::Scalar(0))],
                    programs,
                });
            let m = sys.run(5_000_000);
            assert!(sys.all_done(), "{scheduler:?} run stalled");
            assert_eq!(m.merged.commits, 20, "{scheduler:?} lost commits");
            let state = sys.object_state();
            assert_eq!(
                state[&oid].0,
                Payload::Scalar(20),
                "{scheduler:?} violated serializability"
            );
        }
    }

    #[test]
    fn queue_backends_produce_identical_runs() {
        // The same contended multi-node workload on the heap-backed and
        // calendar-backed kernels must produce bit-identical metrics: same
        // commits, same message count, same virtual end time.
        use dstm_sim::CalendarQueue;

        fn build_cfg() -> (Topology, DstmConfig, WorkloadSource) {
            let oid = ObjectId(1);
            let mut rng = SimRng::new(41);
            let topo = Topology::uniform_random(3, 1, 20, &mut rng);
            let cfg = DstmConfig::default()
                .with_scheduler(SchedulerKind::Rts)
                .with_concurrency(2);
            let mk = || -> BoxedProgram {
                Box::new(ScriptProgram::new(
                    TxKind(1),
                    vec![
                        ScriptOp::Write(oid),
                        ScriptOp::AddScalar(oid, 1),
                        ScriptOp::Compute(SimDuration::from_micros(250)),
                    ],
                ))
            };
            let programs = (0..3).map(|_| (0..4).map(|_| mk()).collect()).collect();
            let workload = WorkloadSource {
                objects: vec![(oid, Payload::Scalar(0))],
                programs,
            };
            (topo, cfg, workload)
        }

        let (topo, cfg, workload) = build_cfg();
        let mut heap_sys = SystemBuilder::new(topo, cfg).seed(17).build(workload);
        let heap = heap_sys.run(5_000_000);
        assert!(heap_sys.all_done());

        let (topo, cfg, workload) = build_cfg();
        let mut cal_sys = SystemBuilder::new(topo, cfg)
            .seed(17)
            .build_with_queue(workload, CalendarQueue::new());
        let cal = cal_sys.run(5_000_000);
        assert!(cal_sys.all_done());

        assert_eq!(heap.merged.commits, cal.merged.commits);
        assert_eq!(heap.merged.total_aborts(), cal.merged.total_aborts());
        assert_eq!(heap.messages, cal.messages);
        assert_eq!(heap.ended_at, cal.ended_at);
        assert_eq!(heap_sys.object_state(), cal_sys.object_state());
    }

    #[test]
    fn sharded_run_is_bit_identical_to_serial() {
        // Contended multi-node workload: the conservative windowed executor
        // must reproduce the serial run exactly, for every shard count.
        fn build() -> System {
            let oid = ObjectId(1);
            let mut rng = SimRng::new(23);
            let topo = Topology::uniform_random(6, 1, 20, &mut rng);
            let cfg = DstmConfig::default()
                .with_scheduler(SchedulerKind::Rts)
                .with_concurrency(2);
            let mk = || -> BoxedProgram {
                Box::new(ScriptProgram::new(
                    TxKind(1),
                    vec![
                        ScriptOp::Write(oid),
                        ScriptOp::AddScalar(oid, 1),
                        ScriptOp::Compute(SimDuration::from_micros(250)),
                    ],
                ))
            };
            let programs = (0..6).map(|_| (0..3).map(|_| mk()).collect()).collect();
            SystemBuilder::new(topo, cfg)
                .seed(17)
                .build(WorkloadSource {
                    objects: vec![(ObjectId(1), Payload::Scalar(0))],
                    programs,
                })
        }

        let mut serial = build();
        let want = serial.run(5_000_000);
        assert!(serial.all_done());
        for shards in [1, 2, 4, 8] {
            let mut sys = build();
            let got = sys.run_sharded(5_000_000, shards);
            assert!(sys.all_done(), "sharded({shards}) stalled");
            assert_eq!(got.merged, want.merged, "metrics diverged at {shards}");
            assert_eq!(got.messages, want.messages);
            assert_eq!(got.ended_at, want.ended_at);
            assert_eq!(sys.object_state(), serial.object_state());
        }
    }

    #[test]
    fn protocol_trace_spans_match_counters() {
        // A contended nested workload with tracing on: every Table-I number
        // recomputed from spans must equal the live counters exactly, and
        // the JSONL round trip must be lossless.
        use crate::trace::{ProtoEvent, TraceLog};

        let oid = ObjectId(1);
        let mut rng = SimRng::new(13);
        let topo = Topology::uniform_random(3, 1, 10, &mut rng);
        let cfg = DstmConfig::default()
            .with_scheduler(SchedulerKind::Rts)
            .with_concurrency(2)
            .with_protocol_trace(true);
        let programs: Vec<Vec<BoxedProgram>> = (0..3)
            .map(|_| {
                (0..4)
                    .map(|_| {
                        Box::new(nested_increments(TxKind(1), TxKind(2), &[oid, ObjectId(2)]))
                            as BoxedProgram
                    })
                    .collect()
            })
            .collect();
        let mut sys = SystemBuilder::new(topo, cfg).seed(3).build(WorkloadSource {
            objects: vec![(oid, Payload::Scalar(0)), (ObjectId(2), Payload::Scalar(0))],
            programs,
        });
        let m = sys.run(5_000_000);
        assert!(sys.all_done());
        let trace = sys.take_trace();
        assert!(!trace.records.is_empty(), "tracing was enabled");

        let (mut commits, mut nested_commits) = (0u64, 0u64);
        let (mut own, mut parent) = (0u64, 0u64);
        for r in &trace.records {
            match &r.ev {
                ProtoEvent::TxCommit { .. } => commits += 1,
                ProtoEvent::NestedCommit { .. } => nested_commits += 1,
                ProtoEvent::NestedAbort {
                    own: o, parent: p, ..
                } => {
                    own += o;
                    parent += p;
                }
                ProtoEvent::TxAbort { nested_parent, .. } => parent += nested_parent,
                _ => {}
            }
        }
        assert_eq!(commits, m.merged.commits);
        assert_eq!(nested_commits, m.merged.nested_commits);
        assert_eq!(own, m.merged.nested_aborts_own, "Table I own split");
        assert_eq!(
            parent, m.merged.nested_aborts_parent,
            "Table I parent split"
        );

        let back = TraceLog::parse_jsonl(&trace.to_jsonl()).expect("jsonl parses");
        assert_eq!(back.records, trace.records);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let p = ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::Write(ObjectId(1)),
                ScriptOp::AddScalar(ObjectId(1), 1),
            ],
        );
        let mut sys =
            single_node_system(vec![Box::new(p)], vec![(ObjectId(1), Payload::Scalar(0))]);
        sys.run(100_000);
        assert!(sys.take_trace().records.is_empty());
    }

    #[test]
    fn read_only_transactions_commit() {
        let p = ScriptProgram::new(TxKind(1), vec![ScriptOp::Read(ObjectId(1))]);
        let mut sys =
            single_node_system(vec![Box::new(p)], vec![(ObjectId(1), Payload::Scalar(10))]);
        let m = sys.run(100_000);
        assert!(sys.all_done());
        assert_eq!(m.merged.commits, 1);
        // Read-only commit must not bump the version.
        assert_eq!(sys.object_state()[&ObjectId(1)].1, 0);
    }
}
