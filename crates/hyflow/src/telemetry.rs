//! Time-resolved telemetry: epoch-sampled counters and the per-object
//! wasted-work rollup.
//!
//! The sampler is **passive**: nothing in here sets timers or sends
//! messages (a ticker would consume per-actor event sequence numbers and
//! break the telemetry-on/off bit-identity the differential suite
//! enforces). Instead the node checks, on entry to every event handler,
//! whether simulated time crossed an epoch boundary and flushes the
//! elapsed epochs from its always-on counters. Cost discipline matches
//! protocol tracing: with telemetry off the per-event check is a single
//! integer compare (`now >= u64::MAX`), and nothing here allocates.
//!
//! Samples land in a fixed-capacity ring ([`RING_CAP`]) preallocated when
//! telemetry is enabled, so the steady state allocates nothing; if a run
//! outlives the ring, the oldest epochs are overwritten and counted in
//! `dropped_epochs`.

use crate::metrics::NodeMetrics;
use dstm_sim::SimTime;
use rts_core::ObjectId;

/// Ring capacity, in epochs. At the default 50 ms epoch this covers
/// ~3.4 simulated minutes before the ring wraps — far past any sweep cell.
pub const RING_CAP: usize = 4096;

/// One epoch's activity on one node: counter deltas over the epoch plus
/// point-in-time gauges read at the flush. Epoch `e` covers simulated time
/// `[e * epoch_ns, (e + 1) * epoch_ns)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochSample {
    /// Epoch index (start time = `epoch * epoch_ns`).
    pub epoch: u64,
    /// Counter deltas over this epoch.
    pub commits: u64,
    pub aborts: u64,
    pub nested_aborts: u64,
    pub enqueued: u64,
    pub wasted_ns: u64,
    pub wasted_msgs: u64,
    /// Cache lookups served from a retained copy this epoch
    /// (`DstmConfig::cache`; always zero with the cache off).
    pub cache_hits: u64,
    /// Cache lookups that fell back to a full fetch this epoch.
    pub cache_misses: u64,
    /// Retained copies invalidated this epoch (staleness proofs or
    /// ownership moving through the caching node).
    pub cache_invalidations: u64,
    /// Gauges at the flush that closed this epoch.
    pub queue_depth: u64,
    pub in_flight: u64,
    /// Objects whose owner-side CL window is currently open.
    pub cl_open: u64,
}

/// Point-in-time gauges the node computes at flush time (the sampler
/// cannot see the scheduler table or object table itself).
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauges {
    pub queue_depth: u64,
    pub in_flight: u64,
    pub cl_open: u64,
}

/// Counter snapshot at the last flush, for delta computation.
#[derive(Clone, Copy, Debug, Default)]
struct Snapshot {
    commits: u64,
    aborts: u64,
    nested_aborts: u64,
    enqueued: u64,
    wasted_ns: u64,
    wasted_msgs: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_invalidations: u64,
}

impl Snapshot {
    fn of(m: &NodeMetrics) -> Self {
        Snapshot {
            commits: m.commits,
            aborts: m.total_aborts(),
            nested_aborts: m.total_nested_aborts(),
            enqueued: m.enqueued,
            wasted_ns: m.wasted_work_ns,
            wasted_msgs: m.wasted_msgs,
            cache_hits: m.cache_hits,
            cache_misses: m.cache_misses,
            cache_invalidations: m.cache_invalidations,
        }
    }
}

/// Per-object wasted-work rollup row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjWaste {
    pub oid: ObjectId,
    /// Top-level aborts this object's contention caused.
    pub aborts: u64,
    /// Virtual nanoseconds of work those aborts discarded.
    pub wasted_ns: u64,
}

/// Everything one node's telemetry collected, drained at end of run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Epoch samples in epoch order (oldest surviving first).
    pub epochs: Vec<EpochSample>,
    /// Per-object wasted-work rollup, sorted by object id.
    pub objects: Vec<ObjWaste>,
    /// Epochs overwritten because the run outlived the ring.
    pub dropped_epochs: u64,
}

/// Per-node telemetry state. Disabled by default; [`Telemetry::disabled`]
/// holds no heap memory at all.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// `u64::MAX` when disabled, so the per-event guard is one compare.
    next_epoch_end: u64,
    epoch_ns: u64,
    /// Index of the epoch currently accumulating.
    cur_epoch: u64,
    ring: Vec<EpochSample>,
    /// Ring write head once `ring` is full.
    head: usize,
    dropped: u64,
    last: Snapshot,
    objects: Vec<ObjWaste>,
}

impl Telemetry {
    pub fn disabled() -> Self {
        Telemetry {
            next_epoch_end: u64::MAX,
            ..Telemetry::default()
        }
    }

    /// An enabled sampler with the ring preallocated (the only allocation
    /// telemetry ever makes on a node, done at build time).
    pub fn enabled(epoch_ns: u64) -> Self {
        let epoch_ns = epoch_ns.max(1);
        Telemetry {
            next_epoch_end: epoch_ns,
            epoch_ns,
            cur_epoch: 0,
            ring: Vec::with_capacity(RING_CAP),
            head: 0,
            dropped: 0,
            last: Snapshot::default(),
            objects: Vec::new(),
        }
    }

    /// The one-compare guard the node checks on every event. `true` means
    /// an epoch boundary passed and [`Telemetry::flush`] must run.
    #[inline]
    pub fn due(&self, now: SimTime) -> bool {
        now.0 >= self.next_epoch_end
    }

    /// Whether telemetry is recording at all.
    #[inline]
    pub fn on(&self) -> bool {
        self.epoch_ns != 0
    }

    /// Close every epoch that ended at or before `now`, recording counter
    /// deltas and the supplied gauges. Cold path: runs at most once per
    /// epoch per node.
    pub fn flush(&mut self, now: SimTime, metrics: &NodeMetrics, gauges: Gauges) {
        debug_assert!(self.on());
        let snap = Snapshot::of(metrics);
        while now.0 >= self.next_epoch_end {
            let sample = EpochSample {
                epoch: self.cur_epoch,
                commits: snap.commits - self.last.commits,
                aborts: snap.aborts - self.last.aborts,
                nested_aborts: snap.nested_aborts - self.last.nested_aborts,
                enqueued: snap.enqueued - self.last.enqueued,
                wasted_ns: snap.wasted_ns - self.last.wasted_ns,
                wasted_msgs: snap.wasted_msgs - self.last.wasted_msgs,
                cache_hits: snap.cache_hits - self.last.cache_hits,
                cache_misses: snap.cache_misses - self.last.cache_misses,
                cache_invalidations: snap.cache_invalidations - self.last.cache_invalidations,
                queue_depth: gauges.queue_depth,
                in_flight: gauges.in_flight,
                cl_open: gauges.cl_open,
            };
            self.push_sample(sample);
            self.last = snap;
            self.cur_epoch += 1;
            self.next_epoch_end = self
                .cur_epoch
                .saturating_add(1)
                .saturating_mul(self.epoch_ns);
        }
    }

    fn push_sample(&mut self, sample: EpochSample) {
        if self.ring.len() < RING_CAP {
            self.ring.push(sample);
        } else {
            self.ring[self.head] = sample;
            self.head = (self.head + 1) % RING_CAP;
            self.dropped += 1;
        }
    }

    /// Attribute one abort's wasted work to the object that caused it.
    #[inline]
    pub fn record_obj_waste(&mut self, oid: ObjectId, wasted_ns: u64) {
        if !self.on() {
            return;
        }
        match self.objects.iter_mut().find(|o| o.oid == oid) {
            Some(o) => {
                o.aborts += 1;
                o.wasted_ns += wasted_ns;
            }
            None => self.objects.push(ObjWaste {
                oid,
                aborts: 1,
                wasted_ns,
            }),
        }
    }

    /// Close the final (partial) epoch and drain everything collected.
    pub fn take(&mut self, now: SimTime, metrics: &NodeMetrics, gauges: Gauges) -> TelemetryReport {
        if !self.on() {
            return TelemetryReport::default();
        }
        // Force the in-progress epoch out even though its boundary has not
        // passed: pretend time reached the boundary.
        let boundary = SimTime(self.next_epoch_end.max(now.0));
        self.flush(boundary, metrics, gauges);
        let mut epochs: Vec<EpochSample> = if self.dropped == 0 {
            std::mem::take(&mut self.ring)
        } else {
            // Unwrap the ring into epoch order.
            let mut out = Vec::with_capacity(self.ring.len());
            out.extend_from_slice(&self.ring[self.head..]);
            out.extend_from_slice(&self.ring[..self.head]);
            self.ring.clear();
            out
        };
        // Trailing all-zero epochs (idle tail) carry no information. Every
        // delta field must be zero — a tail epoch with no commits or
        // top-level aborts can still carry nested aborts or wasted work
        // (child-scoped conflicts abort children without a parent abort),
        // and dropping it would break the epoch-sums-equal-totals contract.
        while epochs.last().is_some_and(|e| {
            e.commits == 0
                && e.aborts == 0
                && e.nested_aborts == 0
                && e.enqueued == 0
                && e.wasted_ns == 0
                && e.wasted_msgs == 0
                && e.cache_hits == 0
                && e.cache_misses == 0
                && e.cache_invalidations == 0
                && e.in_flight == 0
        }) {
            epochs.pop();
        }
        let mut objects = std::mem::take(&mut self.objects);
        objects.sort_unstable_by_key(|o| o.oid);
        TelemetryReport {
            epochs,
            objects,
            dropped_epochs: self.dropped,
        }
    }
}

/// Merge per-node epoch streams into one run-wide series: deltas and
/// gauges sum across nodes at each epoch index (a gauge summed over nodes
/// is the system-wide population — total queued requests, total in-flight
/// transactions, total open CL windows).
pub fn merge_epoch_series(streams: &[TelemetryReport]) -> Vec<EpochSample> {
    let max_epoch = streams
        .iter()
        .filter_map(|s| s.epochs.last().map(|e| e.epoch))
        .max();
    let Some(max_epoch) = max_epoch else {
        return Vec::new();
    };
    let mut merged: Vec<EpochSample> = (0..=max_epoch)
        .map(|epoch| EpochSample {
            epoch,
            ..EpochSample::default()
        })
        .collect();
    for s in streams {
        for e in &s.epochs {
            let m = &mut merged[e.epoch as usize];
            m.commits += e.commits;
            m.aborts += e.aborts;
            m.nested_aborts += e.nested_aborts;
            m.enqueued += e.enqueued;
            m.wasted_ns += e.wasted_ns;
            m.wasted_msgs += e.wasted_msgs;
            m.cache_hits += e.cache_hits;
            m.cache_misses += e.cache_misses;
            m.cache_invalidations += e.cache_invalidations;
            m.queue_depth += e.queue_depth;
            m.in_flight += e.in_flight;
            m.cl_open += e.cl_open;
        }
    }
    merged
}

/// Merge per-node object-waste rollups into one run-wide ranking input.
pub fn merge_object_waste(streams: &[TelemetryReport]) -> Vec<ObjWaste> {
    let mut merged: Vec<ObjWaste> = Vec::new();
    for s in streams {
        for o in &s.objects {
            match merged.iter_mut().find(|m| m.oid == o.oid) {
                Some(m) => {
                    m.aborts += o.aborts;
                    m.wasted_ns += o.wasted_ns;
                }
                None => merged.push(*o),
            }
        }
    }
    merged.sort_unstable_by_key(|o| o.oid);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauges(q: u64, f: u64, c: u64) -> Gauges {
        Gauges {
            queue_depth: q,
            in_flight: f,
            cl_open: c,
        }
    }

    #[test]
    fn disabled_sampler_never_fires_and_holds_no_memory() {
        let t = Telemetry::disabled();
        assert!(!t.on());
        assert!(!t.due(SimTime(u64::MAX - 1)));
        assert_eq!(t.ring.capacity(), 0);
        assert_eq!(t.objects.capacity(), 0);
    }

    #[test]
    fn deltas_accumulate_per_epoch() {
        let mut t = Telemetry::enabled(100);
        let mut m = NodeMetrics {
            commits: 2,
            ..NodeMetrics::default()
        };
        assert!(!t.due(SimTime(99)));
        assert!(t.due(SimTime(100)));
        t.flush(SimTime(100), &m, gauges(1, 2, 3));
        m.commits = 5;
        m.cache_hits = 4;
        m.cache_misses = 1;
        m.cache_invalidations = 2;
        m.record_abort(crate::metrics::AbortCause::SchedulerAbort);
        // Time jumps three epochs: epoch 1 gets the deltas, 2-3 are empty.
        t.flush(SimTime(420), &m, gauges(0, 1, 0));
        let report = t.take(SimTime(450), &m, gauges(0, 0, 0));
        assert_eq!(report.dropped_epochs, 0);
        assert_eq!(report.epochs[0].epoch, 0);
        assert_eq!(report.epochs[0].commits, 2);
        assert_eq!(report.epochs[0].queue_depth, 1);
        assert_eq!(report.epochs[1].commits, 3);
        assert_eq!(report.epochs[1].aborts, 1);
        assert_eq!(report.epochs[1].cache_hits, 4);
        assert_eq!(report.epochs[1].cache_misses, 1);
        assert_eq!(report.epochs[1].cache_invalidations, 2);
        assert_eq!(report.epochs[1].in_flight, 1);
        // Epochs 2-3 were skipped over by the jump: zero deltas, but they
        // carry the flush-time gauges (in_flight 1), so they survive; the
        // final partial epoch closed by `take` is idle and trimmed.
        assert_eq!(report.epochs.len(), 4);
        assert!(report.epochs[2..].iter().all(|e| e.commits == 0));
        // Per-epoch sums equal end-of-run totals.
        let commits: u64 = report.epochs.iter().map(|e| e.commits).sum();
        let aborts: u64 = report.epochs.iter().map(|e| e.aborts).sum();
        assert_eq!(commits, m.commits);
        assert_eq!(aborts, m.total_aborts());
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut t = Telemetry::enabled(10);
        let m = NodeMetrics::default();
        // Drive RING_CAP + 5 epochs past the sampler.
        t.flush(
            SimTime(10 * (RING_CAP as u64 + 5)),
            &m,
            gauges(0, 1, 0), // nonzero in_flight so the tail survives trim
        );
        // `take` force-closes the in-progress partial epoch too, pushing
        // one more sample through the full ring.
        let report = t.take(SimTime(10 * (RING_CAP as u64 + 5)), &m, gauges(0, 1, 0));
        assert_eq!(report.dropped_epochs, 6);
        assert_eq!(report.epochs.len(), RING_CAP);
        assert_eq!(report.epochs.first().unwrap().epoch, 6);
        // Still strictly ordered after unwrapping.
        assert!(report.epochs.windows(2).all(|w| w[0].epoch < w[1].epoch));
    }

    #[test]
    fn object_waste_rolls_up_and_merges() {
        let mut a = Telemetry::enabled(100);
        a.record_obj_waste(ObjectId(7), 50);
        a.record_obj_waste(ObjectId(7), 25);
        a.record_obj_waste(ObjectId(3), 10);
        let ra = a.take(SimTime(1), &NodeMetrics::default(), Gauges::default());
        assert_eq!(
            ra.objects,
            vec![
                ObjWaste {
                    oid: ObjectId(3),
                    aborts: 1,
                    wasted_ns: 10
                },
                ObjWaste {
                    oid: ObjectId(7),
                    aborts: 2,
                    wasted_ns: 75
                },
            ]
        );
        let mut b = Telemetry::enabled(100);
        b.record_obj_waste(ObjectId(7), 5);
        let rb = b.take(SimTime(1), &NodeMetrics::default(), Gauges::default());
        let merged = merge_object_waste(&[ra, rb]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[1].oid, ObjectId(7));
        assert_eq!(merged[1].aborts, 3);
        assert_eq!(merged[1].wasted_ns, 80);

        // Disabled sampler ignores rollup calls entirely.
        let mut off = Telemetry::disabled();
        off.record_obj_waste(ObjectId(1), 99);
        assert!(off.objects.is_empty());
    }

    #[test]
    fn epoch_series_merges_across_nodes() {
        let mk = |epoch, commits, in_flight| EpochSample {
            epoch,
            commits,
            in_flight,
            ..EpochSample::default()
        };
        let a = TelemetryReport {
            epochs: vec![mk(0, 2, 1), mk(1, 1, 0)],
            ..TelemetryReport::default()
        };
        let b = TelemetryReport {
            epochs: vec![mk(0, 3, 2), mk(2, 4, 1)],
            ..TelemetryReport::default()
        };
        let merged = merge_epoch_series(&[a, b]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].commits, 5);
        assert_eq!(merged[0].in_flight, 3);
        assert_eq!(merged[1].commits, 1);
        assert_eq!(merged[2].commits, 4);
        assert!(merge_epoch_series(&[]).is_empty());
    }
}
