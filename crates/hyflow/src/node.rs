//! The per-node TM proxy: object owner, directory participant, transaction
//! executor, and scheduler host.
//!
//! Each [`Node`] is a [`dstm_sim::Actor`]. It plays two roles at once:
//!
//! * **Owner side** — serves `ObjReq` fetches (Algorithm 3,
//!   `Retrieve_Request`), forwarding along tombstone chains when ownership
//!   has moved; resolves conflicts on locked objects through its
//!   [`ConflictPolicy`]; hands queued requesters the object on release
//!   (Algorithm 4, `Retrieve_Response`); participates in TFA commits
//!   (lock → validate → publish).
//! * **Requester side** — drives its transactions' [`TxProgram`]s
//!   (Algorithm 2, `Open_Object`), performs TFA transactional forwarding
//!   with early validation, runs the commit protocol, and retries aborted
//!   transactions (immediately, after a backoff, or from an RTS queue
//!   deadline).

use crate::config::DstmConfig;
use crate::message::{FetchResult, Msg, Timer};
use crate::metrics::{AbortCause, NestedAbortCause, NodeMetrics};
use crate::object::{CachedCopy, OwnedObject, Payload};
use crate::program::{AccessMode, BoxedProgram, StepInput, StepOutput};
use crate::telemetry::{Gauges, Telemetry, TelemetryReport};
use crate::trace::{ProtoEvent, ProtoTrace, TraceRecord, Verdict};
use crate::tx::{TxPhase, TxRuntime, ValidationResume};
use dstm_net::Topology;
use dstm_sim::{Actor, ActorId, Ctx, SimDuration, SimTime};
use rts_core::{
    explain_decision, ConflictCtx, ConflictPolicy, Decision, FxHashMap, ObjectClWindow, ObjectId,
    Requester, SchedulingTable, StatsTable, TxId,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// Minimum local hop latency, so that node-local protocol messages always
/// advance virtual time (models intra-node IPC; also guarantees the event
/// loop cannot spin at one instant on local retries).
const LOCAL_HOP: SimDuration = SimDuration::from_micros(30);

type NodeCtx<'a> = Ctx<'a, Msg, Timer>;

/// All owner-side per-object state, consolidated in one slot.
///
/// The node used to keep four separate `HashMap<ObjectId, _>`s (`store`,
/// `tombstones`, `owner_cache`, `cl_windows`); a single fetch-conflict
/// handler would hash the same oid up to five times. One slot per object
/// behind one interned index turns that into a single lookup.
struct ObjSlot {
    oid: ObjectId,
    /// The authoritative copy, if owned here.
    owned: Option<OwnedObject>,
    /// Where the object went when we published it away (ownership chain).
    tombstone: Option<u32>,
    /// Last known owner of a remote object (healed by responses).
    cached_owner: Option<u32>,
    /// Retained read copy of a remote object (`cfg.cache` only; always
    /// `None` otherwise). Invalidated when validation proves it stale or
    /// ownership moves through this node.
    cache: Option<CachedCopy>,
    /// Owner-side local-CL window (created on first request).
    cl_window: Option<ObjectClWindow>,
}

impl ObjSlot {
    fn new(oid: ObjectId) -> Self {
        ObjSlot {
            oid,
            owned: None,
            tombstone: None,
            cached_owner: None,
            cache: None,
            cl_window: None,
        }
    }
}

/// Dense id-indexed per-object state: an interner mapping each `ObjectId`
/// this node has ever touched to a slot index, plus the slot slab. Slots
/// are never freed (the universe of objects a node touches is bounded by
/// the benchmark's object space); "removal" is `owned.take()` etc.
#[derive(Default)]
struct ObjTable {
    index: FxHashMap<ObjectId, u32>,
    slots: Vec<ObjSlot>,
}

impl ObjTable {
    /// Pre-sized table: interning grows the slot slab one push at a time, so
    /// without a reserve the early doublings realloc-and-memcpy the (fat)
    /// `ObjSlot` vec several times per node while the working set warms up.
    fn with_capacity(cap: usize) -> Self {
        ObjTable {
            index: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
            slots: Vec::with_capacity(cap),
        }
    }

    #[inline]
    fn get(&self, oid: ObjectId) -> Option<&ObjSlot> {
        self.index.get(&oid).map(|&i| &self.slots[i as usize])
    }

    #[inline]
    fn get_mut(&mut self, oid: ObjectId) -> Option<&mut ObjSlot> {
        match self.index.get(&oid) {
            Some(&i) => Some(&mut self.slots[i as usize]),
            None => None,
        }
    }

    /// Slot for `oid`, interning it on first touch.
    fn ensure(&mut self, oid: ObjectId) -> &mut ObjSlot {
        let slots = &mut self.slots;
        let i = *self.index.entry(oid).or_insert_with(|| {
            slots.push(ObjSlot::new(oid));
            (slots.len() - 1) as u32
        });
        &mut self.slots[i as usize]
    }

    fn iter(&self) -> impl Iterator<Item = &ObjSlot> {
        self.slots.iter()
    }
}

/// Input fed to the executor when (re)entering a program.
enum DriveInput {
    Begin,
    Ack,
    Value(Arc<Payload>),
}

/// Outcome of consulting the local store and read cache for an `Acquire`
/// (`cfg.cache` only).
enum CacheOpen {
    /// Served synchronously with zero messages; the payload feeds straight
    /// back into the program.
    Served(Arc<Payload>),
    /// A payload-free [`Msg::VersionReq`] went out; the transaction awaits
    /// either a [`Msg::VersionAck`] or a full [`Msg::ObjResp`].
    Revalidating,
    /// Nothing usable — issue the ordinary full fetch.
    Fetch,
}

/// One simulated node.
pub struct Node {
    me: u32,
    topo: Arc<Topology>,
    cfg: Arc<DstmConfig>,
    /// TFA node-local clock.
    clock: u64,
    /// Per-object owner-side state (store, tombstones, owner cache, CL
    /// windows), slab-backed behind one interned index.
    objs: ObjTable,
    /// Owner-side conflict policy (the scheduler under evaluation).
    policy: Box<dyn ConflictPolicy>,
    /// Owner-side requester queues (Algorithm 1).
    sched: SchedulingTable,
    /// Requester-side commit-time statistics (backoff estimation).
    stats: StatsTable,
    /// Live transactions invoked here, indexed by `seq - 1` (sequence
    /// numbers are minted densely at start, so the Vec never has holes
    /// except where a transaction finished; `None` = finished/absent).
    txs: Vec<Option<TxRuntime>>,
    /// Workload not yet started.
    pending: VecDeque<BoxedProgram>,
    next_seq: u64,
    active: usize,
    /// Virtual time of this node's last commit — the moment [`Node::done`]
    /// flipped true. `None` until then (or `Some(ZERO)` for a node that
    /// started with no workload). A property of the node's own event
    /// sequence, so it is identical under serial and sharded execution even
    /// though the two drain trailing in-flight events in different orders.
    done_at: Option<SimTime>,
    pub completed: usize,
    pub metrics: NodeMetrics,
    /// Protocol-event sink (off unless `cfg.trace_protocol`; every caller
    /// site checks `ptrace.on()` before building an event).
    ptrace: ProtoTrace,
    /// Passive epoch sampler (off unless `cfg.telemetry`). Checked with one
    /// integer compare at the top of every event handler; it never sets
    /// timers, sends messages, or draws randomness, so enabling it cannot
    /// perturb the simulated schedule.
    telemetry: Telemetry,
    /// Scratch buffers reused across event handlers so steady-state
    /// summary/write-back/grant processing allocates nothing. Taken with
    /// `mem::take` for the duration of a handler and put back after.
    summary_buf: Vec<(ObjectId, u64, u32, bool, AccessMode)>,
    wbs_buf: Vec<(ObjectId, Arc<Payload>, u64, u32)>,
    grants_buf: Vec<Requester>,
    /// Per-destination same-tick send buffers (`cfg.cache` only): one
    /// `(destination, latency, messages)` group per distinct pair touched
    /// by the current event handler, drained by [`Node::flush_outbox`] at
    /// handler exit. A linear scan — one event fans out to a handful of
    /// neighbors at most.
    outbox: Vec<(u32, SimDuration, Vec<Msg>)>,
    /// Recycled single-message buffers from flushed outbox groups.
    outbox_pool: Vec<Vec<Msg>>,
}

impl Node {
    pub fn new(
        me: u32,
        topo: Arc<Topology>,
        cfg: Arc<DstmConfig>,
        policy: Box<dyn ConflictPolicy>,
        initial_objects: Vec<(ObjectId, Payload)>,
        workload: Vec<BoxedProgram>,
    ) -> Self {
        let stats = StatsTable::new(cfg.default_exec_estimate);
        // Home objects plus headroom for remotely fetched/cached entries.
        let mut objs = ObjTable::with_capacity(initial_objects.len() * 2 + 16);
        for (oid, p) in initial_objects {
            objs.ensure(oid).owned = Some(OwnedObject::new(p));
        }
        let mut ptrace = ProtoTrace::disabled();
        if cfg.trace_protocol {
            ptrace.enable();
        }
        let telemetry = if cfg.telemetry {
            Telemetry::enabled(cfg.epoch.0)
        } else {
            Telemetry::disabled()
        };
        let pending: VecDeque<BoxedProgram> = workload.into();
        Node {
            me,
            topo,
            cfg,
            clock: 0,
            objs,
            policy,
            sched: SchedulingTable::new(),
            stats,
            txs: Vec::new(),
            done_at: pending.is_empty().then_some(SimTime::ZERO),
            pending,
            next_seq: 0,
            active: 0,
            completed: 0,
            metrics: NodeMetrics::default(),
            ptrace,
            telemetry,
            summary_buf: Vec::new(),
            wbs_buf: Vec::new(),
            grants_buf: Vec::new(),
            outbox: Vec::new(),
            outbox_pool: Vec::new(),
        }
    }

    /// Drain this node's protocol-event stream (end-of-run collection).
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.ptrace.take()
    }

    /// Drain this node's telemetry (end-of-run collection), closing the
    /// final partial epoch at `now`.
    pub fn take_telemetry(&mut self, now: SimTime) -> TelemetryReport {
        let gauges = if self.telemetry.on() {
            self.telemetry_gauges(now)
        } else {
            Gauges::default()
        };
        self.telemetry.take(now, &self.metrics, gauges)
    }

    /// Point-in-time gauges for an epoch flush (needs `&mut` because
    /// reading a CL window prunes its expired entries).
    fn telemetry_gauges(&mut self, now: SimTime) -> Gauges {
        let cl_open = self
            .objs
            .slots
            .iter_mut()
            .filter_map(|s| s.cl_window.as_mut())
            .map(|w| u64::from(w.requests_in_window(now) > 0))
            .sum();
        Gauges {
            queue_depth: self.sched.total_queued() as u64,
            in_flight: self.active as u64,
            cl_open,
        }
    }

    /// Cold path of the per-event sampler check: close the epochs that
    /// ended at or before `now`.
    #[cold]
    fn telemetry_flush(&mut self, now: SimTime) {
        let gauges = self.telemetry_gauges(now);
        self.telemetry.flush(now, &self.metrics, gauges);
    }

    pub fn id(&self) -> u32 {
        self.me
    }

    /// Whether all of this node's workload has committed.
    pub fn done(&self) -> bool {
        self.pending.is_empty() && self.active == 0
    }

    /// Virtual time of the commit that finished this node's workload, or
    /// `None` while work remains. See the field doc for why this is the
    /// makespan anchor rather than the post-drain `world.now()`.
    pub fn done_at(&self) -> Option<SimTime> {
        self.done_at
    }

    /// Live + pending transaction count (diagnostics).
    pub fn backlog(&self) -> usize {
        self.pending.len() + self.active
    }

    /// A read-only peek at an owned object (for test assertions and
    /// end-of-run invariant checks).
    pub fn owned_object(&self, oid: ObjectId) -> Option<&OwnedObject> {
        self.objs.get(oid).and_then(|s| s.owned.as_ref())
    }

    pub fn owned_objects(&self) -> impl Iterator<Item = (&ObjectId, &OwnedObject)> {
        self.objs
            .iter()
            .filter_map(|s| s.owned.as_ref().map(|o| (&s.oid, o)))
    }

    /// Debug report of live transactions and queue state (stall diagnosis).
    pub fn stuck_report(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .txs
            .iter()
            .flatten()
            .map(|tx| {
                format!(
                    "node {} tx {:?} attempt {} levels {} phase {:?}",
                    self.me,
                    tx.id,
                    tx.attempt,
                    tx.levels.len(),
                    tx.phase
                )
            })
            .collect();
        for s in self.objs.iter() {
            if let Some(o) = &s.owned {
                if o.is_locked() {
                    out.push(format!(
                        "node {} object {:?} locked by {:?}",
                        self.me, s.oid, o.lock
                    ));
                }
            }
        }
        if self.sched.total_queued() > 0 {
            out.push(format!(
                "node {} has {} queued requesters",
                self.me,
                self.sched.total_queued()
            ));
        }
        out
    }

    // -- verification surface ---------------------------------------------
    //
    // Read-only probes used by the `dstm-verify` harness: a time-abstract
    // structural fingerprint for model-checker state deduplication, plus
    // local invariant predicates the checker asserts after every step.

    /// This node's TFA clock (monotonicity oracle).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Retained read copies (`cfg.cache` only), for freshness oracles.
    pub fn cached_copies(&self) -> impl Iterator<Item = (ObjectId, &CachedCopy)> {
        self.objs
            .iter()
            .filter_map(|s| s.cache.as_ref().map(|c| (s.oid, c)))
    }

    /// Time-abstract structural fingerprint of this node's protocol state.
    ///
    /// Everything that determines the node's future *protocol* behavior is
    /// folded in: the TFA clock, object table (payloads, versions, locks,
    /// tombstones, owner guesses, cached copies), live transaction runtimes
    /// (phase, nesting levels, working copies, write-version clock), and
    /// the owner-side requester queues. Wall-clock-valued state (ETS
    /// deadlines, CL windows, stats-table estimates, metrics) is excluded:
    /// it varies across equivalent schedules and only shapes *when* things
    /// happen, not *what* the protocol may do next. The checker uses these
    /// fingerprints purely to prune its search, so the abstraction can
    /// merge states but never fabricates a violation.
    pub fn protocol_fingerprint(&self) -> u64 {
        let mut h = crate::small::Fnv64::new();
        h.write_u64(u64::from(self.me));
        h.write_u64(self.clock);
        h.write_u64(self.completed as u64);
        h.write_u64(self.active as u64);
        h.write_u64(self.pending.len() as u64);

        // Object slots, sorted by oid for insertion-order independence.
        let mut slots: Vec<&ObjSlot> = self.objs.iter().collect();
        slots.sort_by_key(|s| s.oid);
        h.write_u64(slots.len() as u64);
        for s in slots {
            h.write_u64(s.oid.0);
            match &s.owned {
                Some(o) => {
                    h.write_u8(1);
                    o.payload.hash_into(&mut h);
                    h.write_u64(o.version);
                    match o.lock {
                        Some(tx) => {
                            h.write_u8(1);
                            h.write_u64(u64::from(tx.node));
                            h.write_u64(tx.seq);
                        }
                        None => h.write_u8(0),
                    }
                }
                None => h.write_u8(0),
            }
            h.write_u64(s.tombstone.map_or(u64::MAX, u64::from));
            h.write_u64(s.cached_owner.map_or(u64::MAX, u64::from));
            match &s.cache {
                Some(c) => {
                    h.write_u8(1);
                    c.payload.hash_into(&mut h);
                    h.write_u64(c.version);
                    h.write_u64(c.owner_clock);
                    h.write_u64(u64::from(c.local_cl));
                    h.write_u64(u64::from(c.owner));
                }
                None => h.write_u8(0),
            }
            // Requester queue for this object (owner side).
            if let Some(list) = self.sched.list(s.oid) {
                h.write_u64(list.len() as u64);
                for r in list.iter() {
                    h.write_u64(u64::from(r.node));
                    h.write_u64(u64::from(r.tx.node));
                    h.write_u64(r.tx.seq);
                    h.write_u64(u64::from(r.attempt));
                    h.write_u8(u8::from(r.read_only));
                }
            } else {
                h.write_u64(0);
            }
        }

        // Live transactions, sorted by id.
        let mut txs: Vec<&TxRuntime> = self.txs.iter().flatten().collect();
        txs.sort_by_key(|t| t.id);
        h.write_u64(txs.len() as u64);
        for tx in txs {
            h.write_u64(u64::from(tx.id.node));
            h.write_u64(tx.id.seq);
            h.write_u64(u64::from(tx.kind.0));
            h.write_u64(u64::from(tx.attempt));
            h.write_u64(tx.wv);
            h.write_u64(tx.nested_committed);
            Self::phase_into(&tx.phase, &mut h);
            h.write_u64(tx.levels.len() as u64);
            for level in &tx.levels {
                h.write_u64(u64::from(level.kind.0));
                h.write_u64(level.committed_children);
                let mut copies: Vec<(&ObjectId, &crate::tx::WorkingCopy)> =
                    level.copies.iter().collect();
                copies.sort_by_key(|(oid, _)| **oid);
                h.write_u64(copies.len() as u64);
                for (oid, c) in copies {
                    h.write_u64(oid.0);
                    c.payload.hash_into(&mut h);
                    h.write_u64(c.version);
                    h.write_u8(matches!(c.mode, AccessMode::Write) as u8);
                    h.write_u64(u64::from(c.owner));
                    h.write_u8(u8::from(c.dirty));
                    h.write_u8(u8::from(c.shadow));
                }
            }
        }
        h.finish()
    }

    /// Fold a transaction phase into a fingerprint: discriminant plus the
    /// object identities it is parked on (not timers or durations).
    fn phase_into(phase: &TxPhase, h: &mut crate::small::Fnv64) {
        match phase {
            TxPhase::Running => h.write_u8(1),
            TxPhase::Computing => h.write_u8(2),
            TxPhase::AwaitObject { oid, mode } => {
                h.write_u8(3);
                h.write_u64(oid.0);
                h.write_u8(matches!(mode, AccessMode::Write) as u8);
            }
            TxPhase::AwaitQueuedObject { oid, mode, .. } => {
                h.write_u8(4);
                h.write_u64(oid.0);
                h.write_u8(matches!(mode, AccessMode::Write) as u8);
            }
            TxPhase::AwaitValidation { pending, stale, .. } => {
                h.write_u8(5);
                let mut oids: Vec<ObjectId> = pending.iter().copied().collect();
                oids.sort();
                for oid in oids {
                    h.write_u64(oid.0);
                }
                h.write_u64(u64::MAX); // separator
                let mut stale: Vec<ObjectId> = stale.clone();
                stale.sort();
                for oid in stale {
                    h.write_u64(oid.0);
                }
            }
            TxPhase::AwaitLocks {
                pending,
                granted,
                failed,
            } => {
                h.write_u8(6);
                let mut oids: Vec<ObjectId> = pending.iter().copied().collect();
                oids.sort();
                for oid in oids {
                    h.write_u64(oid.0);
                }
                h.write_u64(u64::MAX);
                let mut granted: Vec<ObjectId> = granted.clone();
                granted.sort();
                for oid in granted {
                    h.write_u64(oid.0);
                }
                h.write_u64(failed.map_or(u64::MAX, |o| o.0));
            }
            TxPhase::AwaitPublish { pending } => {
                h.write_u8(7);
                let mut oids: Vec<ObjectId> = pending.iter().copied().collect();
                oids.sort();
                for oid in oids {
                    h.write_u64(oid.0);
                }
            }
            TxPhase::BackedOff => h.write_u8(8),
            TxPhase::ChildBackedOff => h.write_u8(9),
            TxPhase::Done => h.write_u8(10),
        }
    }

    /// Check node-local structural invariants, appending a description of
    /// each violation to `out`. Called by the model checker after every
    /// delivered event and by the fuzzer at end of episode.
    pub fn local_invariants(&self, out: &mut Vec<String>) {
        let live = self.txs.iter().flatten().count();
        if live != self.active {
            out.push(format!(
                "node {}: active count {} != live runtimes {}",
                self.me, self.active, live
            ));
        }
        for tx in self.txs.iter().flatten() {
            if tx.levels.is_empty() {
                out.push(format!(
                    "node {}: live tx {:?} has no nesting levels",
                    self.me, tx.id
                ));
                continue;
            }
            // A shadow copy mirrors an ancestor's fetch: some level below
            // the one holding the shadow must hold a non-shadow copy of the
            // same object (the real fetch the shadow is backed by).
            for (depth, level) in tx.levels.iter().enumerate() {
                for (oid, c) in level.copies.iter() {
                    if !c.shadow {
                        continue;
                    }
                    let backed = tx.levels[..depth]
                        .iter()
                        .any(|a| a.copies.get(oid).is_some_and(|ac| !ac.shadow));
                    if !backed {
                        out.push(format!(
                            "node {}: tx {:?} level {} shadow copy of {:?} \
                             has no ancestor backing",
                            self.me, tx.id, depth, oid
                        ));
                    }
                }
            }
            // Phase-specific coherence: a transaction parked on an object
            // must name an object it does not already hold exclusively.
            if let TxPhase::Done = tx.phase {
                out.push(format!(
                    "node {}: tx {:?} is live but in phase Done",
                    self.me, tx.id
                ));
            }
        }
        // An object's lock holder must be a transaction that could still
        // commit: locks are released on publish/unlock, so a lock held by a
        // finished transaction is a leak.
        for s in self.objs.iter() {
            if let Some(o) = &s.owned {
                if let Some(holder) = o.lock {
                    let finished_here = holder.node == self.me && self.tx_slot_free(holder.seq);
                    if finished_here {
                        out.push(format!(
                            "node {}: object {:?} locked by finished tx {:?}",
                            self.me, s.oid, holder
                        ));
                    }
                }
            }
        }
    }

    /// Whether the runtime slot for local sequence `seq` is empty (the
    /// transaction finished or never existed).
    fn tx_slot_free(&self, seq: u64) -> bool {
        if seq == 0 {
            return true;
        }
        let idx = (seq - 1) as usize;
        idx >= self.txs.len() || self.txs[idx].is_none()
    }

    // -- plumbing ----------------------------------------------------------

    fn delay_to(&self, to: u32) -> SimDuration {
        if to == self.me {
            LOCAL_HOP
        } else {
            self.topo.delay(ActorId(self.me), ActorId(to))
        }
    }

    fn send(&mut self, ctx: &mut NodeCtx<'_>, to: u32, msg: Msg) {
        let d = self.delay_to(to);
        self.send_delayed(ctx, to, msg, d);
    }

    /// Send with additional processing latency on top of the link delay.
    fn send_after(&mut self, ctx: &mut NodeCtx<'_>, to: u32, msg: Msg, extra: SimDuration) {
        let d = self.delay_to(to) + extra;
        self.send_delayed(ctx, to, msg, d);
    }

    /// Emit or buffer one outgoing message. With `cfg.cache` off this is a
    /// plain kernel send — the pre-coalescing behavior, untouched. With it
    /// on, same-handler messages to one destination with one latency
    /// accumulate in the outbox and leave together at handler exit.
    fn send_delayed(&mut self, ctx: &mut NodeCtx<'_>, to: u32, msg: Msg, d: SimDuration) {
        if !self.cfg.cache {
            ctx.send(ActorId(to), msg, d);
            return;
        }
        match self
            .outbox
            .iter_mut()
            .find(|(t, td, _)| *t == to && *td == d)
        {
            Some((_, _, buf)) => buf.push(msg),
            None => {
                let mut buf = self.outbox_pool.pop().unwrap_or_default();
                buf.push(msg);
                self.outbox.push((to, d, buf));
            }
        }
    }

    /// Drain the per-destination send buffers: a lone message goes out
    /// plainly, two or more to the same `(destination, latency)` leave as
    /// one [`Msg::Batch`] — one DES event instead of k. Groups flush in
    /// insertion order and messages within a group keep send order, so the
    /// schedule stays deterministic (and identical under sharding: a batch
    /// routes to a single actor like any message).
    fn flush_outbox(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.outbox.is_empty() {
            return;
        }
        let mut out = std::mem::take(&mut self.outbox);
        for (to, d, mut msgs) in out.drain(..) {
            if msgs.len() == 1 {
                let msg = msgs.pop().expect("length checked");
                ctx.send(ActorId(to), msg, d);
                self.outbox_pool.push(msgs);
            } else {
                ctx.send(ActorId(to), Msg::Batch(msgs), d);
            }
        }
        self.outbox = out;
    }

    /// Drop `oid`'s retained copy after validation proved it stale (failed
    /// version check or lock). No-op when nothing is retained, so callers
    /// need no `cfg.cache` guard.
    fn invalidate_cache(&mut self, oid: ObjectId) {
        if let Some(s) = self.objs.get_mut(oid) {
            if s.cache.take().is_some() {
                self.metrics.cache_invalidations += 1;
            }
        }
    }

    fn owner_guess(&self, oid: ObjectId) -> u32 {
        match self.objs.get(oid) {
            Some(s) if s.owned.is_some() => self.me,
            Some(s) => s.cached_owner.unwrap_or_else(|| oid.home(self.topo.n())),
            None => oid.home(self.topo.n()),
        }
    }

    fn local_cl(&mut self, oid: ObjectId, now: SimTime) -> u32 {
        match self.objs.get_mut(oid).and_then(|s| s.cl_window.as_mut()) {
            Some(w) => w.local_cl(now),
            None => 0,
        }
    }

    /// Record a request and return the object's local CL, in one table
    /// lookup — the pair runs back-to-back on every served object request,
    /// and separate calls paid the `ObjectId` hash twice.
    fn record_and_local_cl(&mut self, oid: ObjectId, now: SimTime, tx: TxId) -> u32 {
        let window = self.cfg.cl_window;
        let w = self
            .objs
            .ensure(oid)
            .cl_window
            .get_or_insert_with(|| ObjectClWindow::new(window));
        w.record(now, tx);
        w.local_cl(now)
    }

    // -- tx table ----------------------------------------------------------

    /// Remove and return the live runtime of `id`, if any. Foreign or
    /// unknown ids (stale messages after completion) yield `None`.
    #[inline]
    fn tx_take(&mut self, id: TxId) -> Option<TxRuntime> {
        if id.node != self.me {
            return None;
        }
        let i = (id.seq as usize).checked_sub(1)?;
        self.txs.get_mut(i)?.take()
    }

    /// Put a runtime taken via [`Node::tx_take`] back into its slot.
    #[inline]
    fn tx_put(&mut self, tx: TxRuntime) {
        let i = (tx.id.seq - 1) as usize;
        self.txs[i] = Some(tx);
    }

    // -- workload ----------------------------------------------------------

    /// Fill free transaction slots from the pending workload.
    fn pump(&mut self, ctx: &mut NodeCtx<'_>) {
        while self.active < self.cfg.concurrency_per_node {
            let Some(program) = self.pending.pop_front() else {
                return;
            };
            self.next_seq += 1;
            let id = TxId::new(self.me, self.next_seq);
            let kind = program.kind();
            let expected = self.stats.expected_commit_time(kind, ctx.now());
            let tx = TxRuntime::new(id, program, ctx.now(), expected, self.clock);
            self.active += 1;
            if self.ptrace.on() {
                self.ptrace.push(
                    ctx.now(),
                    self.me,
                    ProtoEvent::TxStart {
                        tx: id,
                        kind,
                        attempt: 0,
                    },
                );
            }
            let mut tx = tx;
            let finished = self.drive(ctx, &mut tx, DriveInput::Begin);
            // Every minted seq gets a slot (None when already finished) so
            // slot index stays `seq - 1`.
            debug_assert_eq!(self.txs.len() as u64 + 1, self.next_seq);
            self.txs.push(if finished { None } else { Some(tx) });
        }
    }

    // -- executor ----------------------------------------------------------

    /// Step the program until it blocks on the network/a timer or finishes.
    /// Returns `true` if the transaction reached a terminal commit (caller
    /// must not reinsert it).
    fn drive(&mut self, ctx: &mut NodeCtx<'_>, tx: &mut TxRuntime, first: DriveInput) -> bool {
        tx.phase = TxPhase::Running;
        let mut input = first;
        loop {
            let out = {
                let step_in = match &input {
                    DriveInput::Begin => StepInput::Begin,
                    DriveInput::Ack => StepInput::Ack,
                    DriveInput::Value(p) => StepInput::Value(p.as_ref()),
                };
                tx.program.step(step_in)
            };
            match out {
                StepOutput::Acquire(oid, mode) => {
                    if let Some(payload) = tx.access_held(oid, mode) {
                        input = DriveInput::Value(payload);
                        continue;
                    }
                    if self.cfg.cache {
                        match self.try_cached_open(ctx, tx, oid, mode) {
                            CacheOpen::Served(payload) => {
                                input = DriveInput::Value(payload);
                                continue;
                            }
                            CacheOpen::Revalidating => return false,
                            CacheOpen::Fetch => {}
                        }
                    }
                    let owner = self.owner_guess(oid);
                    let msg = Msg::ObjReq {
                        oid,
                        tx: tx.id,
                        attempt: tx.attempt,
                        mode,
                        ets: tx.ets(ctx.now()),
                        my_cl: tx.cl.my_cl(),
                        nested: tx.in_nested(),
                        reply_to: self.me,
                    };
                    self.send(ctx, owner, msg);
                    tx.attempt_msgs += 1;
                    tx.fetch_sent_at = ctx.now();
                    tx.phase = TxPhase::AwaitObject { oid, mode };
                    return false;
                }
                StepOutput::WriteLocal(oid, payload) => {
                    tx.write_local(oid, payload);
                    input = DriveInput::Ack;
                }
                StepOutput::Compute(d) => {
                    ctx.set_timer(
                        d,
                        Timer::ComputeDone {
                            tx: tx.id,
                            attempt: tx.attempt,
                        },
                    );
                    tx.phase = TxPhase::Computing;
                    return false;
                }
                StepOutput::OpenNested(kind) => {
                    if self.cfg.nesting == crate::config::NestingMode::Closed {
                        let snapshot = tx.program.clone_box();
                        tx.open_nested(kind, snapshot, ctx.now());
                        if self.ptrace.on() {
                            self.ptrace.push(
                                ctx.now(),
                                self.me,
                                ProtoEvent::NestedOpen {
                                    tx: tx.id,
                                    attempt: tx.attempt,
                                    level: tx.top() as u32,
                                    kind,
                                },
                            );
                        }
                    }
                    // Flat nesting: the delimiter is inlined — no level, no
                    // independent rollback; the code simply becomes part of
                    // the parent.
                    input = DriveInput::Ack;
                }
                StepOutput::CloseNested => {
                    if self.cfg.nesting == crate::config::NestingMode::Closed {
                        if self.ptrace.on() {
                            self.ptrace.push(
                                ctx.now(),
                                self.me,
                                ProtoEvent::NestedCommit {
                                    tx: tx.id,
                                    attempt: tx.attempt,
                                    level: tx.top() as u32,
                                },
                            );
                        }
                        tx.close_nested();
                        tx.nested_committed += 1;
                        self.metrics.nested_commits += 1;
                    }
                    input = DriveInput::Ack;
                }
                StepOutput::Finish => {
                    return self.start_commit(ctx, tx);
                }
            }
        }
    }

    /// How a cached open attempt resolved (see [`Node::try_cached_open`]).
    fn try_cached_open(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        tx: &mut TxRuntime,
        oid: ObjectId,
        mode: AccessMode,
    ) -> CacheOpen {
        let now = ctx.now();
        // A version above the transaction's write-version clock with objects
        // already held must go through transactional forwarding (early
        // validation), which only the messaging path performs.
        fn fwd_blocks(version: u64, tx: &TxRuntime) -> bool {
            version > tx.wv && tx.has_objects()
        }
        let Some(slot) = self.objs.get(oid) else {
            self.metrics.cache_misses += 1;
            return CacheOpen::Fetch;
        };
        if let Some(o) = &slot.owned {
            // Local fast path: the authoritative copy is here and unlocked —
            // serve it synchronously instead of bouncing an `ObjReq` and
            // `ObjResp` off ourselves (two DES events per local open). A
            // locked or forwarding-triggering copy takes the full path, so
            // conflict adjudication and early validation are unchanged.
            if o.is_locked() || fwd_blocks(o.version, tx) {
                return CacheOpen::Fetch;
            }
            let payload = Arc::clone(&o.payload);
            let version = o.version;
            // Mirror the owner-side bookkeeping of a served fetch.
            self.sched.list_mut(oid).remove_duplicate(tx.id);
            self.sched.gc(oid);
            let local_cl = self.record_and_local_cl(oid, now, tx.id);
            self.metrics.fetches_served += 1;
            self.metrics.cache_hits += 1;
            tx.wv = tx.wv.max(version);
            tx.install_fetched(oid, Arc::clone(&payload), version, local_cl, self.me, mode);
            return CacheOpen::Served(payload);
        }
        let Some(c) = &slot.cache else {
            self.metrics.cache_misses += 1;
            return CacheOpen::Fetch;
        };
        if mode == AccessMode::Read && self.clock <= c.owner_clock && !fwd_blocks(c.version, tx) {
            // Clock fast path: our TFA clock has not passed the owner's
            // clock at grant time, so no commit we have transitively heard
            // of can have overwritten the copy — reuse it with zero
            // messages. Still validated at commit like any working copy.
            self.metrics.cache_hits += 1;
            tx.wv = tx.wv.max(c.version);
            tx.reuse_cached(oid, c, mode);
            let payload = Arc::clone(&c.payload);
            return CacheOpen::Served(payload);
        }
        // Entry present but not provably current (or wanted for writing):
        // revalidate with a payload-free request. The owner falls back to
        // the full fetch path itself when the copy is stale, so this never
        // costs an extra round trip.
        let version = c.version;
        let owner = self.owner_guess(oid);
        let msg = Msg::VersionReq {
            oid,
            tx: tx.id,
            attempt: tx.attempt,
            mode,
            ets: tx.ets(now),
            my_cl: tx.cl.my_cl(),
            nested: tx.in_nested(),
            reply_to: self.me,
            version,
        };
        self.send(ctx, owner, msg);
        tx.attempt_msgs += 1;
        tx.fetch_sent_at = now;
        tx.phase = TxPhase::AwaitObject { oid, mode };
        CacheOpen::Revalidating
    }

    // -- commit protocol (requester side) -----------------------------------

    /// Begin the commit protocol. Returns `true` on synchronous commit.
    fn start_commit(&mut self, ctx: &mut NodeCtx<'_>, tx: &mut TxRuntime) -> bool {
        assert!(
            !tx.in_nested(),
            "Finish inside a nested level in {:?}",
            tx.id
        );
        tx.validation_started_at = Some(ctx.now());
        let mut summary = std::mem::take(&mut self.summary_buf);
        let mut write_back = std::mem::take(&mut self.wbs_buf);
        tx.write_back_set_into(&mut summary, &mut write_back);
        self.summary_buf = summary;
        if write_back.is_empty() {
            self.wbs_buf = write_back;
            // Read-only: validate the read set, then finalize.
            return self.begin_validation(ctx, tx, ValidationResume::Commit);
        }
        let mut pending = crate::small::ObjSet::new();
        for (oid, _payload, version, owner) in &write_back {
            pending.insert(*oid);
            let msg = Msg::LockReq {
                oid: *oid,
                tx: tx.id,
                attempt: tx.attempt,
                expect_version: *version,
                reply_to: self.me,
            };
            self.send(ctx, *owner, msg);
            tx.attempt_msgs += 1;
        }
        write_back.clear();
        self.wbs_buf = write_back;
        tx.phase = TxPhase::AwaitLocks {
            pending,
            granted: Vec::new(),
            failed: None,
        };
        false
    }

    /// Launch a version-check round over the held objects. For commit-time
    /// validation only clean objects are checked (dirty ones were validated
    /// by their locks). Returns `true` on synchronous completion (commit).
    fn begin_validation(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        tx: &mut TxRuntime,
        resume: ValidationResume,
    ) -> bool {
        let commit_mode = matches!(resume, ValidationResume::Commit);
        let mut pending = crate::small::ObjSet::new();
        let mut summary = std::mem::take(&mut self.summary_buf);
        tx.object_summary_into(&mut summary);
        for &(oid, version, owner, dirty, _mode) in &summary {
            if commit_mode && dirty {
                continue;
            }
            pending.insert(oid);
            let msg = Msg::VersionCheck {
                oid,
                tx: tx.id,
                attempt: tx.attempt,
                expect_version: version,
                reply_to: self.me,
            };
            self.send(ctx, owner, msg);
            tx.attempt_msgs += 1;
        }
        self.summary_buf = summary;
        if pending.is_empty() {
            return self.validation_succeeded(ctx, tx, resume);
        }
        tx.phase = TxPhase::AwaitValidation {
            pending,
            stale: Vec::new(),
            resume,
        };
        false
    }

    /// All version checks passed: resume whatever was suspended.
    fn validation_succeeded(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        tx: &mut TxRuntime,
        resume: ValidationResume,
    ) -> bool {
        match resume {
            ValidationResume::Deliver {
                oid,
                payload,
                version,
                local_cl,
                owner,
                mode,
            } => {
                tx.wv = tx.wv.max(version);
                tx.install_fetched(oid, Arc::clone(&payload), version, local_cl, owner, mode);
                self.drive(ctx, tx, DriveInput::Value(payload))
            }
            ValidationResume::Commit => self.publish_or_finalize(ctx, tx),
        }
    }

    /// Locks held (if any were needed) and reads validated: write back new
    /// versions, transferring ownership to this node. Returns `true` on
    /// synchronous commit.
    fn publish_or_finalize(&mut self, ctx: &mut NodeCtx<'_>, tx: &mut TxRuntime) -> bool {
        let mut summary = std::mem::take(&mut self.summary_buf);
        let mut write_back = std::mem::take(&mut self.wbs_buf);
        tx.write_back_set_into(&mut summary, &mut write_back);
        self.summary_buf = summary;
        if write_back.is_empty() {
            if self.ptrace.on() {
                self.record_commit_event(ctx.now(), tx, &write_back, 0);
            }
            self.wbs_buf = write_back;
            self.finalize_commit(ctx, tx);
            return true;
        }
        let new_version = self.clock.max(tx.wv) + 1;
        self.clock = new_version;
        if self.ptrace.on() {
            self.record_commit_event(ctx.now(), tx, &write_back, new_version);
        }
        let mut pending = crate::small::ObjSet::new();
        for (oid, payload, _version, owner) in write_back.drain(..) {
            if owner == self.me {
                // Local object: update in place and release.
                let o = self
                    .objs
                    .get_mut(oid)
                    .and_then(|s| s.owned.as_mut())
                    .expect("locked local object present");
                debug_assert_eq!(o.lock, Some(tx.id));
                o.payload = payload;
                o.version = new_version;
                o.unlock(tx.id);
                self.serve_queue(ctx, oid);
            } else {
                // Install the new authoritative copy here (the commit point);
                // the old owner will tombstone-forward future requests.
                let slot = self.objs.ensure(oid);
                slot.owned = Some(OwnedObject {
                    payload: Arc::clone(&payload),
                    version: new_version,
                    lock: None,
                });
                slot.cached_owner = None;
                // The authoritative copy supersedes any cached one.
                let invalidated = slot.cache.take().is_some();
                if invalidated {
                    self.metrics.cache_invalidations += 1;
                }
                self.metrics.objects_received += 1;
                if self.ptrace.on() {
                    self.ptrace.push(
                        ctx.now(),
                        self.me,
                        ProtoEvent::Migrate {
                            oid,
                            tx: tx.id,
                            from: owner,
                            to: self.me,
                            version: new_version,
                        },
                    );
                }
                pending.insert(oid);
                let msg = Msg::Publish {
                    oid,
                    tx: tx.id,
                    payload,
                    new_version,
                    new_owner: self.me,
                };
                self.send(ctx, owner, msg);
                tx.attempt_msgs += 1;
            }
        }
        self.wbs_buf = write_back;
        if pending.is_empty() {
            self.finalize_commit(ctx, tx);
            return true;
        }
        tx.phase = TxPhase::AwaitPublish { pending };
        false
    }

    /// Record the [`ProtoEvent::TxCommit`] span end at the serialization
    /// point: the full read footprint (object, version) and the write set
    /// (object, expected version, published version). Caller has checked
    /// `ptrace.on()`, so the `Vec` payloads only exist when tracing.
    fn record_commit_event(
        &mut self,
        now: SimTime,
        tx: &TxRuntime,
        write_back: &[(ObjectId, Arc<Payload>, u64, u32)],
        new_version: u64,
    ) {
        let reads = tx
            .object_summary()
            .into_iter()
            .map(|(oid, version, _owner, _dirty, _mode)| (oid, version))
            .collect();
        let writes = write_back
            .iter()
            .map(|&(oid, _, expect, _)| (oid, expect, new_version))
            .collect();
        self.ptrace.push(
            now,
            self.me,
            ProtoEvent::TxCommit {
                tx: tx.id,
                attempt: tx.attempt,
                nested_committed: tx.nested_committed,
                reads,
                writes,
            },
        );
    }

    /// Terminal commit bookkeeping. The caller must drop the transaction.
    fn finalize_commit(&mut self, ctx: &mut NodeCtx<'_>, tx: &mut TxRuntime) {
        let now = ctx.now();
        let exec = now.saturating_since(tx.attempt_started_at);
        let validation = now.saturating_since(
            tx.validation_started_at
                .expect("commit implies validation started"),
        );
        self.stats.record_commit(tx.kind, exec, validation);
        self.metrics.commits += 1;
        self.metrics.commit_latency.push_duration(exec);
        self.metrics
            .total_latency
            .push_duration(now.saturating_since(tx.first_started_at));
        self.metrics.commit_latency_hist.record_duration(exec);
        self.metrics
            .retries_per_commit
            .record(u64::from(tx.attempt));
        self.policy.on_commit(now);
        tx.phase = TxPhase::Done;
        self.active -= 1;
        self.completed += 1;
        if self.pending.is_empty() && self.active == 0 {
            self.done_at = Some(now);
        }
    }

    // -- aborts (requester side) --------------------------------------------

    /// Abort the whole transaction and schedule its retry. `backoff` > 0
    /// delays the restart (TFA+Backoff); zero restarts immediately.
    /// Never terminal: the transaction always retries.
    ///
    /// `oid` is the object the conflict was adjudicated on (the one this
    /// abort is blamed on) and `aggressor` the transaction holding its lock,
    /// when known — queue-timeout and validation aborts know the object but
    /// not the holder. Both feed the wasted-work ledger and the trace.
    fn abort_parent(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        tx: &mut TxRuntime,
        cause: AbortCause,
        backoff: SimDuration,
        oid: Option<ObjectId>,
        aggressor: Option<TxId>,
    ) {
        let wasted_ns = tx.wasted_ns_at(ctx.now());
        let msgs = tx.attempt_msgs;
        let acc = tx.abort_to_level(0);
        self.metrics.record_abort(cause);
        self.metrics
            .record_nested_aborts(NestedAbortCause::ParentAbort, acc.nested_parent);
        self.metrics
            .record_wasted_work(wasted_ns, msgs, aggressor.is_some(), acc.nested_parent);
        if let Some(blamed) = oid {
            // Per-object rollup (telemetry only; self-guarded one branch).
            self.telemetry.record_obj_waste(blamed, wasted_ns);
        }
        if self.ptrace.on() {
            self.ptrace.push(
                ctx.now(),
                self.me,
                ProtoEvent::TxAbort {
                    tx: tx.id,
                    attempt: tx.attempt,
                    cause,
                    nested_parent: acc.nested_parent,
                    backoff,
                    wasted_ns,
                    msgs,
                    oid,
                    aggressor,
                },
            );
        }
        // Even "immediate" retries carry a randomized delay that escalates
        // with the transaction's abort count. Two reasons, both rooted in
        // §II's requirement that the contention manager avoid livelocks:
        // (1) with exact virtual time, deterministic symmetric transactions
        // would re-collide in perfect lockstep forever; (2) two committers
        // whose write locks fail each other's read validation form an
        // *interactive* livelock that constant jitter cannot break — each
        // collision resets their relative phase — so the randomization range
        // must grow until one of them backs off past the other's cycle.
        let escalation_us = 50_000 * u64::from(tx.attempt.min(8));
        let jitter = SimDuration::from_micros(ctx.rng().below(2_000 + escalation_us));
        tx.phase = TxPhase::BackedOff;
        ctx.set_timer(
            backoff.max(LOCAL_HOP) + jitter,
            Timer::RetryBackoff {
                tx: tx.id,
                attempt: tx.attempt,
            },
        );
    }

    fn restart_now(&mut self, ctx: &mut NodeCtx<'_>, tx: &mut TxRuntime) {
        let now = ctx.now();
        let expected = self.stats.expected_commit_time(tx.kind, now);
        tx.restart(now, expected, self.clock);
        if self.ptrace.on() {
            self.ptrace.push(
                now,
                self.me,
                ProtoEvent::TxStart {
                    tx: tx.id,
                    kind: tx.kind,
                    attempt: tx.attempt,
                },
            );
        }
        // May commit synchronously (degenerate programs); `finalize_commit`
        // then leaves the phase at `Done` and callers drop the transaction.
        let _ = self.drive(ctx, tx, DriveInput::Begin);
    }

    /// Abort at `level` (a failed early validation): whole-transaction abort
    /// at level 0, child-only replay above. `oid` is the stale object the
    /// abort is blamed on (its lock holder is unknown on validation paths).
    fn abort_at_level(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        tx: &mut TxRuntime,
        level: usize,
        cause: AbortCause,
        oid: Option<ObjectId>,
    ) {
        if level == 0 {
            self.abort_parent(ctx, tx, cause, SimDuration::ZERO, oid, None);
            return;
        }
        let acc = tx.abort_to_level(level);
        self.metrics
            .record_nested_aborts(NestedAbortCause::Own, acc.nested_own);
        self.metrics
            .record_nested_aborts(NestedAbortCause::ParentAbort, acc.nested_parent);
        // Wasted-work ledger's view of the same rollback (reconciled against
        // the Table-I counters above by tests and `dstm-trace analyze`).
        self.metrics.wasted_nested_own += acc.nested_own;
        self.metrics.wasted_nested_parent += acc.nested_parent;
        if self.ptrace.on() {
            self.ptrace.push(
                ctx.now(),
                self.me,
                ProtoEvent::NestedAbort {
                    tx: tx.id,
                    attempt: tx.attempt,
                    level: level as u32,
                    own: acc.nested_own,
                    parent: acc.nested_parent,
                },
            );
        }
        // Replay the child: its snapshot was taken right after `OpenNested`,
        // so re-feeding the acknowledgement re-enters the child body. The
        // replay may even run to a synchronous commit if every object it
        // needs is already held by an ancestor level.
        let _ = self.drive(ctx, tx, DriveInput::Ack);
    }

    // -- owner side: fetches --------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn handle_obj_req(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        oid: ObjectId,
        txid: TxId,
        attempt: u32,
        mode: AccessMode,
        ets: rts_core::Ets,
        my_cl: u32,
        nested: bool,
        reply_to: u32,
    ) {
        let (owned_here, tombstone) = match self.objs.get(oid) {
            Some(s) => (s.owned.is_some(), s.tombstone),
            None => (false, None),
        };
        if !owned_here {
            // Not (any longer) the owner: forward along the ownership chain,
            // or — misrouted, which should be unreachable since caches start
            // at the home node and publishes always leave tombstones —
            // recover via home.
            let next = tombstone.unwrap_or_else(|| {
                debug_assert!(
                    oid.home(self.topo.n()) != self.me,
                    "home node lost object {oid:?} without a tombstone"
                );
                oid.home(self.topo.n())
            });
            self.metrics.forwarded_reqs += 1;
            let msg = Msg::ObjReq {
                oid,
                tx: txid,
                attempt,
                mode,
                ets,
                my_cl,
                nested,
                reply_to,
            };
            self.send(ctx, next, msg);
            return;
        }

        let now = ctx.now();
        let local_cl = self.record_and_local_cl(oid, now, txid);
        // The lock holder at adjudication time is the aggressor an eventual
        // abort is attributed to.
        let holder = self
            .objs
            .get(oid)
            .and_then(|s| s.owned.as_ref())
            .expect("checked")
            .lock;

        if holder.is_some() {
            self.metrics.fetch_conflicts += 1;
            if nested && self.cfg.conflict_scope == crate::config::ConflictScope::Child {
                // A child-level conflict is resolved by the closed-nesting
                // substrate (the child aborts and retries), not by the
                // transactional scheduler, which adjudicates parents only.
                let msg = Msg::ObjResp {
                    oid,
                    tx: txid,
                    attempt,
                    result: FetchResult::Conflict {
                        backoff: SimDuration::ZERO,
                        enqueued: false,
                        owner: self.me,
                        aggressor: None,
                    },
                };
                self.send(ctx, reply_to, msg);
                return;
            }
            let requester = Requester {
                node: reply_to,
                tx: txid,
                read_only: mode == AccessMode::Read,
                attempt,
                enqueued_at: now,
            };
            let cctx = ConflictCtx {
                now,
                oid,
                requester,
                ets,
                requester_cl: my_cl,
                local_cl,
                attempt,
            };
            let decision = self.policy.on_conflict(&cctx, &mut self.sched);
            if self.ptrace.on() {
                let explain = explain_decision(decision, self.policy.as_ref(), &self.sched, oid);
                let (verdict, chosen_backoff) = match decision {
                    Decision::Abort => (Verdict::Abort, SimDuration::ZERO),
                    Decision::AbortBackoff(b) => (Verdict::AbortBackoff, b),
                    Decision::Enqueue { backoff } => (Verdict::Enqueue, backoff),
                };
                let window_requests = self
                    .objs
                    .get_mut(oid)
                    .and_then(|s| s.cl_window.as_mut())
                    .map_or(0, |w| w.requests_in_window(now));
                self.ptrace.push(
                    now,
                    self.me,
                    ProtoEvent::SchedDecision {
                        oid,
                        tx: txid,
                        attempt,
                        local_cl,
                        requester_cl: my_cl,
                        window_requests,
                        executed: ets.executed_so_far(),
                        remaining: ets.expected_remaining(),
                        queue_depth: explain.queue_depth as u64,
                        bk: explain.bk,
                        threshold: explain.threshold,
                        verdict,
                        backoff: chosen_backoff,
                    },
                );
            }
            let result = match decision {
                Decision::Abort => FetchResult::Conflict {
                    backoff: SimDuration::ZERO,
                    enqueued: false,
                    owner: self.me,
                    aggressor: holder,
                },
                Decision::AbortBackoff(b) => FetchResult::Conflict {
                    backoff: b,
                    enqueued: false,
                    owner: self.me,
                    aggressor: holder,
                },
                Decision::Enqueue { backoff } => {
                    self.metrics.enqueued += 1;
                    FetchResult::Conflict {
                        backoff,
                        enqueued: true,
                        owner: self.me,
                        aggressor: holder,
                    }
                }
            };
            let msg = Msg::ObjResp {
                oid,
                tx: txid,
                attempt,
                result,
            };
            self.send(ctx, reply_to, msg);
            return;
        }

        // Free object: serve a copy. Drop any stale queue entry of this
        // transaction (it is getting the object through the normal path).
        self.sched.list_mut(oid).remove_duplicate(txid);
        self.sched.gc(oid);
        self.metrics.fetches_served += 1;
        let o = self
            .objs
            .get(oid)
            .and_then(|s| s.owned.as_ref())
            .expect("checked");
        let msg = Msg::ObjResp {
            oid,
            tx: txid,
            attempt,
            result: FetchResult::Granted {
                payload: Arc::clone(&o.payload),
                version: o.version,
                local_cl,
                owner: self.me,
                owner_clock: self.clock,
            },
        };
        self.send(ctx, reply_to, msg);
    }

    /// Owner side of cache revalidation: a [`Msg::VersionReq`] names the
    /// version the requester holds. Still current and unlocked → answer
    /// with a payload-free [`Msg::VersionAck`]; anything else delegates to
    /// the full fetch path, which replies with the payload or a scheduler
    /// verdict — the requester never pays a second round trip for a stale
    /// cache. Forwarded along tombstone chains exactly like `ObjReq`.
    #[allow(clippy::too_many_arguments)]
    fn handle_version_req(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        oid: ObjectId,
        txid: TxId,
        attempt: u32,
        mode: AccessMode,
        ets: rts_core::Ets,
        my_cl: u32,
        nested: bool,
        reply_to: u32,
        version: u64,
    ) {
        let (owned_here, tombstone) = match self.objs.get(oid) {
            Some(s) => (s.owned.is_some(), s.tombstone),
            None => (false, None),
        };
        if !owned_here {
            let next = tombstone.unwrap_or_else(|| oid.home(self.topo.n()));
            self.metrics.forwarded_reqs += 1;
            let msg = Msg::VersionReq {
                oid,
                tx: txid,
                attempt,
                mode,
                ets,
                my_cl,
                nested,
                reply_to,
                version,
            };
            self.send(ctx, next, msg);
            return;
        }
        let current = {
            let o = self
                .objs
                .get(oid)
                .and_then(|s| s.owned.as_ref())
                .expect("checked");
            o.version == version && !o.is_locked()
        };
        if !current {
            // Counted on the owner so a failed revalidation registers as a
            // miss exactly once (node metrics merge across the run).
            self.metrics.cache_misses += 1;
            self.handle_obj_req(ctx, oid, txid, attempt, mode, ets, my_cl, nested, reply_to);
            return;
        }
        let now = ctx.now();
        let local_cl = self.record_and_local_cl(oid, now, txid);
        self.sched.list_mut(oid).remove_duplicate(txid);
        self.sched.gc(oid);
        self.metrics.fetches_served += 1;
        let msg = Msg::VersionAck {
            oid,
            tx: txid,
            attempt,
            version,
            local_cl,
            owner: self.me,
            owner_clock: self.clock,
        };
        self.send(ctx, reply_to, msg);
    }

    /// Requester side of cache revalidation. A [`Msg::VersionAck`] confirms
    /// the cached copy is still the owner's current version: refresh its
    /// freshness metadata and deliver the cached payload through the regular
    /// grant path, exactly as if a full `ObjResp` had carried it. If the
    /// entry vanished meanwhile (a publish or failed validation raced the
    /// ack), fall back to a cold fetch — correctness never leans on the
    /// cache being populated.
    #[allow(clippy::too_many_arguments)]
    fn handle_version_ack(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        oid: ObjectId,
        txid: TxId,
        attempt: u32,
        version: u64,
        local_cl: u32,
        owner: u32,
        owner_clock: u64,
    ) {
        let refreshed = match self.objs.get_mut(oid).and_then(|s| s.cache.as_mut()) {
            Some(c) if c.version == version => {
                c.owner_clock = owner_clock;
                c.local_cl = local_cl;
                c.owner = owner;
                Some(Arc::clone(&c.payload))
            }
            _ => None,
        };
        if let Some(payload) = refreshed {
            self.metrics.cache_hits += 1;
            self.handle_obj_resp(
                ctx,
                oid,
                txid,
                attempt,
                FetchResult::Granted {
                    payload,
                    version,
                    local_cl,
                    owner,
                    owner_clock,
                },
            );
            return;
        }
        self.invalidate_cache(oid);
        let Some(mut tx) = self.tx_take(txid) else {
            return;
        };
        let mode = match tx.phase {
            TxPhase::AwaitObject { oid: o, mode } if o == oid && tx.attempt == attempt => {
                Some(mode)
            }
            _ => None,
        };
        if let Some(mode) = mode {
            let owner = self.owner_guess(oid);
            let msg = Msg::ObjReq {
                oid,
                tx: tx.id,
                attempt: tx.attempt,
                mode,
                ets: tx.ets(ctx.now()),
                my_cl: tx.cl.my_cl(),
                nested: tx.in_nested(),
                reply_to: self.me,
            };
            self.send(ctx, owner, msg);
            tx.attempt_msgs += 1;
            tx.fetch_sent_at = ctx.now();
        }
        self.tx_put(tx);
    }

    /// Serve queued requesters of a freshly released object: all consecutive
    /// readers at the head simultaneously, plus the first writer behind them
    /// (readers take no lock, so a trailing writer would otherwise only be
    /// woken by its own deadline).
    fn serve_queue(&mut self, ctx: &mut NodeCtx<'_>, oid: ObjectId) {
        let Some(o) = self.objs.get(oid).and_then(|s| s.owned.as_ref()) else {
            return;
        };
        if o.is_locked() {
            return;
        }
        let (payload, version) = (Arc::clone(&o.payload), o.version);
        let mut grants = std::mem::take(&mut self.grants_buf);
        grants.clear();
        let list = self.sched.list_mut(oid);
        list.pop_servable_into(&mut grants);
        if grants.first().is_some_and(|r| r.read_only) {
            list.pop_servable_into(&mut grants);
        }
        self.sched.gc(oid);
        if grants.is_empty() {
            self.grants_buf = grants;
            return;
        }
        let now = ctx.now();
        let local_cl = self.local_cl(oid, now);
        for r in grants.drain(..) {
            self.metrics.queue_served += 1;
            let wait = now.saturating_since(r.enqueued_at);
            self.metrics.queue_wait_hist.record_duration(wait);
            if self.ptrace.on() {
                self.ptrace.push(
                    now,
                    self.me,
                    ProtoEvent::QueueServed {
                        oid,
                        tx: r.tx,
                        attempt: r.attempt,
                        wait,
                    },
                );
            }
            let msg = Msg::ObjResp {
                oid,
                tx: r.tx,
                attempt: r.attempt,
                result: FetchResult::Granted {
                    payload: Arc::clone(&payload),
                    version,
                    local_cl,
                    owner: self.me,
                    owner_clock: self.clock,
                },
            };
            self.send(ctx, r.node, msg);
        }
        self.grants_buf = grants;
    }

    // -- owner side: commit participation -------------------------------------

    fn handle_lock_req(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        oid: ObjectId,
        txid: TxId,
        attempt: u32,
        expect_version: u64,
        reply_to: u32,
    ) {
        let granted = match self.objs.get_mut(oid).and_then(|s| s.owned.as_mut()) {
            None => false,
            Some(o) => o.version == expect_version && o.try_lock(txid),
        };
        let msg = Msg::LockResp {
            oid,
            tx: txid,
            attempt,
            granted,
        };
        if granted {
            // Global registration of object ownership is the slow part of a
            // distributed validation (§II); the object stays locked for it.
            let overhead = self.cfg.validation_overhead;
            self.send_after(ctx, reply_to, msg, overhead);
        } else {
            self.send(ctx, reply_to, msg);
        }
    }

    fn handle_unlock(&mut self, ctx: &mut NodeCtx<'_>, oid: ObjectId, txid: TxId) {
        if let Some(o) = self.objs.get_mut(oid).and_then(|s| s.owned.as_mut()) {
            if o.unlock(txid) {
                self.serve_queue(ctx, oid);
            }
        }
    }

    fn handle_publish(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: ActorId,
        oid: ObjectId,
        txid: TxId,
        new_owner: u32,
    ) {
        let slot = self
            .objs
            .get_mut(oid)
            .expect("publish must reach the locked owner");
        let o = slot
            .owned
            .take()
            .expect("publish must reach the locked owner");
        debug_assert_eq!(o.lock, Some(txid), "publish from a non-lock-holder");
        slot.tombstone = Some(new_owner);
        slot.cached_owner = Some(new_owner);
        slot.cl_window = None;
        // Ownership moved through this node: the committed write makes any
        // cached copy stale, and this node can no longer vouch for it.
        let invalidated = slot.cache.take().is_some();
        if invalidated {
            self.metrics.cache_invalidations += 1;
        }
        let queue = self.sched.list_mut(oid).drain_all();
        self.sched.gc(oid);
        let msg = Msg::PublishAck {
            oid,
            tx: txid,
            queue,
        };
        self.send(ctx, from.0, msg);
    }

    // -- requester side: responses -------------------------------------------

    fn handle_obj_resp(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        oid: ObjectId,
        txid: TxId,
        attempt: u32,
        result: FetchResult,
    ) {
        let Some(mut tx) = self.tx_take(txid) else {
            self.decline_if_granted(ctx, oid, txid, &result);
            return;
        };
        if tx.attempt != attempt {
            self.decline_if_granted(ctx, oid, txid, &result);
            self.tx_put(tx);
            return;
        }
        let wanted = match &tx.phase {
            TxPhase::AwaitObject { oid: o, mode } if *o == oid => Some((*mode, None)),
            TxPhase::AwaitQueuedObject {
                oid: o,
                mode,
                timer,
            } if *o == oid => Some((*mode, Some(*timer))),
            _ => None,
        };
        let Some((mode, timer)) = wanted else {
            self.decline_if_granted(ctx, oid, txid, &result);
            self.tx_put(tx);
            return;
        };
        if let Some(t) = timer {
            ctx.cancel_timer(t);
        }

        let finished = match result {
            FetchResult::Granted {
                payload,
                version,
                local_cl,
                owner,
                owner_clock,
            } => {
                let slot = self.objs.ensure(oid);
                slot.cached_owner = Some(owner);
                if self.cfg.cache && owner != self.me && slot.owned.is_none() {
                    // Retain the copy for clock-validated reuse. Valid even on
                    // the forwarding path below: forwarding re-validates the
                    // transaction, not the payload, which is current as of
                    // `owner_clock` either way.
                    slot.cache = Some(CachedCopy {
                        payload: Arc::clone(&payload),
                        version,
                        owner_clock,
                        local_cl,
                        owner,
                    });
                }
                self.clock = self.clock.max(version);
                self.metrics
                    .fetch_rtt_hist
                    .record_duration(ctx.now().saturating_since(tx.fetch_sent_at));
                if version > tx.wv && tx.has_objects() {
                    // Transactional forwarding: early-validate before
                    // advancing the transaction's clock (TFA §II).
                    if self.ptrace.on() {
                        self.ptrace.push(
                            ctx.now(),
                            self.me,
                            ProtoEvent::TxForward {
                                tx: txid,
                                attempt: tx.attempt,
                                oid,
                                wv_old: tx.wv,
                                wv_new: version,
                            },
                        );
                    }
                    self.begin_validation(
                        ctx,
                        &mut tx,
                        ValidationResume::Deliver {
                            oid,
                            payload,
                            version,
                            local_cl,
                            owner,
                            mode,
                        },
                    )
                } else {
                    tx.wv = tx.wv.max(version);
                    tx.install_fetched(oid, Arc::clone(&payload), version, local_cl, owner, mode);
                    self.drive(ctx, &mut tx, DriveInput::Value(payload))
                }
            }
            FetchResult::Conflict {
                backoff,
                enqueued: true,
                owner,
                aggressor: _,
            } => {
                if self.cfg.cache {
                    // The verdict names the real owner: heal the guess table
                    // so the retry skips the tombstone-forwarding chain.
                    self.objs.ensure(oid).cached_owner = Some(owner);
                }
                // RTS parked us in the owner's queue: stay live, bounded by
                // the (slack-adjusted) backoff deadline.
                let deadline = self.cfg.queue_deadline(backoff).max(LOCAL_HOP);
                let timer = ctx.set_timer(
                    deadline,
                    Timer::QueueDeadline {
                        tx: txid,
                        attempt: tx.attempt,
                        oid,
                    },
                );
                tx.phase = TxPhase::AwaitQueuedObject { oid, mode, timer };
                false
            }
            FetchResult::Conflict {
                backoff,
                enqueued: false,
                owner,
                aggressor,
            } => {
                if self.cfg.cache {
                    self.objs.ensure(oid).cached_owner = Some(owner);
                }
                if tx.in_nested() && self.cfg.conflict_scope == crate::config::ConflictScope::Child
                {
                    // Child-scoped contention management: the conflict aborts
                    // the innermost child alone; the parent (and committed
                    // siblings) survive. The child replays, re-fetching its
                    // own objects.
                    let level = tx.top();
                    let acc = tx.abort_to_level(level);
                    self.metrics
                        .record_nested_aborts(NestedAbortCause::Own, acc.nested_own);
                    self.metrics
                        .record_nested_aborts(NestedAbortCause::ParentAbort, acc.nested_parent);
                    self.metrics.wasted_nested_own += acc.nested_own;
                    self.metrics.wasted_nested_parent += acc.nested_parent;
                    self.metrics.child_conflict_retries += 1;
                    if self.ptrace.on() {
                        self.ptrace.push(
                            ctx.now(),
                            self.me,
                            ProtoEvent::NestedAbort {
                                tx: txid,
                                attempt: tx.attempt,
                                level: level as u32,
                                own: acc.nested_own,
                                parent: acc.nested_parent,
                            },
                        );
                    }
                    // Same symmetry-breaking jitter as parent retries.
                    let jitter = SimDuration::from_micros(ctx.rng().below(2_000));
                    tx.phase = TxPhase::ChildBackedOff;
                    ctx.set_timer(
                        backoff.max(LOCAL_HOP) + jitter,
                        Timer::RetryBackoff {
                            tx: txid,
                            attempt: tx.attempt,
                        },
                    );
                } else {
                    // Parent-level conflict: the whole transaction is the
                    // loser (TFA's second abort case / RTS's abort verdict).
                    self.abort_parent(
                        ctx,
                        &mut tx,
                        AbortCause::SchedulerAbort,
                        backoff,
                        Some(oid),
                        aggressor,
                    );
                }
                false
            }
        };
        if !finished && !matches!(tx.phase, TxPhase::Done) {
            self.tx_put(tx);
        }
        self.pump(ctx);
    }

    fn decline_if_granted(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        oid: ObjectId,
        txid: TxId,
        result: &FetchResult,
    ) {
        if let FetchResult::Granted { owner, .. } = result {
            let msg = Msg::ObjectDecline { oid, tx: txid };
            self.send(ctx, *owner, msg);
        }
    }

    fn handle_version_resp(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        oid: ObjectId,
        txid: TxId,
        attempt: u32,
        ok: bool,
    ) {
        let Some(mut tx) = self.tx_take(txid) else {
            return;
        };
        if tx.attempt != attempt {
            self.tx_put(tx);
            return;
        }
        let round_done = match &mut tx.phase {
            TxPhase::AwaitValidation { pending, stale, .. } => {
                pending.remove(&oid);
                if !ok {
                    // The owner reported a newer version: any cached copy of
                    // this object is stale by the same evidence.
                    self.invalidate_cache(oid);
                    stale.push(oid);
                }
                pending.is_empty()
            }
            _ => {
                self.tx_put(tx);
                return;
            }
        };
        let finished = if round_done {
            let phase = std::mem::replace(&mut tx.phase, TxPhase::Running);
            let TxPhase::AwaitValidation { stale, resume, .. } = phase else {
                unreachable!("matched above");
            };
            if stale.is_empty() {
                self.validation_succeeded(ctx, &mut tx, resume)
            } else {
                // Abort at the outermost level holding any stale object.
                let level = stale
                    .iter()
                    .filter_map(|o| tx.outermost_level_holding(*o))
                    .min()
                    .unwrap_or(0);
                let blamed = stale.first().copied();
                let cause = match resume {
                    ValidationResume::Deliver { .. } => AbortCause::ForwardValidation,
                    ValidationResume::Commit => {
                        // Commit-time read validation failed *after* the
                        // write-set locks were granted: release them or the
                        // owners stay locked forever.
                        for (goid, _payload, _version, owner) in tx.write_back_set() {
                            let msg = Msg::Unlock {
                                oid: goid,
                                tx: txid,
                            };
                            self.send(ctx, owner, msg);
                        }
                        AbortCause::CommitValidation
                    }
                };
                self.abort_at_level(ctx, &mut tx, level, cause, blamed);
                false
            }
        } else {
            false
        };
        if !finished && !matches!(tx.phase, TxPhase::Done) {
            self.tx_put(tx);
        }
        self.pump(ctx);
    }

    fn handle_lock_resp(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: ActorId,
        oid: ObjectId,
        txid: TxId,
        attempt: u32,
        granted: bool,
    ) {
        let Some(mut tx) = self.tx_take(txid) else {
            if granted {
                let msg = Msg::Unlock { oid, tx: txid };
                self.send(ctx, from.0, msg);
            }
            return;
        };
        if tx.attempt != attempt || !matches!(tx.phase, TxPhase::AwaitLocks { .. }) {
            if granted {
                let msg = Msg::Unlock { oid, tx: txid };
                self.send(ctx, from.0, msg);
            }
            self.tx_put(tx);
            return;
        }
        let round_done = {
            let TxPhase::AwaitLocks {
                pending,
                granted: acc,
                failed,
            } = &mut tx.phase
            else {
                unreachable!("checked above");
            };
            pending.remove(&oid);
            if granted {
                acc.push(oid);
            } else {
                // Denied either because the object moved on past our version
                // or because another writer holds it; in both cases the local
                // copy has no freshness claim left.
                self.invalidate_cache(oid);
                if failed.is_none() {
                    *failed = Some(oid);
                }
            }
            pending.is_empty()
        };
        let finished = if round_done {
            let phase = std::mem::replace(&mut tx.phase, TxPhase::Running);
            let TxPhase::AwaitLocks {
                granted: acc,
                failed,
                ..
            } = phase
            else {
                unreachable!("matched above");
            };
            if let Some(failed_oid) = failed {
                // Roll back granted locks, then abort (TFA's first abort
                // flavour: the write set went stale under us).
                for goid in acc {
                    let owner = tx
                        .lookup(goid)
                        .map(|c| c.owner)
                        .unwrap_or_else(|| self.owner_guess(goid));
                    let msg = Msg::Unlock {
                        oid: goid,
                        tx: txid,
                    };
                    self.send(ctx, owner, msg);
                }
                self.abort_parent(
                    ctx,
                    &mut tx,
                    AbortCause::CommitValidation,
                    SimDuration::ZERO,
                    Some(failed_oid),
                    None,
                );
                false
            } else {
                // Write set locked; validate the clean reads.
                self.begin_validation(ctx, &mut tx, ValidationResume::Commit)
            }
        } else {
            false
        };
        if !finished && !matches!(tx.phase, TxPhase::Done) {
            self.tx_put(tx);
        }
        self.pump(ctx);
    }

    fn handle_publish_ack(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        oid: ObjectId,
        txid: TxId,
        queue: Vec<Requester>,
    ) {
        // Adopt the transferred requester queue, then serve it from the new
        // authoritative copy (Algorithm 4's hand-off).
        if !queue.is_empty() {
            let list = self.sched.list_mut(oid);
            let contention = list.get_contention();
            for r in queue {
                list.add_requester(contention, r);
            }
        }
        self.serve_queue(ctx, oid);

        let Some(mut tx) = self.tx_take(txid) else {
            return;
        };
        let round_done = match &mut tx.phase {
            TxPhase::AwaitPublish { pending } => {
                pending.remove(&oid);
                pending.is_empty()
            }
            _ => {
                self.tx_put(tx);
                return;
            }
        };
        if round_done {
            self.finalize_commit(ctx, &mut tx);
        } else {
            self.tx_put(tx);
        }
        self.pump(ctx);
    }

    fn handle_decline(&mut self, ctx: &mut NodeCtx<'_>, oid: ObjectId) {
        self.metrics.queue_declined += 1;
        self.serve_queue(ctx, oid);
    }
}

impl Node {
    /// Message dispatch proper, separated from [`Actor::on_message`] so the
    /// coalesced-send buffer is flushed exactly once per handler activation
    /// even though several arms return early, and so [`Msg::Batch`] can
    /// re-enter dispatch for each folded message.
    fn dispatch_msg(&mut self, ctx: &mut NodeCtx<'_>, from: ActorId, msg: Msg) {
        match msg {
            Msg::StartWorkload => self.pump(ctx),
            Msg::ObjReq {
                oid,
                tx,
                attempt,
                mode,
                ets,
                my_cl,
                nested,
                reply_to,
            } => self.handle_obj_req(ctx, oid, tx, attempt, mode, ets, my_cl, nested, reply_to),
            Msg::ObjResp {
                oid,
                tx,
                attempt,
                result,
            } => self.handle_obj_resp(ctx, oid, tx, attempt, result),
            Msg::ObjectDecline { oid, .. } => self.handle_decline(ctx, oid),
            Msg::LockReq {
                oid,
                tx,
                attempt,
                expect_version,
                reply_to,
            } => self.handle_lock_req(ctx, oid, tx, attempt, expect_version, reply_to),
            Msg::LockResp {
                oid,
                tx,
                attempt,
                granted,
            } => self.handle_lock_resp(ctx, from, oid, tx, attempt, granted),
            Msg::Unlock { oid, tx } => self.handle_unlock(ctx, oid, tx),
            Msg::Publish {
                oid, tx, new_owner, ..
            } => self.handle_publish(ctx, from, oid, tx, new_owner),
            Msg::PublishAck { oid, tx, queue } => self.handle_publish_ack(ctx, oid, tx, queue),
            Msg::VersionCheck {
                oid,
                tx,
                attempt,
                expect_version,
                reply_to,
            } => {
                // Stale if the version moved, the object migrated away, or it
                // is mid-validation by someone else ("transactions that
                // request an object being validated must abort").
                let ok = match self.objs.get(oid).and_then(|s| s.owned.as_ref()) {
                    None => false,
                    Some(o) => {
                        o.version == expect_version && (o.lock.is_none() || o.lock == Some(tx))
                    }
                };
                let msg = Msg::VersionResp {
                    oid,
                    tx,
                    attempt,
                    ok,
                };
                self.send(ctx, reply_to, msg);
            }
            Msg::VersionResp {
                oid,
                tx,
                attempt,
                ok,
            } => self.handle_version_resp(ctx, oid, tx, attempt, ok),
            Msg::VersionReq {
                oid,
                tx,
                attempt,
                mode,
                ets,
                my_cl,
                nested,
                reply_to,
                version,
            } => self.handle_version_req(
                ctx, oid, tx, attempt, mode, ets, my_cl, nested, reply_to, version,
            ),
            Msg::VersionAck {
                oid,
                tx,
                attempt,
                version,
                local_cl,
                owner,
                owner_clock,
            } => self.handle_version_ack(
                ctx,
                oid,
                tx,
                attempt,
                version,
                local_cl,
                owner,
                owner_clock,
            ),
            Msg::Batch(msgs) => {
                // One DES event standing in for `msgs.len()` logical sends;
                // keep the ledger honest about what coalescing folded away.
                ctx.count_batched(msgs.len().saturating_sub(1) as u64);
                for m in msgs {
                    self.dispatch_msg(ctx, from, m);
                }
            }
        }
    }

    fn dispatch_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: Timer) {
        match timer {
            Timer::ComputeDone { tx: txid, attempt } => {
                let Some(mut tx) = self.tx_take(txid) else {
                    return;
                };
                if tx.attempt != attempt || !matches!(tx.phase, TxPhase::Computing) {
                    self.tx_put(tx);
                    return;
                }
                let finished = self.drive(ctx, &mut tx, DriveInput::Ack);
                if !finished && !matches!(tx.phase, TxPhase::Done) {
                    self.tx_put(tx);
                }
                self.pump(ctx);
            }
            Timer::QueueDeadline {
                tx: txid,
                attempt,
                oid,
            } => {
                let Some(mut tx) = self.tx_take(txid) else {
                    return;
                };
                let waiting = matches!(
                    &tx.phase,
                    TxPhase::AwaitQueuedObject { oid: o, .. } if *o == oid
                ) && tx.attempt == attempt;
                if waiting {
                    // The assigned backoff expired before the object arrived
                    // (Algorithm 2): abort and re-request as a new attempt.
                    // The awaited object is known; its holder is not.
                    self.abort_parent(
                        ctx,
                        &mut tx,
                        AbortCause::QueueTimeout,
                        SimDuration::ZERO,
                        Some(oid),
                        None,
                    );
                }
                if !matches!(tx.phase, TxPhase::Done) {
                    self.tx_put(tx);
                }
                self.pump(ctx);
            }
            Timer::RetryBackoff { tx: txid, attempt } => {
                let Some(mut tx) = self.tx_take(txid) else {
                    return;
                };
                if tx.attempt != attempt {
                    self.tx_put(tx);
                    return;
                }
                match tx.phase {
                    TxPhase::BackedOff => self.restart_now(ctx, &mut tx),
                    TxPhase::ChildBackedOff => {
                        // Replay the backed-off child level.
                        let _ = self.drive(ctx, &mut tx, DriveInput::Ack);
                    }
                    _ => {}
                }
                if !matches!(tx.phase, TxPhase::Done) {
                    self.tx_put(tx);
                }
                self.pump(ctx);
            }
        }
    }
}

impl Actor for Node {
    type Msg = Msg;
    type Timer = Timer;

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, from: ActorId, msg: Msg) {
        // Passive epoch sampling: one compare when telemetry is off.
        if self.telemetry.due(ctx.now()) {
            self.telemetry_flush(ctx.now());
        }
        self.dispatch_msg(ctx, from, msg);
        self.flush_outbox(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: Timer) {
        if self.telemetry.due(ctx.now()) {
            self.telemetry_flush(ctx.now());
        }
        self.dispatch_timer(ctx, timer);
        self.flush_outbox(ctx);
    }
}
