//! Per-transaction runtime state: closed-nesting contexts, working copies,
//! snapshots, and abort accounting.
//!
//! A live transaction is a stack of [`NestingLevel`]s. Level 0 is the
//! top-level (parent) transaction; `OpenNested` pushes a level and
//! `CloseNested` merges the top level into its parent (closed-nesting
//! semantics: *"the operations of I only become part of A when I
//! commits"*). Each level snapshots the program state at entry so an abort
//! of that level replays only that level's work.
//!
//! Object copies are **shadowed per level**: a child that touches an object
//! already held by an ancestor gets its own copy, so a child abort never
//! corrupts the ancestor's view.

use crate::object::Payload;
use crate::program::{AccessMode, BoxedProgram};
use crate::small::{ObjMap, ObjSet};
use dstm_sim::{SimTime, TimerToken};
use rts_core::{ClAccounting, Ets, ObjectId, TxId, TxKind};
use std::sync::Arc;

/// A fetched object copy inside a transaction.
///
/// The payload is shared copy-on-write: reads hand out `Arc` clones, and a
/// `WriteLocal` replaces the pointer with a freshly built payload, so
/// shadowing a copy into a nested level or merging it back up never deep-
/// clones object contents.
#[derive(Clone, Debug)]
pub struct WorkingCopy {
    pub payload: Arc<Payload>,
    /// Version observed at fetch time (validated at commit).
    pub version: u64,
    /// Strongest access mode so far.
    pub mode: AccessMode,
    /// Node the copy was fetched from (lock/publish/validation target).
    pub owner: u32,
    /// Whether the transaction overwrote the copy (publish set membership).
    pub dirty: bool,
    /// `true` for per-level shadows of an ancestor's copy (not fetched
    /// remotely by this level; releasing one must not release the CL
    /// accounting of the underlying fetch).
    pub shadow: bool,
}

/// One closed-nesting level.
pub struct NestingLevel {
    pub kind: TxKind,
    pub copies: ObjMap<WorkingCopy>,
    /// Program state at entry to this level; restored on retry of the level.
    pub snapshot: BoxedProgram,
    /// Nested transactions (recursively) already committed into this level.
    pub committed_children: u64,
    pub opened_at: SimTime,
}

/// Where the transaction currently is in its protocol state machine.
#[derive(Debug)]
pub enum TxPhase {
    /// Being stepped right now (transient inside the executor).
    Running,
    /// Waiting for a `ComputeDone` timer.
    Computing,
    /// Waiting for an `ObjResp` for `oid`.
    AwaitObject { oid: ObjectId, mode: AccessMode },
    /// Enqueued at the owner (RTS); waiting for the object or the deadline.
    AwaitQueuedObject {
        oid: ObjectId,
        mode: AccessMode,
        timer: TimerToken,
    },
    /// Waiting for `VersionResp`s of an early/commit validation round.
    AwaitValidation {
        pending: ObjSet,
        stale: Vec<ObjectId>,
        resume: ValidationResume,
    },
    /// Waiting for `LockResp`s on the write set. `failed` remembers the
    /// first object whose lock was refused — the object the eventual abort
    /// is attributed to.
    AwaitLocks {
        pending: ObjSet,
        granted: Vec<ObjectId>,
        failed: Option<ObjectId>,
    },
    /// Waiting for `PublishAck`s.
    AwaitPublish { pending: ObjSet },
    /// Aborted with a retry backoff; waiting for `RetryBackoff`.
    BackedOff,
    /// A child level aborted with a retry backoff; waiting for
    /// `RetryBackoff` to replay the child only.
    ChildBackedOff,
    /// Committed; kept only transiently before removal.
    Done,
}

/// What to do after a validation round succeeds.
#[derive(Debug)]
pub enum ValidationResume {
    /// Transactional forwarding: deliver the stashed fetched object.
    Deliver {
        oid: ObjectId,
        payload: Arc<Payload>,
        version: u64,
        local_cl: u32,
        owner: u32,
        mode: AccessMode,
    },
    /// Commit-time read-set validation: proceed to publish/finalize.
    Commit,
}

/// Result of rolling back (part of) a transaction — feeds Table I.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AbortAccounting {
    /// Nested aborts caused by their own conflict.
    pub nested_own: u64,
    /// Nested aborts caused by an ancestor's abort.
    pub nested_parent: u64,
    /// Whether the top level itself aborted.
    pub parent_aborted: bool,
}

/// Terminal state of a transaction attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxOutcome {
    Committed,
    Aborted,
}

/// The full runtime state of one live transaction.
pub struct TxRuntime {
    pub id: TxId,
    pub kind: TxKind,
    pub attempt: u32,
    /// The executing program.
    pub program: BoxedProgram,
    /// Pristine program for whole-transaction retries.
    pub pristine: BoxedProgram,
    pub levels: Vec<NestingLevel>,
    pub phase: TxPhase,
    /// First attempt's start (for end-to-end latency).
    pub first_started_at: SimTime,
    /// Current attempt's start (`ETS.s`).
    pub attempt_started_at: SimTime,
    /// `ETS.c` for the current attempt, from the stats table.
    pub expected_commit: SimTime,
    /// TFA write-version clock (forwarded on fetches).
    pub wv: u64,
    /// Requester-side CL accounting (`myCL`).
    pub cl: ClAccounting,
    /// Set when the commit protocol starts (stats-table validation sample).
    pub validation_started_at: Option<SimTime>,
    /// When the outstanding object fetch was sent (requester-side RTT
    /// sample; transactions have at most one fetch in flight).
    pub fetch_sent_at: SimTime,
    /// Closed-nested children merged over this transaction's lifetime
    /// (across attempts; mirrors the node-level `nested_commits` counter).
    pub nested_committed: u64,
    /// Protocol messages sent by the current attempt. Reset on restart;
    /// read at abort time to count the messages an abort discards
    /// (wasted-work accounting).
    pub attempt_msgs: u64,
    /// Spent [`NestingLevel`]s kept for reuse. `OpenNested`/`CloseNested`
    /// cycles are protocol-hot (several per commit in the nested
    /// benchmarks); recycling levels keeps their `copies` capacity, so the
    /// steady-state open/close path stops growing fresh vecs.
    spare_levels: Vec<NestingLevel>,
}

impl TxRuntime {
    pub fn new(
        id: TxId,
        program: BoxedProgram,
        now: SimTime,
        expected_commit: SimTime,
        wv: u64,
    ) -> Self {
        let kind = program.kind();
        let pristine = program.clone_box();
        let snapshot = program.clone_box();
        TxRuntime {
            id,
            kind,
            attempt: 0,
            program,
            pristine,
            levels: vec![NestingLevel {
                kind,
                copies: ObjMap::new(),
                snapshot,
                committed_children: 0,
                opened_at: now,
            }],
            phase: TxPhase::Running,
            first_started_at: now,
            attempt_started_at: now,
            expected_commit,
            wv,
            cl: ClAccounting::new(),
            validation_started_at: None,
            fetch_sent_at: SimTime::ZERO,
            nested_committed: 0,
            attempt_msgs: 0,
            spare_levels: Vec::new(),
        }
    }

    /// A level for `push`ing onto the nesting stack: recycles a spare when
    /// one exists (keeping its `copies` capacity), else builds one fresh.
    fn make_level(&mut self, kind: TxKind, snapshot: BoxedProgram, now: SimTime) -> NestingLevel {
        match self.spare_levels.pop() {
            Some(mut l) => {
                debug_assert!(l.copies.is_empty(), "spare level not cleared");
                l.kind = kind;
                l.snapshot = snapshot;
                l.committed_children = 0;
                l.opened_at = now;
                l
            }
            None => NestingLevel {
                kind,
                copies: ObjMap::new(),
                snapshot,
                committed_children: 0,
                opened_at: now,
            },
        }
    }

    /// Return a dead level to the spare pool, clearing its working set.
    fn retire_level(&mut self, mut level: NestingLevel) {
        level.copies.clear();
        self.spare_levels.push(level);
    }

    /// ETS timestamps for a request issued at `now` (Algorithm 2).
    pub fn ets(&self, now: SimTime) -> Ets {
        Ets::new(self.attempt_started_at, now, self.expected_commit)
    }

    /// Innermost level index.
    #[inline]
    pub fn top(&self) -> usize {
        self.levels.len() - 1
    }

    /// Whether the transaction is currently inside a nested child.
    #[inline]
    pub fn in_nested(&self) -> bool {
        self.levels.len() > 1
    }

    /// Find the innermost copy of `oid` (the view the program reads).
    pub fn lookup(&self, oid: ObjectId) -> Option<&WorkingCopy> {
        self.levels.iter().rev().find_map(|l| l.copies.get(&oid))
    }

    /// The *outermost* level holding `oid` — the level that must abort if
    /// the object turns out stale.
    pub fn outermost_level_holding(&self, oid: ObjectId) -> Option<usize> {
        self.levels.iter().position(|l| l.copies.contains_key(&oid))
    }

    /// Is `oid` held at any level?
    pub fn holds(&self, oid: ObjectId) -> bool {
        self.lookup(oid).is_some()
    }

    /// Prepare a local access to an already-held object in the current
    /// level: shadow-copy it up from an ancestor if needed, upgrade the
    /// mode, and return a shared handle to the payload for the program
    /// (a pointer bump — contents are copy-on-write).
    ///
    /// Returns `None` if the object is not held anywhere (a remote fetch is
    /// required).
    pub fn access_held(&mut self, oid: ObjectId, mode: AccessMode) -> Option<Arc<Payload>> {
        let top = self.top();
        if !self.levels[top].copies.contains_key(&oid) {
            // Shadow an ancestor's copy into the current level.
            let from_ancestor = self
                .levels
                .iter()
                .rev()
                .skip(1)
                .find_map(|l| l.copies.get(&oid))?
                .clone();
            let mut shadow = from_ancestor;
            shadow.shadow = true;
            self.levels[top].copies.insert(oid, shadow);
        }
        let copy = self.levels[top]
            .copies
            .get_mut(&oid)
            .expect("just ensured present");
        if mode == AccessMode::Write {
            copy.mode = AccessMode::Write;
        }
        Some(Arc::clone(&copy.payload))
    }

    /// Install a freshly fetched copy into the current level.
    pub fn install_fetched(
        &mut self,
        oid: ObjectId,
        payload: Arc<Payload>,
        version: u64,
        local_cl: u32,
        owner: u32,
        mode: AccessMode,
    ) {
        let top = self.top();
        self.levels[top].copies.insert(
            oid,
            WorkingCopy {
                payload,
                version,
                mode,
                owner,
                dirty: false,
                shadow: false,
            },
        );
        self.cl.object_received(oid, local_cl);
    }

    /// Install a cached read copy (`DstmConfig::cache`) into the current
    /// level. Identical to [`TxRuntime::install_fetched`] — a reused copy is
    /// a working copy like any other and goes through the same commit-time
    /// validation — but takes the retained [`CachedCopy`] directly.
    pub fn reuse_cached(
        &mut self,
        oid: ObjectId,
        cached: &crate::object::CachedCopy,
        mode: AccessMode,
    ) {
        self.install_fetched(
            oid,
            Arc::clone(&cached.payload),
            cached.version,
            cached.local_cl,
            cached.owner,
            mode,
        );
    }

    /// Apply a `WriteLocal`. The object must be held with write intent
    /// (benchmarks acquire before writing); it is shadowed into the current
    /// level if an ancestor holds it.
    pub fn write_local(&mut self, oid: ObjectId, payload: Payload) {
        let had = self.access_held(oid, AccessMode::Write);
        assert!(
            had.is_some(),
            "WriteLocal on {oid:?} which is not in the working set of {:?}",
            self.id
        );
        let top = self.top();
        let copy = self.levels[top].copies.get_mut(&oid).expect("shadowed");
        // Overwrite in place when this copy is the sole owner (the common
        // case after the first write): saves an Arc allocation per
        // `WriteLocal`. Shared payloads (fresh fetches, shadows of an
        // ancestor's copy) still get a fresh Arc, preserving copy-on-write.
        match Arc::get_mut(&mut copy.payload) {
            Some(p) => *p = payload,
            None => copy.payload = Arc::new(payload),
        }
        copy.dirty = true;
        copy.mode = AccessMode::Write;
    }

    /// Enter a closed-nested child. `snapshot` must be the program state
    /// *after* emitting `OpenNested` (re-feeding `Ack` replays the child).
    pub fn open_nested(&mut self, kind: TxKind, snapshot: BoxedProgram, now: SimTime) {
        let level = self.make_level(kind, snapshot, now);
        self.levels.push(level);
    }

    /// Commit the innermost child into its parent (closed nesting): its
    /// copies merge into the enclosing level; its committed-children count
    /// rolls up.
    ///
    /// Panics if called at top level (programs must balance Open/Close).
    pub fn close_nested(&mut self) {
        assert!(
            self.in_nested(),
            "CloseNested at top level in {:?}",
            self.id
        );
        let mut child = self.levels.pop().expect("len > 1");
        let parent = self.levels.last_mut().expect("parent exists");
        for (oid, copy) in child.copies.drain() {
            match parent.copies.get_mut(&oid) {
                Some(existing) => {
                    // The child's view is newer; mode/dirtiness accumulate.
                    existing.payload = copy.payload;
                    existing.dirty = existing.dirty || copy.dirty;
                    if copy.mode == AccessMode::Write {
                        existing.mode = AccessMode::Write;
                    }
                }
                None => {
                    // First fetched by the child; the parent inherits it
                    // (including CL accounting, which is per-transaction).
                    parent.copies.insert(oid, copy);
                }
            }
        }
        parent.committed_children += 1 + child.committed_children;
        self.retire_level(child);
    }

    /// Roll back levels `level..`, restoring the program snapshot of
    /// `level`. Releases CL accounting for fetches dropped with the rolled-
    /// back levels. Returns the Table-I accounting.
    ///
    /// `level == 0` is a whole-transaction abort.
    pub fn abort_to_level(&mut self, level: usize) -> AbortAccounting {
        assert!(level < self.levels.len());
        let mut acc = AbortAccounting::default();

        // Children already committed into any surviving-or-dying level at or
        // above `level` are destroyed by this rollback -> parent-abort cause.
        let committed_destroyed: u64 = self.levels[level..]
            .iter()
            .map(|l| l.committed_children)
            .sum();
        // In-flight nested levels strictly above `level` die because an
        // ancestor aborts -> parent-abort cause.
        let inflight_above = (self.levels.len() - 1 - level) as u64;
        acc.nested_parent = committed_destroyed + inflight_above;
        if level > 0 {
            // The aborting level itself is a nested transaction failing for
            // its own reasons.
            acc.nested_own = 1;
        } else {
            acc.parent_aborted = true;
        }

        // Release CL accounting for real fetches held by dying levels; keep
        // fetches owned by surviving ancestors (shadows release nothing).
        let mut dropped: Vec<ObjectId> = Vec::new();
        for l in &self.levels[level..] {
            for (oid, copy) in &l.copies {
                if !copy.shadow {
                    dropped.push(*oid);
                }
            }
        }
        while self.levels.len() > level + 1 {
            let dead = self.levels.pop().expect("level stack shrinking");
            self.retire_level(dead);
        }
        let retained = &mut self.levels[level];
        retained.copies.clear();
        retained.committed_children = 0;
        for oid in dropped {
            // An ancestor below `level` may still hold its own fetch of the
            // same oid; only release if nobody below holds it.
            if !self.levels[..level]
                .iter()
                .any(|l| l.copies.contains_key(&oid))
            {
                self.cl.object_released(oid);
            }
        }
        self.program = self.levels[level].snapshot.clone_box();
        acc
    }

    /// Reset for a fresh whole-transaction attempt.
    pub fn restart(&mut self, now: SimTime, expected_commit: SimTime, wv: u64) {
        self.attempt += 1;
        self.program = self.pristine.clone_box();
        let snapshot = self.pristine.clone_box();
        while let Some(dead) = self.levels.pop() {
            self.retire_level(dead);
        }
        let level = self.make_level(self.kind, snapshot, now);
        self.levels.push(level);
        self.phase = TxPhase::Running;
        self.attempt_started_at = now;
        self.expected_commit = expected_commit;
        self.wv = wv;
        self.cl.clear();
        self.validation_started_at = None;
        self.attempt_msgs = 0;
    }

    /// Virtual nanoseconds the current attempt has been running — the work
    /// an abort at `now` throws away.
    #[inline]
    pub fn wasted_ns_at(&self, now: SimTime) -> u64 {
        now.0.saturating_sub(self.attempt_started_at.0)
    }

    /// Does the transaction hold any object at any level? Allocation-free
    /// equivalent of `!object_summary().is_empty()`.
    #[inline]
    pub fn has_objects(&self) -> bool {
        self.levels.iter().any(|l| !l.copies.is_empty())
    }

    /// Distinct objects across all levels with their outermost fetch info:
    /// `(oid, version, owner, dirty_anywhere, mode_anywhere)`.
    pub fn object_summary(&self) -> Vec<(ObjectId, u64, u32, bool, AccessMode)> {
        let mut out = Vec::new();
        self.object_summary_into(&mut out);
        out
    }

    /// [`TxRuntime::object_summary`] into a caller-provided buffer, so hot
    /// paths reuse one allocation per node. Clears `out` first. The
    /// membership test scans `out` itself (it holds exactly the oids seen so
    /// far), replacing the old side `ObjSet`; working sets are a handful of
    /// objects, so the scan beats any auxiliary structure.
    pub fn object_summary_into(&self, out: &mut Vec<(ObjectId, u64, u32, bool, AccessMode)>) {
        out.clear();
        for l in &self.levels {
            for (oid, c) in &l.copies {
                match out.iter_mut().find(|e| e.0 == *oid) {
                    None => out.push((*oid, c.version, c.owner, c.dirty, c.mode)),
                    Some(entry) => {
                        entry.3 = entry.3 || c.dirty;
                        if c.mode == AccessMode::Write {
                            entry.4 = AccessMode::Write;
                        }
                    }
                }
            }
        }
        // Keys are distinct, so unstable sorting is deterministic.
        out.sort_unstable_by_key(|e| e.0);
    }

    /// The publish set: objects dirtied anywhere in the (merged) transaction
    /// with the payload of the innermost copy (shared, not deep-cloned).
    pub fn write_back_set(&self) -> Vec<(ObjectId, Arc<Payload>, u64, u32)> {
        let mut summary = Vec::new();
        let mut out = Vec::new();
        self.write_back_set_into(&mut summary, &mut out);
        out
    }

    /// [`TxRuntime::write_back_set`] into caller-provided buffers (`summary`
    /// is scratch for the object summary). Clears both first.
    pub fn write_back_set_into(
        &self,
        summary: &mut Vec<(ObjectId, u64, u32, bool, AccessMode)>,
        out: &mut Vec<(ObjectId, Arc<Payload>, u64, u32)>,
    ) {
        out.clear();
        self.object_summary_into(summary);
        for &(oid, version, owner, dirty, _mode) in summary.iter() {
            if dirty {
                let payload =
                    Arc::clone(&self.lookup(oid).expect("summarized object present").payload);
                out.push((oid, payload, version, owner));
            }
        }
    }

    /// Report on the total nested-transaction population of this attempt so
    /// far (committed children across live levels + live nested levels).
    pub fn live_nested_population(&self) -> u64 {
        let committed: u64 = self.levels.iter().map(|l| l.committed_children).sum();
        committed + (self.levels.len() as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ScriptOp, ScriptProgram};

    fn mk_tx() -> TxRuntime {
        let p = ScriptProgram::new(TxKind(1), vec![ScriptOp::Read(ObjectId(1))]);
        TxRuntime::new(
            TxId::new(0, 1),
            Box::new(p),
            SimTime(1_000),
            SimTime(50_000_000),
            0,
        )
    }

    fn install(tx: &mut TxRuntime, oid: u64, val: i64, mode: AccessMode) {
        tx.install_fetched(ObjectId(oid), Arc::new(Payload::Scalar(val)), 1, 0, 0, mode);
    }

    #[test]
    fn lookup_prefers_innermost() {
        let mut tx = mk_tx();
        install(&mut tx, 1, 10, AccessMode::Read);
        tx.open_nested(TxKind(2), tx.program.clone_box(), SimTime(2_000));
        // Child reads o1: gets a shadow of the parent's copy.
        let v = tx.access_held(ObjectId(1), AccessMode::Read).unwrap();
        assert_eq!(*v, Payload::Scalar(10));
        // Child writes its shadow.
        tx.write_local(ObjectId(1), Payload::Scalar(99));
        assert_eq!(
            *tx.lookup(ObjectId(1)).unwrap().payload,
            Payload::Scalar(99)
        );
        // Parent's own copy (level 0) is untouched.
        assert_eq!(
            *tx.levels[0].copies[&ObjectId(1)].payload,
            Payload::Scalar(10)
        );
    }

    #[test]
    fn child_abort_discards_shadow() {
        let mut tx = mk_tx();
        install(&mut tx, 1, 10, AccessMode::Write);
        tx.open_nested(TxKind(2), tx.program.clone_box(), SimTime(2_000));
        tx.write_local(ObjectId(1), Payload::Scalar(99));
        let acc = tx.abort_to_level(1);
        assert_eq!(acc.nested_own, 1);
        assert_eq!(acc.nested_parent, 0);
        assert!(!acc.parent_aborted);
        assert_eq!(
            *tx.lookup(ObjectId(1)).unwrap().payload,
            Payload::Scalar(10)
        );
        assert!(!tx.lookup(ObjectId(1)).unwrap().dirty);
        assert_eq!(tx.levels.len(), 2, "child level retained for retry");
    }

    #[test]
    fn child_commit_merges_into_parent() {
        let mut tx = mk_tx();
        install(&mut tx, 1, 10, AccessMode::Read);
        tx.open_nested(TxKind(2), tx.program.clone_box(), SimTime(2_000));
        // Child fetches a new object and updates the parent's one.
        install(&mut tx, 2, 20, AccessMode::Write);
        tx.write_local(ObjectId(2), Payload::Scalar(21));
        tx.write_local(ObjectId(1), Payload::Scalar(11));
        tx.close_nested();
        assert_eq!(tx.levels.len(), 1);
        assert_eq!(tx.levels[0].committed_children, 1);
        assert_eq!(
            *tx.lookup(ObjectId(1)).unwrap().payload,
            Payload::Scalar(11)
        );
        assert!(tx.lookup(ObjectId(1)).unwrap().dirty);
        assert_eq!(
            *tx.lookup(ObjectId(2)).unwrap().payload,
            Payload::Scalar(21)
        );
    }

    #[test]
    fn parent_abort_counts_committed_children() {
        let mut tx = mk_tx();
        // Two committed children, then one in-flight child.
        for oid in [10u64, 11] {
            tx.open_nested(TxKind(2), tx.program.clone_box(), SimTime(2_000));
            install(&mut tx, oid, 0, AccessMode::Write);
            tx.close_nested();
        }
        tx.open_nested(TxKind(2), tx.program.clone_box(), SimTime(3_000));
        let acc = tx.abort_to_level(0);
        assert!(acc.parent_aborted);
        assert_eq!(acc.nested_own, 0);
        assert_eq!(acc.nested_parent, 3, "2 committed + 1 in-flight");
        assert_eq!(tx.levels.len(), 1);
        assert!(tx.levels[0].copies.is_empty());
    }

    #[test]
    fn nested_child_abort_counts_grandchildren_as_parent_cause() {
        let mut tx = mk_tx();
        tx.open_nested(TxKind(2), tx.program.clone_box(), SimTime(2_000));
        // Grandchild commits into the child.
        tx.open_nested(TxKind(3), tx.program.clone_box(), SimTime(2_500));
        tx.close_nested();
        assert_eq!(tx.levels[1].committed_children, 1);
        // Child aborts for its own reasons.
        let acc = tx.abort_to_level(1);
        assert_eq!(acc.nested_own, 1);
        assert_eq!(acc.nested_parent, 1, "grandchild died with its parent");
    }

    #[test]
    fn cl_released_on_abort_unless_held_below() {
        let mut tx = mk_tx();
        install(&mut tx, 1, 10, AccessMode::Read); // parent fetch, CL 0
        tx.cl.object_received(ObjectId(1), 2);
        tx.open_nested(TxKind(2), tx.program.clone_box(), SimTime(2_000));
        install(&mut tx, 2, 20, AccessMode::Read);
        tx.cl.object_received(ObjectId(2), 3);
        assert_eq!(tx.cl.my_cl(), 5);
        tx.abort_to_level(1);
        assert_eq!(tx.cl.my_cl(), 2, "child fetch released, parent fetch kept");
    }

    #[test]
    fn write_back_set_dedups_and_uses_innermost_payload() {
        let mut tx = mk_tx();
        install(&mut tx, 1, 10, AccessMode::Write);
        tx.write_local(ObjectId(1), Payload::Scalar(11));
        tx.open_nested(TxKind(2), tx.program.clone_box(), SimTime(2_000));
        tx.write_local(ObjectId(1), Payload::Scalar(12));
        let wbs = tx.write_back_set();
        assert_eq!(wbs.len(), 1);
        assert_eq!(*wbs[0].1, Payload::Scalar(12));
    }

    #[test]
    fn restart_resets_everything() {
        let mut tx = mk_tx();
        install(&mut tx, 1, 10, AccessMode::Write);
        tx.open_nested(TxKind(2), tx.program.clone_box(), SimTime(2_000));
        tx.attempt_msgs = 9;
        assert_eq!(tx.wasted_ns_at(SimTime(4_500)), 3_500);
        tx.restart(SimTime(5_000), SimTime(60_000_000), 7);
        assert_eq!(tx.attempt, 1);
        assert_eq!(tx.attempt_msgs, 0);
        assert_eq!(tx.levels.len(), 1);
        assert!(tx.levels[0].copies.is_empty());
        assert_eq!(tx.wv, 7);
        assert_eq!(tx.cl.my_cl(), 0);
        assert_eq!(tx.attempt_started_at, SimTime(5_000));
    }

    #[test]
    fn ets_reflects_attempt_times() {
        let mut tx = mk_tx();
        tx.restart(SimTime(10_000_000), SimTime(70_000_000), 0);
        let ets = tx.ets(SimTime(30_000_000));
        assert_eq!(ets.executed_so_far().as_millis(), 20);
        assert_eq!(ets.expected_remaining().as_millis(), 40);
    }

    #[test]
    fn object_summary_merges_modes() {
        let mut tx = mk_tx();
        install(&mut tx, 1, 10, AccessMode::Read);
        tx.open_nested(TxKind(2), tx.program.clone_box(), SimTime(2_000));
        tx.write_local(ObjectId(1), Payload::Scalar(11));
        let summary = tx.object_summary();
        assert_eq!(summary.len(), 1);
        let (oid, _v, _o, dirty, mode) = summary[0];
        assert_eq!(oid, ObjectId(1));
        assert!(dirty);
        assert_eq!(mode, AccessMode::Write);
    }
}
