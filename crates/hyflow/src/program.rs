//! Transactions as resumable state machines.
//!
//! The benchmarks of §IV perform data-dependent access sequences (list and
//! tree traversals decide the next object from the last value read), so a
//! transaction cannot be a static access list; and a deterministic
//! discrete-event simulator cannot block a thread per transaction. The
//! compromise is a **resumable program**: the executor calls
//! [`TxProgram::step`] with the result of the previous operation and the
//! program replies with its next operation.
//!
//! Retry is handled by snapshots: programs are cloneable, the executor
//! keeps a pristine clone per nesting level, and an abort restores the
//! clone and replays the level — whole-transaction replay on parent aborts,
//! inner-level replay only on closed-nested child aborts.

use crate::object::Payload;
use dstm_sim::SimDuration;
use rts_core::{ObjectId, TxKind};

/// Read or write intent for an object acquisition. In TFA both return a
/// copy optimistically; write intent additionally puts the object in the
/// commit-time lock/publish set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessMode {
    Read,
    Write,
}

/// What the executor feeds the program on each step.
#[derive(Debug)]
pub enum StepInput<'a> {
    /// First step of a (re)started transaction attempt.
    Begin,
    /// The payload produced by the previous `Acquire` (a view of the
    /// transaction's working copy).
    Value(&'a Payload),
    /// The previous operation (`WriteLocal`, `Compute`, `OpenNested`,
    /// `CloseNested`) completed.
    Ack,
}

/// What the program asks the executor to do next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutput {
    /// Fetch an object into the working set (remote round-trip unless the
    /// object is already held).
    Acquire(ObjectId, AccessMode),
    /// Overwrite the working copy of an object previously acquired with
    /// write intent. Local, immediate.
    WriteLocal(ObjectId, Payload),
    /// Consume local execution time (the γ of the analysis).
    Compute(SimDuration),
    /// Begin a closed-nested child transaction of the given kind.
    OpenNested(TxKind),
    /// Commit the innermost child into its parent.
    CloseNested,
    /// The (top-level) transaction is ready to commit.
    Finish,
}

/// A resumable transaction body.
pub trait TxProgram: Send {
    /// The transaction's kind, keying the stats table.
    fn kind(&self) -> TxKind;

    /// Advance the program. `input` carries the result of the previously
    /// requested operation ([`StepInput::Begin`] on the first call of an
    /// attempt).
    fn step(&mut self, input: StepInput<'_>) -> StepOutput;

    /// Clone the program state (for retry snapshots).
    fn clone_box(&self) -> Box<dyn TxProgram>;

    /// Human-readable label for traces.
    fn label(&self) -> &'static str {
        "tx"
    }

    /// Append the objects this program is statically known to access —
    /// the **access profile** the locality partitioner feeds on
    /// (`SystemBuilder` collects hints before the run and co-locates each
    /// requester with the homes of its hinted objects). Duplicates are
    /// welcome: each occurrence adds affinity weight. Data-dependent
    /// programs (tree/list traversals) that cannot enumerate their accesses
    /// up front may leave this empty — the partitioner then falls back to
    /// load balancing for their node. Must not depend on execution state:
    /// hints are taken from the pristine program before it first steps.
    fn access_hint(&self, _out: &mut Vec<ObjectId>) {}
}

/// Owned, cloneable program handle.
pub type BoxedProgram = Box<dyn TxProgram>;

impl Clone for BoxedProgram {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ---------------------------------------------------------------------------
// Script programs: a straight-line DSL used by unit tests and scenarios
// ---------------------------------------------------------------------------

/// One scripted operation (see [`ScriptProgram`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptOp {
    Read(ObjectId),
    Write(ObjectId),
    /// Add `delta` to a previously acquired `Scalar` object.
    AddScalar(ObjectId, i64),
    /// Overwrite a previously write-acquired object.
    Set(ObjectId, Payload),
    Compute(SimDuration),
    OpenNested(TxKind),
    CloseNested,
}

/// A transaction that replays a fixed list of operations — data-independent,
/// which is exactly what the scripted scenario reproductions (Figs. 2–3) and
/// many unit tests need.
///
/// The op list is immutable after construction and shared behind an `Arc`:
/// `clone_box` runs on every nested `OpenNested` (level snapshot) and every
/// whole-transaction retry, so a deep `Vec<ScriptOp>` clone there was a
/// measurable slice of protocol-layer time for the script-driven benchmarks
/// (Bank, Vacation). Only the cursor (`pc`) and scalar register are per-copy.
#[derive(Clone, Debug)]
pub struct ScriptProgram {
    kind: TxKind,
    ops: std::sync::Arc<[ScriptOp]>,
    pc: usize,
    /// Last value read (used by `AddScalar`).
    last_scalar: i64,
}

impl ScriptProgram {
    pub fn new(kind: TxKind, ops: Vec<ScriptOp>) -> Self {
        ScriptProgram {
            kind,
            ops: ops.into(),
            pc: 0,
            last_scalar: 0,
        }
    }
}

impl TxProgram for ScriptProgram {
    fn kind(&self) -> TxKind {
        self.kind
    }

    fn step(&mut self, input: StepInput<'_>) -> StepOutput {
        if let StepInput::Value(Payload::Scalar(v)) = input {
            self.last_scalar = *v;
        }
        let op = match self.ops.get(self.pc) {
            None => return StepOutput::Finish,
            Some(op) => op.clone(),
        };
        self.pc += 1;
        match op {
            ScriptOp::Read(oid) => StepOutput::Acquire(oid, AccessMode::Read),
            ScriptOp::Write(oid) => StepOutput::Acquire(oid, AccessMode::Write),
            ScriptOp::AddScalar(oid, delta) => {
                StepOutput::WriteLocal(oid, Payload::Scalar(self.last_scalar + delta))
            }
            ScriptOp::Set(oid, payload) => StepOutput::WriteLocal(oid, payload),
            ScriptOp::Compute(d) => StepOutput::Compute(d),
            ScriptOp::OpenNested(kind) => StepOutput::OpenNested(kind),
            ScriptOp::CloseNested => StepOutput::CloseNested,
        }
    }

    fn clone_box(&self) -> Box<dyn TxProgram> {
        Box::new(self.clone())
    }

    fn label(&self) -> &'static str {
        "script"
    }

    fn access_hint(&self, out: &mut Vec<ObjectId>) {
        // Only `Acquire`-producing ops fetch objects; `AddScalar`/`Set`
        // mutate working copies that an earlier Read/Write already pulled.
        for op in self.ops.iter() {
            match op {
                ScriptOp::Read(oid) | ScriptOp::Write(oid) => out.push(*oid),
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Program combinators
// ---------------------------------------------------------------------------

/// Wraps a program with a **parent-level trailing access**: after the inner
/// program finishes (all its nested children committed), the transaction
/// touches one more object at top level — a read, or a scalar increment.
///
/// This is the shape of the paper's Fig. 1 (`T1` accesses `z` at top level
/// *after* its nested `T1-1` commits): a conflict on the trailing access
/// puts the whole parent — and every committed child — at stake, which is
/// exactly the situation RTS's enqueue-instead-of-abort protects.
#[derive(Clone)]
pub struct WithTrailer {
    inner: BoxedProgram,
    oid: ObjectId,
    /// `Some(delta)` increments the scalar (write access); `None` reads.
    delta: Option<i64>,
    st: TrailerSt,
    last_scalar: i64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TrailerSt {
    Inner,
    Value,
    Written,
    Done,
}

impl WithTrailer {
    pub fn new(inner: BoxedProgram, oid: ObjectId, delta: Option<i64>) -> Self {
        WithTrailer {
            inner,
            oid,
            delta,
            st: TrailerSt::Inner,
            last_scalar: 0,
        }
    }
}

impl TxProgram for WithTrailer {
    fn kind(&self) -> TxKind {
        self.inner.kind()
    }

    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn clone_box(&self) -> BoxedProgram {
        Box::new(self.clone())
    }

    fn access_hint(&self, out: &mut Vec<ObjectId>) {
        self.inner.access_hint(out);
        out.push(self.oid);
    }

    fn step(&mut self, input: StepInput<'_>) -> StepOutput {
        match self.st {
            TrailerSt::Inner => {
                let out = self.inner.step(input);
                if out == StepOutput::Finish {
                    self.st = TrailerSt::Value;
                    let mode = if self.delta.is_some() {
                        AccessMode::Write
                    } else {
                        AccessMode::Read
                    };
                    StepOutput::Acquire(self.oid, mode)
                } else {
                    out
                }
            }
            TrailerSt::Value => {
                if let StepInput::Value(Payload::Scalar(v)) = input {
                    self.last_scalar = *v;
                }
                match self.delta {
                    Some(d) => {
                        self.st = TrailerSt::Written;
                        StepOutput::WriteLocal(self.oid, Payload::Scalar(self.last_scalar + d))
                    }
                    None => {
                        self.st = TrailerSt::Done;
                        StepOutput::Finish
                    }
                }
            }
            TrailerSt::Written | TrailerSt::Done => {
                self.st = TrailerSt::Done;
                StepOutput::Finish
            }
        }
    }
}

/// Shorthand builder: a script that increments a set of scalars, each in a
/// nested child transaction — the canonical closed-nesting workload shape
/// from the paper's Fig. 1 example.
pub fn nested_increments(kind: TxKind, child_kind: TxKind, oids: &[ObjectId]) -> ScriptProgram {
    let mut ops = Vec::new();
    for &oid in oids {
        ops.push(ScriptOp::OpenNested(child_kind));
        ops.push(ScriptOp::Write(oid));
        ops.push(ScriptOp::AddScalar(oid, 1));
        ops.push(ScriptOp::CloseNested);
    }
    ScriptProgram::new(kind, ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_replays_ops_in_order() {
        let mut p = ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::Read(ObjectId(1)),
                ScriptOp::AddScalar(ObjectId(1), 5),
                ScriptOp::Compute(SimDuration::from_micros(10)),
            ],
        );
        assert_eq!(
            p.step(StepInput::Begin),
            StepOutput::Acquire(ObjectId(1), AccessMode::Read)
        );
        let v = Payload::Scalar(37);
        assert_eq!(
            p.step(StepInput::Value(&v)),
            StepOutput::WriteLocal(ObjectId(1), Payload::Scalar(42))
        );
        assert_eq!(
            p.step(StepInput::Ack),
            StepOutput::Compute(SimDuration::from_micros(10))
        );
        assert_eq!(p.step(StepInput::Ack), StepOutput::Finish);
        assert_eq!(
            p.step(StepInput::Ack),
            StepOutput::Finish,
            "idempotent at end"
        );
    }

    #[test]
    fn clone_box_snapshots_state() {
        let mut p = ScriptProgram::new(
            TxKind(1),
            vec![ScriptOp::Read(ObjectId(1)), ScriptOp::Read(ObjectId(2))],
        );
        let snapshot = p.clone_box();
        let _ = p.step(StepInput::Begin);
        let _ = p.step(StepInput::Value(&Payload::Scalar(0)));
        // The snapshot still starts from the beginning.
        let mut restored = snapshot.clone_box();
        assert_eq!(
            restored.step(StepInput::Begin),
            StepOutput::Acquire(ObjectId(1), AccessMode::Read)
        );
    }

    #[test]
    fn trailer_appends_parent_level_write() {
        let inner = ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::OpenNested(TxKind(2)),
                ScriptOp::Read(ObjectId(1)),
                ScriptOp::CloseNested,
            ],
        );
        let mut p = WithTrailer::new(Box::new(inner), ObjectId(9), Some(2));
        assert_eq!(p.step(StepInput::Begin), StepOutput::OpenNested(TxKind(2)));
        assert_eq!(
            p.step(StepInput::Ack),
            StepOutput::Acquire(ObjectId(1), AccessMode::Read)
        );
        let v = Payload::Scalar(0);
        assert_eq!(p.step(StepInput::Value(&v)), StepOutput::CloseNested);
        // Inner finished -> trailing parent-level acquire.
        assert_eq!(
            p.step(StepInput::Ack),
            StepOutput::Acquire(ObjectId(9), AccessMode::Write)
        );
        let s = Payload::Scalar(40);
        assert_eq!(
            p.step(StepInput::Value(&s)),
            StepOutput::WriteLocal(ObjectId(9), Payload::Scalar(42))
        );
        assert_eq!(p.step(StepInput::Ack), StepOutput::Finish);
        assert_eq!(p.kind(), TxKind(1));
    }

    #[test]
    fn trailer_read_only() {
        let inner = ScriptProgram::new(TxKind(1), vec![]);
        let mut p = WithTrailer::new(Box::new(inner), ObjectId(9), None);
        assert_eq!(
            p.step(StepInput::Begin),
            StepOutput::Acquire(ObjectId(9), AccessMode::Read)
        );
        let v = Payload::Scalar(5);
        assert_eq!(p.step(StepInput::Value(&v)), StepOutput::Finish);
    }

    #[test]
    fn nested_increments_shape() {
        let mut p = nested_increments(TxKind(1), TxKind(2), &[ObjectId(7), ObjectId(8)]);
        assert_eq!(p.step(StepInput::Begin), StepOutput::OpenNested(TxKind(2)));
        assert_eq!(
            p.step(StepInput::Ack),
            StepOutput::Acquire(ObjectId(7), AccessMode::Write)
        );
        let v = Payload::Scalar(10);
        assert_eq!(
            p.step(StepInput::Value(&v)),
            StepOutput::WriteLocal(ObjectId(7), Payload::Scalar(11))
        );
        assert_eq!(p.step(StepInput::Ack), StepOutput::CloseNested);
        assert_eq!(p.step(StepInput::Ack), StepOutput::OpenNested(TxKind(2)));
    }
}
