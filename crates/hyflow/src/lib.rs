//! # hyflow-dstm — a dataflow D-STM substrate (HyFlow/TFA rebuilt in Rust)
//!
//! This crate implements the entire distributed software transactional
//! memory stack the paper's scheduler runs on, following Herlihy & Sun's
//! **dataflow model**: transactions are immobile, objects migrate to the
//! node of the committing writer, and a cache-coherence protocol locates the
//! single writable copy.
//!
//! The pieces:
//!
//! * [`object`] — versioned shared objects and their payloads;
//! * [`program`] — transactions as **resumable state machines**
//!   ([`program::TxProgram`]): benchmarks emit `Acquire` / `WriteLocal` /
//!   `Compute` / `OpenNested` / `CloseNested` / `Finish` steps and the
//!   executor drives them, which lets one deterministic event loop run
//!   thousands of concurrent transactions without threads;
//! * [`message`] — the wire protocol: object fetch with ETS + `myCL`
//!   (Algorithms 2–3), lock/validate/publish commit, version checks,
//!   ownership forwarding;
//! * [`tx`] — per-transaction runtime state: the closed-nesting context
//!   stack, working copies, program snapshots for partial rollback;
//! * [`node`] — the per-node TM proxy actor: object store, tombstone-chain
//!   cache coherence, the **TFA** protocol (node clocks, transactional
//!   forwarding, early validation), the commit protocol, and the
//!   owner-side conflict path that consults an `rts_core` scheduler;
//! * [`metrics`] — commit/abort accounting, including the nested-abort
//!   cause split that Table I reports;
//! * [`telemetry`] — time-resolved observability: the passive epoch
//!   sampler and per-object wasted-work rollup (off by default behind the
//!   same one-branch guard discipline as protocol tracing);
//! * [`config`] — knobs (scheduler kind, CL threshold, windows, estimates);
//! * [`system`] — builds a [`dstm_sim::World`] of nodes over a
//!   [`dstm_net::Topology`], seeds the workload, runs it, aggregates.
//!
//! ## Cache-coherence protocol
//!
//! Ownership moves at commit time (writer's node becomes the owner). Every
//! node caches a last-known owner per object (seeded with the initial
//! placement); a node that no longer owns an object keeps a **tombstone**
//! pointing at the node it published to and forwards requests along the
//! chain, which always terminates at the current owner (each hop is
//! strictly newer). Responses carry the current owner so caches heal. This
//! satisfies the paper's two CC requirements (§II): requests reach a valid
//! copy in finite time, and there is exactly one writable copy.

pub mod config;
pub mod message;
pub mod metrics;
pub mod node;
pub mod object;
pub mod program;
pub mod small;
pub mod system;
pub mod telemetry;
pub mod trace;
pub mod tx;

pub use config::{ConflictScope, DstmConfig, NestingMode, QueueBackend};
pub use message::{FetchResult, Msg, Timer};
pub use metrics::{AbortCause, HistSummary, NestedAbortCause, NodeMetrics, RunMetrics};
pub use node::Node;
pub use object::{CachedCopy, OwnedObject, Payload};
pub use program::{AccessMode, BoxedProgram, StepInput, StepOutput, TxProgram, WithTrailer};
pub use small::{Fnv64, ObjMap, ObjSet};
pub use system::{NodeEvent, PartitionStrategy, System, SystemBuilder, WorkloadSource};
pub use telemetry::{
    merge_epoch_series, merge_object_waste, EpochSample, ObjWaste, TelemetryReport,
};
pub use trace::{ProtoEvent, ProtoTrace, SchedLabel, TraceLog, TraceRecord, Verdict};
pub use tx::{TxOutcome, TxRuntime};
