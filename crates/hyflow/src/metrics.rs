//! Commit/abort accounting.
//!
//! Everything the paper's evaluation reports is derived from these
//! counters: throughput (commits over virtual time, Figs. 4–6) and the
//! nested-abort cause split (Table I: *"nested transaction aborts due to
//! parent transaction's abort / total nested transaction aborts"*).

use dstm_sim::{Histogram, OnlineStats, SimDuration, SimTime};

/// Why a whole (parent) transaction attempt aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// Early validation during transactional forwarding found a stale read
    /// (TFA's first abort case, at parent level).
    ForwardValidation,
    /// Commit-time validation failed: a lock was refused or a version was
    /// stale.
    CommitValidation,
    /// The scheduler refused a fetch on a locked object (TFA's second abort
    /// case): plain abort or abort-with-backoff.
    SchedulerAbort,
    /// An RTS queue-wait deadline expired before the object arrived.
    QueueTimeout,
}

impl AbortCause {
    pub const ALL: [AbortCause; 4] = [
        AbortCause::ForwardValidation,
        AbortCause::CommitValidation,
        AbortCause::SchedulerAbort,
        AbortCause::QueueTimeout,
    ];

    pub fn label(self) -> &'static str {
        match self {
            AbortCause::ForwardValidation => "forward-validation",
            AbortCause::CommitValidation => "commit-validation",
            AbortCause::SchedulerAbort => "scheduler-abort",
            AbortCause::QueueTimeout => "queue-timeout",
        }
    }

    /// Inverse of [`AbortCause::label`], used when reading traces back.
    pub fn from_label(s: &str) -> Option<Self> {
        AbortCause::ALL.into_iter().find(|c| c.label() == s)
    }
}

/// Why a *nested* (inner) transaction was rolled back — Table I's split.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NestedAbortCause {
    /// Its own conflict: early validation / object inconsistency inside the
    /// child's execution.
    Own,
    /// Its parent aborted, destroying the child's (possibly committed)
    /// work.
    ParentAbort,
}

/// Per-node counters, merged across nodes at the end of a run.
/// `PartialEq` so differential tests (serial vs sharded execution, queue
/// backends) can compare whole runs structurally.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeMetrics {
    /// Top-level commits.
    pub commits: u64,
    /// Top-level aborts by cause.
    pub aborts_forward_validation: u64,
    pub aborts_commit_validation: u64,
    pub aborts_scheduler: u64,
    pub aborts_queue_timeout: u64,
    /// Nested-transaction aborts by cause (Table I).
    pub nested_aborts_own: u64,
    pub nested_aborts_parent: u64,
    /// Nested (child) commits (merged into a parent).
    pub nested_commits: u64,
    /// Closed-nesting child retries caused by lock-busy conflicts (the
    /// child aborts alone and re-requests; the parent survives).
    pub child_conflict_retries: u64,
    /// RTS bookkeeping.
    pub enqueued: u64,
    pub queue_served: u64,
    pub queue_declined: u64,
    /// Fetches served / conflicted at this node as owner.
    pub fetches_served: u64,
    pub fetch_conflicts: u64,
    /// Ownership transfers into this node.
    pub objects_received: u64,
    /// `ObjReq`/`VersionReq` hops forwarded along tombstone chains at this
    /// node (a request that needs k forwards counts k). Always on — it is a
    /// pure counter — and the measure the owner-guess healing test uses.
    pub forwarded_reqs: u64,
    /// Remote-read cache (`DstmConfig::cache`) outcomes. Hits are opens
    /// served from a retained copy (locally owned fast path, clock-current
    /// reuse, or a successful `VersionReq` revalidation); misses are opens
    /// that needed a full payload fetch while caching was on; invalidations
    /// are retained copies dropped on observed staleness or ownership
    /// migration. All zero when the cache is off.
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_invalidations: u64,
    /// Wasted-work accounting (always on; each abort costs four integer
    /// adds). `wasted_work_ns` is the virtual time the aborted attempt had
    /// been running (attempt start → abort) and `wasted_msgs` the protocol
    /// messages that attempt sent — both discarded with the attempt.
    pub wasted_work_ns: u64,
    pub wasted_msgs: u64,
    /// Top-level aborts whose aggressor (the lock-holding transaction) was
    /// known at abort time. Queue-timeout aborts know only the awaited
    /// object, not its holder, so this undercounts `total_aborts`.
    pub aborts_attributed: u64,
    /// Nested levels discarded, tallied by the wasted-work path at the
    /// abort sites — must reconcile exactly with Table I's
    /// `nested_aborts_own` / `nested_aborts_parent` (asserted in tests and
    /// by `dstm-trace analyze`).
    pub wasted_nested_own: u64,
    pub wasted_nested_parent: u64,
    /// Commit latency of successful attempts (start of attempt → commit).
    pub commit_latency: OnlineStats,
    /// Full transaction latency (first start → commit, across retries).
    pub total_latency: OnlineStats,
    /// Latency-shape histograms (always on; a record is two array
    /// increments). Units: nanoseconds, except `retries_per_commit` which
    /// counts aborted attempts preceding each commit.
    pub commit_latency_hist: Histogram,
    pub queue_wait_hist: Histogram,
    pub fetch_rtt_hist: Histogram,
    pub retries_per_commit: Histogram,
}

/// p50/p95/p99 upper bounds plus count/mean for one histogram, as reported
/// in sweep sidecars.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistSummary {
    pub count: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistSummary {
    pub fn of(h: &Histogram) -> Self {
        HistSummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile_upper_bound(0.50),
            p95: h.quantile_upper_bound(0.95),
            p99: h.quantile_upper_bound(0.99),
        }
    }
}

impl NodeMetrics {
    pub fn record_abort(&mut self, cause: AbortCause) {
        match cause {
            AbortCause::ForwardValidation => self.aborts_forward_validation += 1,
            AbortCause::CommitValidation => self.aborts_commit_validation += 1,
            AbortCause::SchedulerAbort => self.aborts_scheduler += 1,
            AbortCause::QueueTimeout => self.aborts_queue_timeout += 1,
        }
    }

    pub fn record_nested_aborts(&mut self, cause: NestedAbortCause, count: u64) {
        match cause {
            NestedAbortCause::Own => self.nested_aborts_own += count,
            NestedAbortCause::ParentAbort => self.nested_aborts_parent += count,
        }
    }

    /// Record the work discarded by one top-level abort: the attempt's
    /// elapsed virtual nanoseconds, the protocol messages it had sent,
    /// whether its aggressor was identified, and the nested levels the
    /// abort destroyed as parent collateral.
    pub fn record_wasted_work(
        &mut self,
        wasted_ns: u64,
        msgs: u64,
        attributed: bool,
        nested_parent: u64,
    ) {
        self.wasted_work_ns += wasted_ns;
        self.wasted_msgs += msgs;
        self.aborts_attributed += u64::from(attributed);
        self.wasted_nested_parent += nested_parent;
    }

    /// The wasted-work ledger's nested tallies must equal Table I's
    /// own/parent split — the two are incremented on independent paths, so
    /// equality is a cross-check, not a tautology.
    pub fn wasted_work_reconciles(&self) -> bool {
        self.wasted_nested_own == self.nested_aborts_own
            && self.wasted_nested_parent == self.nested_aborts_parent
    }

    pub fn total_aborts(&self) -> u64 {
        self.aborts_forward_validation
            + self.aborts_commit_validation
            + self.aborts_scheduler
            + self.aborts_queue_timeout
    }

    pub fn total_nested_aborts(&self) -> u64 {
        self.nested_aborts_own + self.nested_aborts_parent
    }

    /// Fraction of cache-eligible opens served from the cache. 0.0 when the
    /// cache is off (no lookups at all).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    pub fn merge(&mut self, other: &NodeMetrics) {
        self.commits += other.commits;
        self.aborts_forward_validation += other.aborts_forward_validation;
        self.aborts_commit_validation += other.aborts_commit_validation;
        self.aborts_scheduler += other.aborts_scheduler;
        self.aborts_queue_timeout += other.aborts_queue_timeout;
        self.nested_aborts_own += other.nested_aborts_own;
        self.nested_aborts_parent += other.nested_aborts_parent;
        self.nested_commits += other.nested_commits;
        self.child_conflict_retries += other.child_conflict_retries;
        self.enqueued += other.enqueued;
        self.queue_served += other.queue_served;
        self.queue_declined += other.queue_declined;
        self.fetches_served += other.fetches_served;
        self.fetch_conflicts += other.fetch_conflicts;
        self.objects_received += other.objects_received;
        self.forwarded_reqs += other.forwarded_reqs;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_invalidations += other.cache_invalidations;
        self.wasted_work_ns += other.wasted_work_ns;
        self.wasted_msgs += other.wasted_msgs;
        self.aborts_attributed += other.aborts_attributed;
        self.wasted_nested_own += other.wasted_nested_own;
        self.wasted_nested_parent += other.wasted_nested_parent;
        self.commit_latency.merge(&other.commit_latency);
        self.total_latency.merge(&other.total_latency);
        self.commit_latency_hist.merge(&other.commit_latency_hist);
        self.queue_wait_hist.merge(&other.queue_wait_hist);
        self.fetch_rtt_hist.merge(&other.fetch_rtt_hist);
        self.retries_per_commit.merge(&other.retries_per_commit);
    }

    /// The four latency-shape summaries, labelled for report emission.
    pub fn hist_summaries(&self) -> [(&'static str, HistSummary); 4] {
        [
            (
                "commit_latency_ns",
                HistSummary::of(&self.commit_latency_hist),
            ),
            ("queue_wait_ns", HistSummary::of(&self.queue_wait_hist)),
            ("fetch_rtt_ns", HistSummary::of(&self.fetch_rtt_hist)),
            (
                "retries_per_commit",
                HistSummary::of(&self.retries_per_commit),
            ),
        ]
    }
}

/// Whole-run results: merged node metrics plus run-level context.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    pub nodes: usize,
    pub merged: NodeMetrics,
    /// Virtual time consumed by the run.
    pub elapsed: SimDuration,
    /// Kernel-level message count.
    pub messages: u64,
    /// Virtual start/end (diagnostics).
    pub started_at: SimTime,
    pub ended_at: SimTime,
}

impl RunMetrics {
    /// Committed transactions per second of virtual time — the paper's
    /// throughput metric.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.merged.commits as f64 / secs
        }
    }

    /// Table I's statistic: nested aborts caused by parent aborts over all
    /// nested aborts.
    pub fn nested_abort_rate(&self) -> f64 {
        let total = self.merged.total_nested_aborts();
        if total == 0 {
            0.0
        } else {
            self.merged.nested_aborts_parent as f64 / total as f64
        }
    }

    /// Aborts per commit (contention indicator).
    pub fn abort_ratio(&self) -> f64 {
        if self.merged.commits == 0 {
            0.0
        } else {
            self.merged.total_aborts() as f64 / self.merged.commits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_cause_accounting() {
        let mut m = NodeMetrics::default();
        for cause in AbortCause::ALL {
            m.record_abort(cause);
        }
        m.record_abort(AbortCause::SchedulerAbort);
        assert_eq!(m.total_aborts(), 5);
        assert_eq!(m.aborts_scheduler, 2);
    }

    #[test]
    fn nested_cause_split() {
        let mut m = NodeMetrics::default();
        m.record_nested_aborts(NestedAbortCause::Own, 3);
        m.record_nested_aborts(NestedAbortCause::ParentAbort, 7);
        assert_eq!(m.total_nested_aborts(), 10);
        let run = RunMetrics {
            nodes: 1,
            merged: m,
            elapsed: SimDuration::from_secs(2),
            messages: 0,
            started_at: SimTime::ZERO,
            ended_at: SimTime::ZERO,
        };
        assert!((run.nested_abort_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn throughput_over_virtual_time() {
        let m = NodeMetrics {
            commits: 500,
            ..Default::default()
        };
        let run = RunMetrics {
            nodes: 4,
            merged: m,
            elapsed: SimDuration::from_secs(5),
            messages: 0,
            started_at: SimTime::ZERO,
            ended_at: SimTime::ZERO,
        };
        assert!((run.throughput() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn abort_cause_labels_roundtrip() {
        for cause in AbortCause::ALL {
            assert_eq!(AbortCause::from_label(cause.label()), Some(cause));
        }
        assert_eq!(AbortCause::from_label("bogus"), None);
    }

    #[test]
    fn hist_summaries_reflect_recorded_values() {
        let mut m = NodeMetrics::default();
        for v in [100, 200, 400, 800] {
            m.queue_wait_hist.record(v);
        }
        let summaries = m.hist_summaries();
        let (label, qw) = summaries[1];
        assert_eq!(label, "queue_wait_ns");
        assert_eq!(qw.count, 4);
        assert!(qw.p50 >= 100 && qw.p99 >= qw.p50);

        let mut other = NodeMetrics::default();
        other.queue_wait_hist.record(1_000_000);
        m.merge(&other);
        assert_eq!(m.queue_wait_hist.count(), 5);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = NodeMetrics::default();
        let mut b = NodeMetrics::default();
        a.commits = 2;
        b.commits = 3;
        b.enqueued = 1;
        a.merge(&b);
        assert_eq!(a.commits, 5);
        assert_eq!(a.enqueued, 1);
    }

    #[test]
    fn wasted_work_merge_and_reconciliation() {
        let mut a = NodeMetrics::default();
        a.record_wasted_work(1_000, 3, true, 2);
        a.record_wasted_work(500, 1, false, 0);
        a.record_nested_aborts(NestedAbortCause::ParentAbort, 2);
        assert_eq!(a.wasted_work_ns, 1_500);
        assert_eq!(a.wasted_msgs, 4);
        assert_eq!(a.aborts_attributed, 1);
        assert!(a.wasted_work_reconciles());

        // A ledger entry without the matching Table-I counter must not
        // reconcile until the counter catches up.
        let mut b = NodeMetrics {
            wasted_nested_own: 1,
            ..NodeMetrics::default()
        };
        assert!(!b.wasted_work_reconciles());
        b.record_nested_aborts(NestedAbortCause::Own, 1);
        assert!(b.wasted_work_reconciles());

        a.merge(&b);
        assert_eq!(a.wasted_work_ns, 1_500);
        assert_eq!(a.wasted_nested_own, 1);
        assert_eq!(a.wasted_nested_parent, 2);
        assert!(a.wasted_work_reconciles());
    }

    #[test]
    fn cache_hit_rate_and_merge() {
        let mut a = NodeMetrics::default();
        assert_eq!(a.cache_hit_rate(), 0.0, "no lookups, no rate");
        a.cache_hits = 3;
        a.cache_misses = 1;
        let b = NodeMetrics {
            cache_hits: 1,
            cache_invalidations: 2,
            forwarded_reqs: 5,
            ..NodeMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.cache_hits, 4);
        assert_eq!(a.cache_misses, 1);
        assert_eq!(a.cache_invalidations, 2);
        assert_eq!(a.forwarded_reqs, 5);
        assert!((a.cache_hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let run = RunMetrics {
            nodes: 0,
            merged: NodeMetrics::default(),
            elapsed: SimDuration::ZERO,
            messages: 0,
            started_at: SimTime::ZERO,
            ended_at: SimTime::ZERO,
        };
        assert_eq!(run.throughput(), 0.0);
        assert_eq!(run.nested_abort_rate(), 0.0);
        assert_eq!(run.abort_ratio(), 0.0);
    }
}
