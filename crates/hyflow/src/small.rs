//! Small inline vec-backed collections keyed by [`ObjectId`].
//!
//! Per-transaction read/write sets are tiny — a handful of objects for every
//! benchmark in §IV — so `HashMap`/`HashSet` pay hashing and heap-bucket
//! overhead on every access for no benefit. [`ObjMap`] and [`ObjSet`] store
//! entries in a plain `Vec` with linear search: O(n) in theory, but with
//! n ≤ ~10 a linear scan over a contiguous line of `u64` keys beats SipHash
//! by a wide margin, and iteration order becomes deterministic insertion
//! order (one less source of accidental nondeterminism; note that no
//! protocol message order may depend on map iteration order — summaries are
//! sorted by object id before use, see `TxRuntime::object_summary`).

use rts_core::ObjectId;

/// Insertion-ordered map from [`ObjectId`] to `V`, vec-backed.
#[derive(Clone, Debug, Default)]
pub struct ObjMap<V> {
    entries: Vec<(ObjectId, V)>,
}

impl<V> ObjMap<V> {
    pub fn new() -> Self {
        ObjMap {
            entries: Vec::new(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    pub fn contains_key(&self, oid: &ObjectId) -> bool {
        self.entries.iter().any(|(k, _)| k == oid)
    }

    #[inline]
    pub fn get(&self, oid: &ObjectId) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == oid).map(|(_, v)| v)
    }

    #[inline]
    pub fn get_mut(&mut self, oid: &ObjectId) -> Option<&mut V> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == oid)
            .map(|(_, v)| v)
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&mut self, oid: ObjectId, value: V) -> Option<V> {
        match self.entries.iter_mut().find(|(k, _)| *k == oid) {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            None => {
                self.entries.push((oid, value));
                None
            }
        }
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drain all entries in insertion order, keeping the allocation (unlike
    /// `into_iter`, which consumes the map) — lets spent nesting levels be
    /// recycled with their capacity.
    pub fn drain(&mut self) -> impl Iterator<Item = (ObjectId, V)> + '_ {
        self.entries.drain(..)
    }

    /// Iterate in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectId, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<V> IntoIterator for ObjMap<V> {
    type Item = (ObjectId, V);
    type IntoIter = std::vec::IntoIter<(ObjectId, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'m, V> IntoIterator for &'m ObjMap<V> {
    type Item = (&'m ObjectId, &'m V);
    type IntoIter = Box<dyn Iterator<Item = (&'m ObjectId, &'m V)> + 'm>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.entries.iter().map(|(k, v)| (k, v)))
    }
}

impl<V> std::ops::Index<&ObjectId> for ObjMap<V> {
    type Output = V;

    fn index(&self, oid: &ObjectId) -> &V {
        self.get(oid).expect("no entry for object id")
    }
}

/// Insertion-ordered set of [`ObjectId`]s, vec-backed.
#[derive(Clone, Debug, Default)]
pub struct ObjSet {
    entries: Vec<ObjectId>,
}

impl ObjSet {
    pub fn new() -> Self {
        ObjSet {
            entries: Vec::new(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    pub fn contains(&self, oid: &ObjectId) -> bool {
        self.entries.contains(oid)
    }

    /// Insert; returns `true` if newly added.
    pub fn insert(&mut self, oid: ObjectId) -> bool {
        if self.entries.contains(&oid) {
            return false;
        }
        self.entries.push(oid);
        true
    }

    /// Remove; returns `true` if it was present. Order-preserving is not
    /// required of a set, so this uses `swap_remove`.
    pub fn remove(&mut self, oid: &ObjectId) -> bool {
        match self.entries.iter().position(|k| k == oid) {
            Some(i) => {
                self.entries.swap_remove(i);
                true
            }
            None => false,
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = &ObjectId> {
        self.entries.iter()
    }
}

/// Tiny FNV-1a accumulator for structural fingerprints.
///
/// The verification harness hashes protocol state (transaction runtimes,
/// object tables, in-flight messages) into a single `u64` so the model
/// checker can deduplicate explored states. FNV-1a is enough: fingerprints
/// only prune the search — any reported violation is re-validated by replay,
/// so a collision can at worst hide a duplicate, never invent a failure.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_is_order_sensitive_and_stable() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
        // Empty hasher yields the offset basis.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn map_insert_get_replace() {
        let mut m: ObjMap<i64> = ObjMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(ObjectId(1), 10), None);
        assert_eq!(m.insert(ObjectId(2), 20), None);
        assert_eq!(m.insert(ObjectId(1), 11), Some(10));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&ObjectId(1)), Some(&11));
        assert_eq!(m[&ObjectId(2)], 20);
        assert!(m.contains_key(&ObjectId(2)));
        assert!(!m.contains_key(&ObjectId(3)));
        *m.get_mut(&ObjectId(2)).unwrap() = 21;
        assert_eq!(m[&ObjectId(2)], 21);
    }

    #[test]
    fn map_iterates_in_insertion_order() {
        let mut m: ObjMap<i64> = ObjMap::new();
        for i in [5u64, 1, 9, 3] {
            m.insert(ObjectId(i), i as i64);
        }
        let keys: Vec<u64> = m.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![5, 1, 9, 3]);
        let owned: Vec<u64> = m.into_iter().map(|(k, _)| k.0).collect();
        assert_eq!(owned, vec![5, 1, 9, 3]);
    }

    #[test]
    fn set_insert_remove() {
        let mut s = ObjSet::new();
        assert!(s.insert(ObjectId(1)));
        assert!(!s.insert(ObjectId(1)), "duplicate insert rejected");
        assert!(s.insert(ObjectId(2)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(&ObjectId(1)));
        assert!(!s.remove(&ObjectId(1)));
        assert!(!s.is_empty());
        assert!(s.remove(&ObjectId(2)));
        assert!(s.is_empty());
    }
}
