//! Vacation — the distributed version of STAMP's travel-reservation
//! benchmark (§IV-A).
//!
//! Four relations, all scalar objects: car, flight, and room inventories
//! plus customer accounts. A **write** transaction makes (or cancels) a
//! reservation: one closed-nested child per reserved item, then a nested
//! customer-record update — the longest transactions in the suite, which is
//! why the paper observes Vacation (and Bank) gaining the least from RTS
//! (§IV-C). A **read** transaction queries item availability.

use crate::params::WorkloadParams;
use hyflow_dstm::program::{ScriptOp, ScriptProgram};
use hyflow_dstm::{BoxedProgram, Payload, WorkloadSource};
use rts_core::{ObjectId, TxKind};

pub const KIND_RESERVE: TxKind = TxKind(20);
pub const KIND_CANCEL: TxKind = TxKind(21);
pub const KIND_QUERY: TxKind = TxKind(22);
pub const KIND_RESERVE_ITEM: TxKind = TxKind(23);
pub const KIND_UPDATE_CUSTOMER: TxKind = TxKind(24);
pub const KIND_QUERY_ITEM: TxKind = TxKind(25);

/// Plenty of stock so decrements never hit zero within a workload (the
/// paper's runs don't exercise sell-outs; see DESIGN.md).
pub const INITIAL_STOCK: i64 = 1_000_000;
pub const ITEM_PRICE: i64 = 100;

/// Relation layout over the object-id space.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    pub items_per_category: u64,
    pub customers: u64,
}

impl Layout {
    pub fn for_params(p: &WorkloadParams) -> Layout {
        let total = p.total_objects() as u64;
        let per_cat = (total / 4).max(1);
        Layout {
            items_per_category: per_cat,
            customers: (total - 3 * per_cat).max(1),
        }
    }

    pub fn item_oid(&self, category: u64, idx: u64) -> ObjectId {
        debug_assert!(category < 3 && idx < self.items_per_category);
        ObjectId(1 + category * self.items_per_category + idx)
    }

    pub fn customer_oid(&self, idx: u64) -> ObjectId {
        debug_assert!(idx < self.customers);
        ObjectId(1 + 3 * self.items_per_category + idx)
    }

    pub fn total(&self) -> u64 {
        3 * self.items_per_category + self.customers
    }
}

/// Build the Vacation workload.
pub fn generate(p: &WorkloadParams) -> WorkloadSource {
    let layout = Layout::for_params(p);
    let mut objects: Vec<(ObjectId, Payload)> = Vec::with_capacity(layout.total() as usize);
    for cat in 0..3 {
        for i in 0..layout.items_per_category {
            objects.push((layout.item_oid(cat, i), Payload::Scalar(INITIAL_STOCK)));
        }
    }
    for c in 0..layout.customers {
        objects.push((layout.customer_oid(c), Payload::Scalar(0)));
    }

    let mut programs: Vec<Vec<BoxedProgram>> = Vec::with_capacity(p.nodes);
    for node in 0..p.nodes {
        let mut rng = p.node_rng(node);
        let mut queue: Vec<BoxedProgram> = Vec::with_capacity(p.txns_per_node);
        for _ in 0..p.txns_per_node {
            let nested = p.sample_nested_ops(&mut rng);
            // 4-5 ops per nested booking plus the parent-level trailer.
            let mut ops = Vec::with_capacity(nested * 5 + 3);
            if p.sample_read_only(&mut rng) {
                for _ in 0..nested {
                    let cat = rng.below(3);
                    let item = layout.item_oid(cat, rng.below(layout.items_per_category));
                    ops.push(ScriptOp::OpenNested(KIND_QUERY_ITEM));
                    ops.push(ScriptOp::Read(item));
                    ops.push(ScriptOp::CloseNested);
                    ops.push(ScriptOp::Compute(p.compute));
                }
                // Parent-level read of the customer's record at the end.
                let cust = layout.customer_oid(rng.below(layout.customers));
                ops.push(ScriptOp::Read(cust));
                queue.push(Box::new(ScriptProgram::new(KIND_QUERY, ops)));
            } else {
                // 80% reservations, 20% cancellations.
                let cancel = rng.chance(0.2);
                let (kind, delta) = if cancel {
                    (KIND_CANCEL, 1)
                } else {
                    (KIND_RESERVE, -1)
                };
                let mut booked = 0i64;
                for _ in 0..nested {
                    let cat = rng.below(3);
                    let item = layout.item_oid(cat, rng.below(layout.items_per_category));
                    ops.push(ScriptOp::OpenNested(KIND_RESERVE_ITEM));
                    ops.push(ScriptOp::Write(item));
                    ops.push(ScriptOp::AddScalar(item, delta));
                    ops.push(ScriptOp::CloseNested);
                    ops.push(ScriptOp::Compute(p.compute));
                    booked += 1;
                }
                // Bill (or refund) the customer at PARENT level after the
                // nested reservations (the Fig. 1 shape: a conflict here
                // risks every committed child).
                let cust = layout.customer_oid(rng.below(layout.customers));
                ops.push(ScriptOp::Write(cust));
                ops.push(ScriptOp::AddScalar(cust, -delta * booked * ITEM_PRICE));
                ops.push(ScriptOp::Compute(p.compute));
                queue.push(Box::new(ScriptProgram::new(kind, ops)));
            }
        }
        programs.push(queue);
    }
    WorkloadSource { objects, programs }
}

/// Invariant over a final state: total billed to customers equals
/// `ITEM_PRICE ×` net items reserved out of the inventories.
pub fn billing_matches_inventory(
    state: &std::collections::HashMap<ObjectId, (Payload, u64)>,
    p: &WorkloadParams,
) -> bool {
    let layout = Layout::for_params(p);
    let mut reserved = 0i64;
    for cat in 0..3 {
        for i in 0..layout.items_per_category {
            let (pay, _) = &state[&layout.item_oid(cat, i)];
            reserved += INITIAL_STOCK - pay.as_scalar();
        }
    }
    let mut billed = 0i64;
    for c in 0..layout.customers {
        let (pay, _) = &state[&layout.customer_oid(c)];
        billed += pay.as_scalar();
    }
    billed == reserved * ITEM_PRICE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams {
            nodes: 4,
            txns_per_node: 30,
            ..WorkloadParams::default()
        }
    }

    #[test]
    fn layout_partitions_id_space() {
        let p = params();
        let l = Layout::for_params(&p);
        assert_eq!(l.total() as usize, p.total_objects());
        // No overlap between categories and customers.
        let mut seen = std::collections::HashSet::new();
        for cat in 0..3 {
            for i in 0..l.items_per_category {
                assert!(seen.insert(l.item_oid(cat, i)));
            }
        }
        for c in 0..l.customers {
            assert!(seen.insert(l.customer_oid(c)));
        }
    }

    #[test]
    fn generates_objects_and_programs() {
        let p = params();
        let w = generate(&p);
        assert_eq!(w.objects.len(), p.total_objects());
        assert_eq!(w.programs.len(), 4);
        assert!(w.programs.iter().all(|q| q.len() == 30));
    }

    #[test]
    fn writers_include_customer_update() {
        let mut p = params();
        p.read_ratio = 0.0; // all writers
        let w = generate(&p);
        for prog in w.programs.iter().flatten() {
            assert!(matches!(prog.kind(), k if k == KIND_RESERVE || k == KIND_CANCEL));
        }
    }

    #[test]
    fn pristine_state_satisfies_invariant() {
        let p = params();
        let w = generate(&p);
        let state: std::collections::HashMap<ObjectId, (Payload, u64)> = w
            .objects
            .iter()
            .map(|(oid, pay)| (*oid, (pay.clone(), 0)))
            .collect();
        assert!(billing_matches_inventory(&state, &p));
    }
}
