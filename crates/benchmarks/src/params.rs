//! Workload parameters shared by all six benchmarks.

use dstm_sim::{SimDuration, SimRng};

/// Knobs of a benchmark workload (§IV-A defaults).
#[derive(Clone, Debug)]
pub struct WorkloadParams {
    /// Number of nodes (the x-axis of Figs. 4–5: 10..80).
    pub nodes: usize,
    /// Shared objects per node ("five to ten").
    pub objects_per_node: usize,
    /// Fraction of read-only parent transactions: 0.9 = low contention,
    /// 0.1 = high contention.
    pub read_ratio: f64,
    /// Top-level transactions issued per node.
    pub txns_per_node: usize,
    /// Each parent runs `1..=max_nested_ops` closed-nested children.
    pub max_nested_ops: usize,
    /// Local computation per child operation (the analysis' γ).
    pub compute: SimDuration,
    /// Workload-generation seed (independent from the simulation seed).
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            nodes: 10,
            objects_per_node: 8,
            read_ratio: 0.9,
            txns_per_node: 30,
            max_nested_ops: 3,
            compute: SimDuration::from_micros(500),
            seed: 0xBEEF,
        }
    }
}

impl WorkloadParams {
    pub fn low_contention(nodes: usize) -> Self {
        WorkloadParams {
            nodes,
            read_ratio: 0.9,
            ..WorkloadParams::default()
        }
    }

    pub fn high_contention(nodes: usize) -> Self {
        WorkloadParams {
            nodes,
            read_ratio: 0.1,
            ..WorkloadParams::default()
        }
    }

    /// Total shared objects in the system.
    pub fn total_objects(&self) -> usize {
        self.nodes * self.objects_per_node
    }

    /// RNG for workload generation, split per node so per-node streams are
    /// stable under changes elsewhere.
    pub fn node_rng(&self, node: usize) -> SimRng {
        SimRng::new(self.seed).split(node as u64)
    }

    /// Sample the number of nested children for one parent.
    pub fn sample_nested_ops(&self, rng: &mut SimRng) -> usize {
        rng.range_inclusive(1, self.max_nested_ops.max(1) as u64) as usize
    }

    /// Sample whether a parent transaction is read-only.
    pub fn sample_read_only(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.read_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let lo = WorkloadParams::low_contention(40);
        let hi = WorkloadParams::high_contention(40);
        assert_eq!(lo.nodes, 40);
        assert!(lo.read_ratio > hi.read_ratio);
        assert_eq!(lo.total_objects(), 40 * 8);
    }

    #[test]
    fn per_node_rngs_are_stable_and_distinct() {
        let p = WorkloadParams::default();
        let mut a1 = p.node_rng(0);
        let mut a2 = p.node_rng(0);
        let mut b = p.node_rng(1);
        assert_eq!(a1.next(), a2.next());
        let mut a3 = p.node_rng(0);
        a3.next();
        assert_ne!(a3.next(), b.next());
    }

    #[test]
    fn nested_ops_in_range() {
        let p = WorkloadParams::default();
        let mut rng = p.node_rng(3);
        for _ in 0..1000 {
            let k = p.sample_nested_ops(&mut rng);
            assert!((1..=p.max_nested_ops).contains(&k));
        }
    }

    #[test]
    fn read_ratio_respected() {
        let p = WorkloadParams::low_contention(10);
        let mut rng = p.node_rng(0);
        let reads = (0..10_000).filter(|_| p.sample_read_only(&mut rng)).count();
        assert!((8_700..9_300).contains(&reads), "reads = {reads}");
    }
}
