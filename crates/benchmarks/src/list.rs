//! Linked-List (LL) — sorted singly linked list microbenchmark (§IV-A).
//!
//! Objects: a head pointer, the pre-populated chain of `ListNode`s, and
//! per-invoking-node allocation pools (a pool counter + pre-provisioned
//! spare nodes) for inserts. A parent transaction runs a random number of
//! nested operations; each `contains` / `insert` / `remove` is one
//! closed-nested child whose traversal fetches nodes one hop at a time —
//! the canonical "many remote fetches per transaction" workload where
//! re-fetching after a parent abort is expensive, i.e. exactly the case RTS
//! targets.

use crate::params::WorkloadParams;
use dstm_sim::SimDuration;
use hyflow_dstm::program::{AccessMode, StepInput, StepOutput, TxProgram, WithTrailer};
use hyflow_dstm::{BoxedProgram, Payload, WorkloadSource};
use rts_core::{ObjectId, TxKind};

pub const KIND_LL_READER: TxKind = TxKind(30);
pub const KIND_LL_WRITER: TxKind = TxKind(31);
pub const KIND_CONTAINS: TxKind = TxKind(32);
pub const KIND_INSERT: TxKind = TxKind(33);
pub const KIND_REMOVE: TxKind = TxKind(34);

pub const HEAD: ObjectId = ObjectId(1);
const NODE_BASE: u64 = 2;
const COUNTER_BASE: u64 = 1_000_000;
const POOL_BASE: u64 = 2_000_000;
/// Parent-level summary/statistics objects, touched after the nested ops
/// (Fig. 1's trailing top-level access; see DESIGN.md).
const SUMMARY_BASE: u64 = 3_000_000;

/// One list operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ListOp {
    Contains(i64),
    Insert(i64),
    Remove(i64),
}

impl ListOp {
    fn child_kind(self) -> TxKind {
        match self {
            ListOp::Contains(_) => KIND_CONTAINS,
            ListOp::Insert(_) => KIND_INSERT,
            ListOp::Remove(_) => KIND_REMOVE,
        }
    }

    fn value(self) -> i64 {
        match self {
            ListOp::Contains(v) | ListOp::Insert(v) | ListOp::Remove(v) => v,
        }
    }
}

/// Where the `next` link we may rewrite lives.
#[derive(Clone, Copy, Debug)]
enum PrevLink {
    Head,
    Node(ObjectId),
}

impl PrevLink {
    fn oid(self) -> ObjectId {
        match self {
            PrevLink::Head => HEAD,
            PrevLink::Node(o) => o,
        }
    }

    /// Rebuild the previous object's payload with a new `next` link.
    fn relink(self, old: &Payload, next: Option<ObjectId>) -> Payload {
        match (self, old) {
            (PrevLink::Head, Payload::Ptr(_)) => Payload::Ptr(next),
            (PrevLink::Node(_), Payload::ListNode { value, .. }) => Payload::ListNode {
                value: *value,
                next,
            },
            (link, other) => panic!("bad prev payload for {link:?}: {other:?}"),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum St {
    /// Between operations: emit `OpenNested` or `Finish`.
    NextOp,
    /// `OpenNested` acked: read the head pointer.
    OpenAck,
    /// Head pointer value arrived.
    HeadValue,
    /// A `ListNode` for `cur` arrived.
    NodeValue,
    /// Allocation: counter value arrived (write it back +1).
    CounterGot,
    /// Counter write acked: acquire the fresh pool node.
    CounterWritten,
    /// Pool node value arrived (overwrite with the new payload).
    PoolGot,
    /// New node written: acquire `prev` for linking.
    NodeWritten,
    /// Prev payload arrived: rewrite its next link to `link_to`.
    PrevGot,
    /// Link write acked: close the nested op.
    LinkDone,
    /// `CloseNested` acked: emit the inter-op compute gap.
    Closed,
    /// Compute acked: next operation.
    Gap,
}

/// The LL transaction program.
#[derive(Clone, Debug)]
pub struct ListProgram {
    kind: TxKind,
    ops: Vec<ListOp>,
    counter: ObjectId,
    pool_base: u64,
    pool_size: u64,
    compute: SimDuration,
    op_idx: usize,
    st: St,
    prev: PrevLink,
    cur: Option<ObjectId>,
    /// `next` of the node being removed / insertion point.
    link_to: Option<ObjectId>,
    /// Allocated pool slot for an in-flight insert.
    new_node: Option<ObjectId>,
}

impl ListProgram {
    pub fn new(
        kind: TxKind,
        ops: Vec<ListOp>,
        invoking_node: usize,
        pool_size: u64,
        compute: SimDuration,
    ) -> Self {
        ListProgram {
            kind,
            ops,
            counter: ObjectId(COUNTER_BASE + invoking_node as u64),
            pool_base: POOL_BASE + invoking_node as u64 * pool_size,
            pool_size,
            compute,
            op_idx: 0,
            st: St::NextOp,
            prev: PrevLink::Head,
            cur: None,
            link_to: None,
            new_node: None,
        }
    }

    fn op(&self) -> ListOp {
        self.ops[self.op_idx]
    }
}

impl TxProgram for ListProgram {
    fn kind(&self) -> TxKind {
        self.kind
    }

    fn label(&self) -> &'static str {
        "linked-list"
    }

    fn clone_box(&self) -> BoxedProgram {
        Box::new(self.clone())
    }

    fn step(&mut self, input: StepInput<'_>) -> StepOutput {
        match self.st {
            St::NextOp => {
                if self.op_idx >= self.ops.len() {
                    return StepOutput::Finish;
                }
                self.st = St::OpenAck;
                StepOutput::OpenNested(self.op().child_kind())
            }
            St::OpenAck => {
                self.prev = PrevLink::Head;
                self.cur = None;
                self.new_node = None;
                self.st = St::HeadValue;
                StepOutput::Acquire(HEAD, AccessMode::Read)
            }
            St::HeadValue => {
                let StepInput::Value(Payload::Ptr(first)) = input else {
                    panic!("expected head pointer, got {input:?}");
                };
                self.cur = *first;
                self.continue_walk()
            }
            St::NodeValue => {
                let StepInput::Value(Payload::ListNode { value, next }) = input else {
                    panic!("expected list node, got {input:?}");
                };
                self.advance_traversal(Some((*value, *next)))
            }
            St::CounterGot => {
                let StepInput::Value(Payload::Scalar(c)) = input else {
                    panic!("expected counter, got {input:?}");
                };
                let c = *c;
                if (c as u64) >= self.pool_size {
                    // Pool exhausted: degrade to a no-op (documented).
                    self.st = St::Closed;
                    return StepOutput::CloseNested;
                }
                self.new_node = Some(ObjectId(self.pool_base + c as u64));
                self.st = St::CounterWritten;
                StepOutput::WriteLocal(self.counter, Payload::Scalar(c + 1))
            }
            St::CounterWritten => {
                self.st = St::PoolGot;
                StepOutput::Acquire(self.new_node.expect("allocated"), AccessMode::Write)
            }
            St::PoolGot => {
                self.st = St::NodeWritten;
                StepOutput::WriteLocal(
                    self.new_node.expect("allocated"),
                    Payload::ListNode {
                        value: self.op().value(),
                        next: self.cur,
                    },
                )
            }
            St::NodeWritten => {
                self.st = St::PrevGot;
                self.link_to = self.new_node;
                StepOutput::Acquire(self.prev.oid(), AccessMode::Write)
            }
            St::PrevGot => {
                let StepInput::Value(old) = input else {
                    panic!("expected prev payload, got {input:?}");
                };
                let payload = self.prev.relink(old, self.link_to);
                self.st = St::LinkDone;
                StepOutput::WriteLocal(self.prev.oid(), payload)
            }
            St::LinkDone => {
                self.st = St::Closed;
                StepOutput::CloseNested
            }
            St::Closed => {
                self.st = St::Gap;
                StepOutput::Compute(self.compute)
            }
            St::Gap => {
                self.op_idx += 1;
                self.st = St::NextOp;
                self.step(StepInput::Ack)
            }
        }
    }
}

impl ListProgram {
    /// Decide the next move given the current node's contents (`None` for
    /// "cur is past the end").
    fn advance_traversal(&mut self, node: Option<(i64, Option<ObjectId>)>) -> StepOutput {
        let target = self.op().value();
        if let Some((value, next)) = node {
            if value < target {
                // Keep walking.
                self.prev = PrevLink::Node(self.cur.expect("walking a real node"));
                self.cur = next;
                return self.continue_walk();
            }
            // value >= target: decide per op.
            return match self.op() {
                ListOp::Contains(_) => {
                    self.st = St::Closed;
                    StepOutput::CloseNested
                }
                ListOp::Insert(_) if value == target => {
                    // Already present: no-op.
                    self.st = St::Closed;
                    StepOutput::CloseNested
                }
                ListOp::Insert(_) => self.start_alloc(),
                ListOp::Remove(_) if value == target => {
                    // Unlink: prev.next = cur.next.
                    self.link_to = next;
                    self.st = St::PrevGot;
                    StepOutput::Acquire(self.prev.oid(), AccessMode::Write)
                }
                ListOp::Remove(_) => {
                    // Not present: no-op.
                    self.st = St::Closed;
                    StepOutput::CloseNested
                }
            };
        }
        // Ran off the end of the list.
        match self.op() {
            ListOp::Insert(_) => self.start_alloc(),
            _ => {
                self.st = St::Closed;
                StepOutput::CloseNested
            }
        }
    }

    fn continue_walk(&mut self) -> StepOutput {
        match self.cur {
            Some(oid) => {
                self.st = St::NodeValue;
                StepOutput::Acquire(oid, AccessMode::Read)
            }
            None => self.advance_traversal_end(),
        }
    }

    fn advance_traversal_end(&mut self) -> StepOutput {
        match self.op() {
            ListOp::Insert(_) => self.start_alloc(),
            _ => {
                self.st = St::Closed;
                StepOutput::CloseNested
            }
        }
    }

    fn start_alloc(&mut self) -> StepOutput {
        self.st = St::CounterGot;
        StepOutput::Acquire(self.counter, AccessMode::Write)
    }
}

/// Build the LL workload: pre-populated sorted list + per-node pools.
pub fn generate(p: &WorkloadParams) -> WorkloadSource {
    // Cap the chain so traversals stay bounded (each hop is a remote
    // fetch): the paper groups LL with the *short*-execution-time
    // microbenchmarks (§IV-C), which implies a short chain.
    let len = p.total_objects().min(12) as u64;
    let pool_size = (p.txns_per_node * p.max_nested_ops) as u64;

    let mut objects: Vec<(ObjectId, Payload)> = Vec::new();
    // Chain: values 2, 4, ..., 2*len; node i links to node i+1.
    for i in 0..len {
        let next = if i + 1 < len {
            Some(ObjectId(NODE_BASE + i + 1))
        } else {
            None
        };
        objects.push((
            ObjectId(NODE_BASE + i),
            Payload::ListNode {
                value: 2 * (i as i64 + 1),
                next,
            },
        ));
    }
    objects.push((
        HEAD,
        Payload::Ptr(if len > 0 {
            Some(ObjectId(NODE_BASE))
        } else {
            None
        }),
    ));
    // Pools and counters.
    for node in 0..p.nodes {
        objects.push((ObjectId(COUNTER_BASE + node as u64), Payload::Scalar(0)));
        for k in 0..pool_size {
            objects.push((
                ObjectId(POOL_BASE + node as u64 * pool_size + k),
                Payload::ListNode {
                    value: 0,
                    next: None,
                },
            ));
        }
    }

    let value_space = 2 * len as i64 + 2;
    let summary_count = (p.nodes as u64 / 2).max(2);
    for i in 0..summary_count {
        objects.push((ObjectId(SUMMARY_BASE + i), Payload::Scalar(0)));
    }

    let mut programs: Vec<Vec<BoxedProgram>> = Vec::with_capacity(p.nodes);
    for node in 0..p.nodes {
        let mut rng = p.node_rng(node);
        let mut queue: Vec<BoxedProgram> = Vec::with_capacity(p.txns_per_node);
        for _ in 0..p.txns_per_node {
            let nested = p.sample_nested_ops(&mut rng);
            let read_only = p.sample_read_only(&mut rng);
            let kind = if read_only {
                KIND_LL_READER
            } else {
                KIND_LL_WRITER
            };
            let ops: Vec<ListOp> = (0..nested)
                .map(|_| {
                    let v = 1 + rng.below(value_space as u64) as i64;
                    if read_only {
                        ListOp::Contains(v)
                    } else if rng.chance(0.5) {
                        ListOp::Insert(v)
                    } else {
                        ListOp::Remove(v)
                    }
                })
                .collect();
            let summary = ObjectId(SUMMARY_BASE + rng.below(summary_count));
            let delta = if read_only { None } else { Some(1) };
            queue.push(Box::new(WithTrailer::new(
                Box::new(ListProgram::new(kind, ops, node, pool_size, p.compute)),
                summary,
                delta,
            )));
        }
        programs.push(queue);
    }
    WorkloadSource { objects, programs }
}

/// Walk the committed list state; returns the values in order. Panics on a
/// broken chain (cycle or dangling link) — used as an invariant check.
pub fn collect_list(state: &std::collections::HashMap<ObjectId, (Payload, u64)>) -> Vec<i64> {
    let (head, _) = &state[&HEAD];
    let mut cur = head.as_ptr();
    let mut out = Vec::new();
    let mut hops = 0;
    while let Some(oid) = cur {
        hops += 1;
        assert!(hops <= state.len(), "cycle detected in list");
        let (payload, _) = state
            .get(&oid)
            .unwrap_or_else(|| panic!("dangling link to {oid:?}"));
        let Payload::ListNode { value, next } = payload else {
            panic!("non-list-node in chain: {payload:?}");
        };
        out.push(*value);
        cur = *next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_to_end(p: &mut ListProgram, store: &mut std::collections::HashMap<ObjectId, Payload>) {
        // A tiny synchronous interpreter sufficient for program unit tests.
        let mut input_owned: Option<Payload> = None;
        let mut is_begin = true;
        loop {
            let out = {
                let input = if is_begin {
                    StepInput::Begin
                } else if let Some(v) = &input_owned {
                    StepInput::Value(v)
                } else {
                    StepInput::Ack
                };
                p.step(input)
            };
            is_begin = false;
            match out {
                StepOutput::Acquire(oid, _) => {
                    input_owned = Some(
                        store
                            .get(&oid)
                            .cloned()
                            .unwrap_or_else(|| panic!("program acquired unknown object {oid:?}")),
                    );
                }
                StepOutput::WriteLocal(oid, payload) => {
                    store.insert(oid, payload);
                    input_owned = None;
                }
                StepOutput::Compute(_) | StepOutput::OpenNested(_) | StepOutput::CloseNested => {
                    input_owned = None;
                }
                StepOutput::Finish => break,
            }
        }
    }

    fn small_store() -> std::collections::HashMap<ObjectId, Payload> {
        // List: 2 -> 4 -> 6.
        let mut s = std::collections::HashMap::new();
        s.insert(HEAD, Payload::Ptr(Some(ObjectId(2))));
        s.insert(
            ObjectId(2),
            Payload::ListNode {
                value: 2,
                next: Some(ObjectId(3)),
            },
        );
        s.insert(
            ObjectId(3),
            Payload::ListNode {
                value: 4,
                next: Some(ObjectId(4)),
            },
        );
        s.insert(
            ObjectId(4),
            Payload::ListNode {
                value: 6,
                next: None,
            },
        );
        // node-0 pool of 4 slots + counter
        s.insert(ObjectId(COUNTER_BASE), Payload::Scalar(0));
        for k in 0..4 {
            s.insert(
                ObjectId(POOL_BASE + k),
                Payload::ListNode {
                    value: 0,
                    next: None,
                },
            );
        }
        s
    }

    fn list_values(store: &std::collections::HashMap<ObjectId, Payload>) -> Vec<i64> {
        let state: std::collections::HashMap<ObjectId, (Payload, u64)> =
            store.iter().map(|(k, v)| (*k, (v.clone(), 0))).collect();
        collect_list(&state)
    }

    #[test]
    fn insert_in_middle() {
        let mut store = small_store();
        let mut prog = ListProgram::new(
            KIND_LL_WRITER,
            vec![ListOp::Insert(3)],
            0,
            4,
            SimDuration::from_micros(1),
        );
        drive_to_end(&mut prog, &mut store);
        assert_eq!(list_values(&store), vec![2, 3, 4, 6]);
    }

    #[test]
    fn insert_at_head_and_tail() {
        let mut store = small_store();
        let mut prog = ListProgram::new(
            KIND_LL_WRITER,
            vec![ListOp::Insert(1), ListOp::Insert(9)],
            0,
            4,
            SimDuration::from_micros(1),
        );
        drive_to_end(&mut prog, &mut store);
        assert_eq!(list_values(&store), vec![1, 2, 4, 6, 9]);
    }

    #[test]
    fn insert_duplicate_is_noop() {
        let mut store = small_store();
        let mut prog = ListProgram::new(
            KIND_LL_WRITER,
            vec![ListOp::Insert(4)],
            0,
            4,
            SimDuration::from_micros(1),
        );
        drive_to_end(&mut prog, &mut store);
        assert_eq!(list_values(&store), vec![2, 4, 6]);
    }

    #[test]
    fn remove_middle_and_missing() {
        let mut store = small_store();
        let mut prog = ListProgram::new(
            KIND_LL_WRITER,
            vec![ListOp::Remove(4), ListOp::Remove(42)],
            0,
            4,
            SimDuration::from_micros(1),
        );
        drive_to_end(&mut prog, &mut store);
        assert_eq!(list_values(&store), vec![2, 6]);
    }

    #[test]
    fn remove_head() {
        let mut store = small_store();
        let mut prog = ListProgram::new(
            KIND_LL_WRITER,
            vec![ListOp::Remove(2)],
            0,
            4,
            SimDuration::from_micros(1),
        );
        drive_to_end(&mut prog, &mut store);
        assert_eq!(list_values(&store), vec![4, 6]);
    }

    #[test]
    fn contains_leaves_list_unchanged() {
        let mut store = small_store();
        let before = list_values(&store);
        let mut prog = ListProgram::new(
            KIND_LL_READER,
            vec![ListOp::Contains(4), ListOp::Contains(5)],
            0,
            4,
            SimDuration::from_micros(1),
        );
        drive_to_end(&mut prog, &mut store);
        assert_eq!(list_values(&store), before);
    }

    #[test]
    fn pool_exhaustion_degrades_to_noop() {
        let mut store = small_store();
        store.insert(ObjectId(COUNTER_BASE), Payload::Scalar(4)); // pool spent
        let mut prog = ListProgram::new(
            KIND_LL_WRITER,
            vec![ListOp::Insert(3)],
            0,
            4,
            SimDuration::from_micros(1),
        );
        drive_to_end(&mut prog, &mut store);
        assert_eq!(list_values(&store), vec![2, 4, 6]);
    }

    #[test]
    fn generator_objects_form_valid_list() {
        let p = WorkloadParams {
            nodes: 3,
            txns_per_node: 5,
            ..WorkloadParams::default()
        };
        let w = generate(&p);
        let state: std::collections::HashMap<ObjectId, (Payload, u64)> = w
            .objects
            .iter()
            .map(|(k, v)| (*k, (v.clone(), 0)))
            .collect();
        let values = collect_list(&state);
        assert_eq!(values.len(), p.total_objects().min(12));
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "list must be sorted"
        );
        assert_eq!(w.programs.len(), 3);
    }
}
