//! # dstm-benchmarks — the six distributed applications of §IV-A
//!
//! *"We developed a set of six distributed applications as benchmarks.
//! These include distributed versions of the Vacation benchmark of the
//! STAMP benchmark suite, Bank as a monetary application, and four
//! distributed data structures including Linked-List (LL), Binary-Search
//! Tree (BST), Red/Black Tree (RB-Tree), and Distributed Hash Table (DHT)
//! as microbenchmarks."*
//!
//! Every benchmark produces a [`hyflow_dstm::WorkloadSource`]: the initial
//! shared objects (placed at their hash-homed nodes — *"five to ten shared
//! objects are used at each node"*) and per-node queues of transaction
//! programs. Contention is controlled by the read ratio (*"low and high
//! contention, defined as 90% and 10% read transactions"*), and every
//! parent transaction runs a random number of closed-nested children
//! (*"the number of nested transactions per transaction are randomly
//! decided"*).
//!
//! Structure-modifying benchmarks allocate new nodes from **pre-provisioned
//! per-node pools** guarded by a pool-counter object: object creation in the
//! dataflow D-STM would need a registration protocol, whereas a counter
//! fetch-and-increment reuses the ordinary transactional path and behaves
//! like a (contended) allocator.

pub mod bank;
pub mod bst;
pub mod dht;
pub mod list;
pub mod params;
pub mod rbtree;
pub mod suite;
pub mod vacation;

pub use params::WorkloadParams;
pub use suite::Benchmark;
