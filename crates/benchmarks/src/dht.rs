//! Distributed Hash Table (DHT) microbenchmark (§IV-A).
//!
//! Buckets are `Payload::Bucket` objects spread over the nodes by the
//! object-id hash; keys map to buckets by modulo. `get` reads one bucket,
//! `put` rewrites it. Single-object transactions with short traversals —
//! the highest-throughput benchmark in the paper's Figs. 4–5.

use crate::params::WorkloadParams;
use dstm_sim::SimDuration;
use hyflow_dstm::program::{AccessMode, StepInput, StepOutput, TxProgram, WithTrailer};
use hyflow_dstm::{BoxedProgram, Payload, WorkloadSource};
use rts_core::{ObjectId, TxKind};

pub const KIND_DHT_READER: TxKind = TxKind(60);
pub const KIND_DHT_WRITER: TxKind = TxKind(61);
pub const KIND_GET: TxKind = TxKind(62);
pub const KIND_PUT: TxKind = TxKind(63);

const BUCKET_BASE: u64 = 1;
/// Parent-level summary/statistics objects, touched after the nested ops
/// (Fig. 1's trailing top-level access; see DESIGN.md).
const SUMMARY_BASE: u64 = 3_000_000;

/// One DHT operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DhtOp {
    Get(u64),
    Put(u64, i64),
}

impl DhtOp {
    fn child_kind(self) -> TxKind {
        match self {
            DhtOp::Get(_) => KIND_GET,
            DhtOp::Put(..) => KIND_PUT,
        }
    }

    fn key(self) -> u64 {
        match self {
            DhtOp::Get(k) | DhtOp::Put(k, _) => k,
        }
    }
}

pub fn bucket_of(key: u64, buckets: u64) -> ObjectId {
    ObjectId(BUCKET_BASE + key % buckets)
}

#[derive(Clone, Copy, Debug)]
enum St {
    NextOp,
    OpenAck,
    BucketValue,
    Written,
    Closed,
    Gap,
}

/// The DHT transaction program.
#[derive(Clone, Debug)]
pub struct DhtProgram {
    kind: TxKind,
    ops: Vec<DhtOp>,
    buckets: u64,
    compute: SimDuration,
    op_idx: usize,
    st: St,
}

impl DhtProgram {
    pub fn new(kind: TxKind, ops: Vec<DhtOp>, buckets: u64, compute: SimDuration) -> Self {
        DhtProgram {
            kind,
            ops,
            buckets,
            compute,
            op_idx: 0,
            st: St::NextOp,
        }
    }

    fn op(&self) -> DhtOp {
        self.ops[self.op_idx]
    }
}

impl TxProgram for DhtProgram {
    fn kind(&self) -> TxKind {
        self.kind
    }

    fn label(&self) -> &'static str {
        "dht"
    }

    fn clone_box(&self) -> BoxedProgram {
        Box::new(self.clone())
    }

    fn access_hint(&self, out: &mut Vec<ObjectId>) {
        // Key→bucket mapping is static, so the full access set is known up
        // front — exactly what the locality partitioner wants.
        for op in &self.ops {
            out.push(bucket_of(op.key(), self.buckets));
        }
    }

    fn step(&mut self, input: StepInput<'_>) -> StepOutput {
        match self.st {
            St::NextOp => {
                if self.op_idx >= self.ops.len() {
                    return StepOutput::Finish;
                }
                self.st = St::OpenAck;
                StepOutput::OpenNested(self.op().child_kind())
            }
            St::OpenAck => {
                let mode = match self.op() {
                    DhtOp::Get(_) => AccessMode::Read,
                    DhtOp::Put(..) => AccessMode::Write,
                };
                self.st = St::BucketValue;
                StepOutput::Acquire(bucket_of(self.op().key(), self.buckets), mode)
            }
            St::BucketValue => {
                let StepInput::Value(Payload::Bucket(kvs)) = input else {
                    panic!("expected bucket, got {input:?}");
                };
                match self.op() {
                    DhtOp::Get(_) => {
                        self.st = St::Closed;
                        StepOutput::CloseNested
                    }
                    DhtOp::Put(k, v) => {
                        let mut kvs = kvs.clone();
                        match kvs.iter_mut().find(|(key, _)| *key == k) {
                            Some(entry) => entry.1 = v,
                            None => kvs.push((k, v)),
                        }
                        self.st = St::Written;
                        StepOutput::WriteLocal(bucket_of(k, self.buckets), Payload::Bucket(kvs))
                    }
                }
            }
            St::Written => {
                self.st = St::Closed;
                StepOutput::CloseNested
            }
            St::Closed => {
                self.st = St::Gap;
                StepOutput::Compute(self.compute)
            }
            St::Gap => {
                self.op_idx += 1;
                self.st = St::NextOp;
                self.step(StepInput::Ack)
            }
        }
    }
}

/// Build the DHT workload.
pub fn generate(p: &WorkloadParams) -> WorkloadSource {
    let buckets = p.total_objects() as u64;
    let key_space = buckets * 8;
    let mut objects: Vec<(ObjectId, Payload)> = (0..buckets)
        .map(|b| (ObjectId(BUCKET_BASE + b), Payload::Bucket(Vec::new())))
        .collect();

    let summary_count = (p.nodes as u64 / 2).max(2);
    for i in 0..summary_count {
        objects.push((ObjectId(SUMMARY_BASE + i), Payload::Scalar(0)));
    }

    let mut programs: Vec<Vec<BoxedProgram>> = Vec::with_capacity(p.nodes);
    for node in 0..p.nodes {
        let mut rng = p.node_rng(node);
        let mut queue: Vec<BoxedProgram> = Vec::with_capacity(p.txns_per_node);
        for _ in 0..p.txns_per_node {
            let nested = p.sample_nested_ops(&mut rng);
            let read_only = p.sample_read_only(&mut rng);
            let kind = if read_only {
                KIND_DHT_READER
            } else {
                KIND_DHT_WRITER
            };
            let ops: Vec<DhtOp> = (0..nested)
                .map(|_| {
                    let k = rng.below(key_space);
                    if read_only {
                        DhtOp::Get(k)
                    } else {
                        DhtOp::Put(k, rng.below(1000) as i64)
                    }
                })
                .collect();
            let summary = ObjectId(SUMMARY_BASE + rng.below(summary_count));
            let delta = if read_only { None } else { Some(1) };
            queue.push(Box::new(WithTrailer::new(
                Box::new(DhtProgram::new(kind, ops, buckets, p.compute)),
                summary,
                delta,
            )));
        }
        programs.push(queue);
    }
    WorkloadSource { objects, programs }
}

/// Invariant: every key sits in its hash bucket, no duplicate keys.
pub fn check_placement(
    state: &std::collections::HashMap<ObjectId, (Payload, u64)>,
    buckets: u64,
) -> Result<usize, String> {
    let mut entries = 0;
    for b in 0..buckets {
        let oid = ObjectId(BUCKET_BASE + b);
        let (payload, _) = state.get(&oid).ok_or("missing bucket")?;
        let Payload::Bucket(kvs) = payload else {
            return Err(format!("non-bucket payload at {oid:?}"));
        };
        let mut seen = std::collections::HashSet::new();
        for (k, _) in kvs {
            if bucket_of(*k, buckets) != oid {
                return Err(format!("key {k} in wrong bucket {oid:?}"));
            }
            if !seen.insert(*k) {
                return Err(format!("duplicate key {k} in {oid:?}"));
            }
            entries += 1;
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn drive(prog: &mut DhtProgram, store: &mut HashMap<ObjectId, Payload>) {
        let mut value: Option<Payload> = None;
        let mut begin = true;
        loop {
            let out = {
                let input = if begin {
                    StepInput::Begin
                } else if let Some(v) = &value {
                    StepInput::Value(v)
                } else {
                    StepInput::Ack
                };
                prog.step(input)
            };
            begin = false;
            match out {
                StepOutput::Acquire(oid, _) => value = Some(store[&oid].clone()),
                StepOutput::WriteLocal(oid, p) => {
                    store.insert(oid, p);
                    value = None;
                }
                StepOutput::Finish => break,
                _ => value = None,
            }
        }
    }

    #[test]
    fn put_then_update() {
        let buckets = 4;
        let mut store: HashMap<ObjectId, Payload> = (0..buckets)
            .map(|b| (ObjectId(BUCKET_BASE + b), Payload::Bucket(Vec::new())))
            .collect();
        let mut prog = DhtProgram::new(
            KIND_DHT_WRITER,
            vec![DhtOp::Put(9, 1), DhtOp::Put(9, 2), DhtOp::Put(13, 3)],
            buckets,
            SimDuration::from_micros(1),
        );
        drive(&mut prog, &mut store);
        let Payload::Bucket(kvs) = &store[&bucket_of(9, buckets)] else {
            panic!()
        };
        assert!(kvs.contains(&(9, 2)), "update must overwrite: {kvs:?}");
        assert!(kvs.contains(&(13, 3)), "13 hashes to the same bucket as 9");
        assert_eq!(kvs.len(), 2);
    }

    #[test]
    fn gets_do_not_mutate() {
        let buckets = 4;
        let mut store: HashMap<ObjectId, Payload> = (0..buckets)
            .map(|b| (ObjectId(BUCKET_BASE + b), Payload::Bucket(vec![(b, 7)])))
            .collect();
        let before = store.clone();
        let mut prog = DhtProgram::new(
            KIND_DHT_READER,
            vec![DhtOp::Get(0), DhtOp::Get(5)],
            buckets,
            SimDuration::from_micros(1),
        );
        drive(&mut prog, &mut store);
        assert_eq!(store, before);
    }

    #[test]
    fn generator_and_placement_check() {
        let p = WorkloadParams {
            nodes: 3,
            txns_per_node: 10,
            ..WorkloadParams::default()
        };
        let w = generate(&p);
        let summaries = (p.nodes / 2).max(2);
        assert_eq!(w.objects.len(), p.total_objects() + summaries);
        let state: HashMap<ObjectId, (Payload, u64)> = w
            .objects
            .iter()
            .map(|(k, v)| (*k, (v.clone(), 0)))
            .collect();
        assert_eq!(check_placement(&state, p.total_objects() as u64), Ok(0));
    }
}
