//! Binary Search Tree (BST) microbenchmark (§IV-A).
//!
//! Unbalanced search tree over distributed `TreeNode` objects. Operations:
//! `contains` (read), `insert` (new node from the per-node pool), and
//! `remove` (full BST deletion, including the two-children successor
//! splice). Each operation is a closed-nested child; all structural writes
//! touch nodes already fetched during the descent, so the write phase is a
//! local plan drained through instant acquires.

use crate::params::WorkloadParams;
use dstm_sim::SimDuration;
use hyflow_dstm::program::{AccessMode, StepInput, StepOutput, TxProgram, WithTrailer};
use hyflow_dstm::{BoxedProgram, Payload, WorkloadSource};
use rts_core::{ObjectId, TxKind};

pub const KIND_BST_READER: TxKind = TxKind(40);
pub const KIND_BST_WRITER: TxKind = TxKind(41);
pub const KIND_CONTAINS: TxKind = TxKind(42);
pub const KIND_INSERT: TxKind = TxKind(43);
pub const KIND_REMOVE: TxKind = TxKind(44);

pub const ROOT: ObjectId = ObjectId(1);
const NODE_BASE: u64 = 2;
const COUNTER_BASE: u64 = 1_000_000;
const POOL_BASE: u64 = 2_000_000;
/// Parent-level summary/statistics objects, touched after the nested ops
/// (Fig. 1's trailing top-level access; see DESIGN.md).
const SUMMARY_BASE: u64 = 3_000_000;

/// One BST operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BstOp {
    Contains(i64),
    Insert(i64),
    Remove(i64),
}

impl BstOp {
    fn child_kind(self) -> TxKind {
        match self {
            BstOp::Contains(_) => KIND_CONTAINS,
            BstOp::Insert(_) => KIND_INSERT,
            BstOp::Remove(_) => KIND_REMOVE,
        }
    }

    fn value(self) -> i64 {
        match self {
            BstOp::Contains(v) | BstOp::Insert(v) | BstOp::Remove(v) => v,
        }
    }
}

/// A node as seen during descent.
#[derive(Clone, Copy, Debug)]
struct Seen {
    oid: ObjectId,
    value: i64,
    left: Option<ObjectId>,
    right: Option<ObjectId>,
}

impl Seen {
    fn payload_with(&self, value: i64, left: Option<ObjectId>, right: Option<ObjectId>) -> Payload {
        let _ = self;
        Payload::TreeNode {
            value,
            left,
            right,
            red: false,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Descending toward the operation's key.
    Find,
    /// Descending the right subtree of the removal target toward its
    /// in-order successor.
    FindSucc,
}

#[derive(Clone, Debug)]
enum St {
    NextOp,
    OpenAck,
    RootValue,
    Descend,
    CounterGot,
    CounterWritten,
    PoolGot,
    /// New leaf written: link it from its parent (or the root pointer).
    NewLinked,
    /// Draining the structural write plan: the acquired payload arrived.
    PlanGot,
    CloseOp,
    Closed,
    Gap,
}

/// The BST transaction program.
#[derive(Clone, Debug)]
pub struct BstProgram {
    kind: TxKind,
    ops: Vec<BstOp>,
    counter: ObjectId,
    pool_base: u64,
    pool_size: u64,
    compute: SimDuration,
    op_idx: usize,
    st: St,
    phase: Phase,
    cur: Option<ObjectId>,
    path: Vec<Seen>,
    /// Removal target (found during `Find`).
    target: Option<Seen>,
    /// Link holder to the successor during `FindSucc`: (node, via-left?).
    succ_parent: Option<(Seen, bool)>,
    new_node: Option<ObjectId>,
    /// Structural writes to apply: (object, payload).
    plan: Vec<(ObjectId, Payload)>,
}

impl BstProgram {
    pub fn new(
        kind: TxKind,
        ops: Vec<BstOp>,
        invoking_node: usize,
        pool_size: u64,
        compute: SimDuration,
    ) -> Self {
        BstProgram {
            kind,
            ops,
            counter: ObjectId(COUNTER_BASE + invoking_node as u64),
            pool_base: POOL_BASE + invoking_node as u64 * pool_size,
            pool_size,
            compute,
            op_idx: 0,
            st: St::NextOp,
            phase: Phase::Find,
            cur: None,
            path: Vec::new(),
            target: None,
            succ_parent: None,
            new_node: None,
            plan: Vec::new(),
        }
    }

    fn op(&self) -> BstOp {
        self.ops[self.op_idx]
    }

    fn close(&mut self) -> StepOutput {
        self.st = St::Closed;
        StepOutput::CloseNested
    }

    /// Emit the next plan write (acquire first; all plan objects are already
    /// held, so the acquire is satisfied locally).
    fn drain_plan(&mut self) -> StepOutput {
        match self.plan.first() {
            Some((oid, _)) => {
                let oid = *oid;
                self.st = St::PlanGot;
                StepOutput::Acquire(oid, AccessMode::Write)
            }
            None => self.close(),
        }
    }

    /// The object holding the link to the current descent position: the last
    /// path node, or the root pointer.
    fn parent_link_payload(&self, child: Option<ObjectId>) -> (ObjectId, Payload) {
        match self.path.last() {
            None => (ROOT, Payload::Ptr(child)),
            Some(p) => {
                let target_value = match self.phase {
                    Phase::Find => self.op().value(),
                    Phase::FindSucc => unreachable!("insert happens in Find phase"),
                };
                if target_value < p.value {
                    (p.oid, p.payload_with(p.value, child, p.right))
                } else {
                    (p.oid, p.payload_with(p.value, p.left, child))
                }
            }
        }
    }

    fn start_alloc(&mut self) -> StepOutput {
        self.st = St::CounterGot;
        StepOutput::Acquire(self.counter, AccessMode::Write)
    }

    /// Got a node during descent; route by phase.
    fn on_node(&mut self, seen: Seen) -> StepOutput {
        match self.phase {
            Phase::Find => self.on_find(seen),
            Phase::FindSucc => self.on_find_succ(seen),
        }
    }

    fn on_find(&mut self, seen: Seen) -> StepOutput {
        let v = self.op().value();
        if v == seen.value {
            return match self.op() {
                BstOp::Contains(_) => self.close(),
                BstOp::Insert(_) => self.close(), // duplicate
                BstOp::Remove(_) => self.start_remove(seen),
            };
        }
        let next = if v < seen.value {
            seen.left
        } else {
            seen.right
        };
        self.path.push(seen);
        match next {
            Some(oid) => {
                self.cur = Some(oid);
                self.st = St::Descend;
                StepOutput::Acquire(oid, AccessMode::Read)
            }
            None => match self.op() {
                BstOp::Insert(_) => self.start_alloc(),
                _ => self.close(), // contains/remove: absent
            },
        }
    }

    fn start_remove(&mut self, t: Seen) -> StepOutput {
        match (t.left, t.right) {
            (None, None) => {
                let (oid, payload) = self.parent_link_payload(None);
                self.plan.push((oid, payload));
                self.drain_plan()
            }
            (Some(c), None) | (None, Some(c)) => {
                let (oid, payload) = self.parent_link_payload(Some(c));
                self.plan.push((oid, payload));
                self.drain_plan()
            }
            (Some(_), Some(r)) => {
                // Two children: find the in-order successor in the right
                // subtree, splice it out, move its value into the target.
                self.target = Some(t);
                self.succ_parent = None; // direct right child case
                self.phase = Phase::FindSucc;
                self.cur = Some(r);
                self.st = St::Descend;
                StepOutput::Acquire(r, AccessMode::Read)
            }
        }
    }

    fn on_find_succ(&mut self, seen: Seen) -> StepOutput {
        if let Some(l) = seen.left {
            self.succ_parent = Some((seen, true));
            self.cur = Some(l);
            self.st = St::Descend;
            return StepOutput::Acquire(l, AccessMode::Read);
        }
        // `seen` is the successor.
        let t = self.target.expect("target recorded");
        match self.succ_parent {
            None => {
                // Successor is the target's direct right child.
                self.plan
                    .push((t.oid, t.payload_with(seen.value, t.left, seen.right)));
            }
            Some((sp, _via_left)) => {
                self.plan
                    .push((t.oid, t.payload_with(seen.value, t.left, t.right)));
                self.plan
                    .push((sp.oid, sp.payload_with(sp.value, seen.right, sp.right)));
            }
        }
        self.drain_plan()
    }
}

impl TxProgram for BstProgram {
    fn kind(&self) -> TxKind {
        self.kind
    }

    fn label(&self) -> &'static str {
        "bst"
    }

    fn clone_box(&self) -> BoxedProgram {
        Box::new(self.clone())
    }

    fn step(&mut self, input: StepInput<'_>) -> StepOutput {
        match self.st.clone() {
            St::NextOp => {
                if self.op_idx >= self.ops.len() {
                    return StepOutput::Finish;
                }
                self.st = St::OpenAck;
                StepOutput::OpenNested(self.op().child_kind())
            }
            St::OpenAck => {
                self.phase = Phase::Find;
                self.path.clear();
                self.plan.clear();
                self.target = None;
                self.succ_parent = None;
                self.new_node = None;
                self.st = St::RootValue;
                StepOutput::Acquire(ROOT, AccessMode::Read)
            }
            St::RootValue => {
                let StepInput::Value(Payload::Ptr(root)) = input else {
                    panic!("expected root pointer, got {input:?}");
                };
                match *root {
                    Some(oid) => {
                        self.cur = Some(oid);
                        self.st = St::Descend;
                        StepOutput::Acquire(oid, AccessMode::Read)
                    }
                    None => match self.op() {
                        BstOp::Insert(_) => self.start_alloc(),
                        _ => self.close(),
                    },
                }
            }
            St::Descend => {
                let StepInput::Value(Payload::TreeNode {
                    value, left, right, ..
                }) = input
                else {
                    panic!("expected tree node, got {input:?}");
                };
                let seen = Seen {
                    oid: self.cur.expect("descending a real node"),
                    value: *value,
                    left: *left,
                    right: *right,
                };
                self.on_node(seen)
            }
            St::CounterGot => {
                let StepInput::Value(Payload::Scalar(c)) = input else {
                    panic!("expected counter, got {input:?}");
                };
                let c = *c;
                if (c as u64) >= self.pool_size {
                    return self.close(); // pool exhausted: no-op
                }
                self.new_node = Some(ObjectId(self.pool_base + c as u64));
                self.st = St::CounterWritten;
                StepOutput::WriteLocal(self.counter, Payload::Scalar(c + 1))
            }
            St::CounterWritten => {
                self.st = St::PoolGot;
                StepOutput::Acquire(self.new_node.expect("allocated"), AccessMode::Write)
            }
            St::PoolGot => {
                self.st = St::NewLinked;
                StepOutput::WriteLocal(
                    self.new_node.expect("allocated"),
                    Payload::TreeNode {
                        value: self.op().value(),
                        left: None,
                        right: None,
                        red: false,
                    },
                )
            }
            St::NewLinked => {
                let (oid, payload) = self.parent_link_payload(self.new_node);
                self.plan.push((oid, payload));
                self.drain_plan()
            }
            St::PlanGot => {
                let (oid, payload) = self.plan.remove(0);
                self.st = St::CloseOp;
                let _ = input; // the old payload is superseded by the plan
                StepOutput::WriteLocal(oid, payload)
            }
            St::CloseOp => self.drain_plan(),
            St::Closed => {
                self.st = St::Gap;
                StepOutput::Compute(self.compute)
            }
            St::Gap => {
                self.op_idx += 1;
                self.st = St::NextOp;
                self.step(StepInput::Ack)
            }
        }
    }
}

/// Build a perfectly balanced BST over `values[lo..hi)`; returns the root.
fn build_balanced(
    values: &[i64],
    lo: usize,
    hi: usize,
    next_oid: &mut u64,
    out: &mut Vec<(ObjectId, Payload)>,
) -> Option<ObjectId> {
    if lo >= hi {
        return None;
    }
    let mid = (lo + hi) / 2;
    let oid = ObjectId(*next_oid);
    *next_oid += 1;
    // Reserve the id before recursing so ids are unique.
    let left = build_balanced(values, lo, mid, next_oid, out);
    let right = build_balanced(values, mid + 1, hi, next_oid, out);
    out.push((
        oid,
        Payload::TreeNode {
            value: values[mid],
            left,
            right,
            red: false,
        },
    ));
    Some(oid)
}

/// Build the BST workload.
pub fn generate(p: &WorkloadParams) -> WorkloadSource {
    let size = p.total_objects().min(256);
    let values: Vec<i64> = (1..=size as i64).map(|i| 2 * i).collect();
    let pool_size = (p.txns_per_node * p.max_nested_ops) as u64;

    let mut objects: Vec<(ObjectId, Payload)> = Vec::new();
    let mut next_oid = NODE_BASE;
    let root = build_balanced(&values, 0, values.len(), &mut next_oid, &mut objects);
    objects.push((ROOT, Payload::Ptr(root)));
    for node in 0..p.nodes {
        objects.push((ObjectId(COUNTER_BASE + node as u64), Payload::Scalar(0)));
        for k in 0..pool_size {
            objects.push((
                ObjectId(POOL_BASE + node as u64 * pool_size + k),
                Payload::TreeNode {
                    value: 0,
                    left: None,
                    right: None,
                    red: false,
                },
            ));
        }
    }

    let value_space = 2 * size as u64 + 2;
    let summary_count = (p.nodes as u64 / 2).max(2);
    for i in 0..summary_count {
        objects.push((ObjectId(SUMMARY_BASE + i), Payload::Scalar(0)));
    }

    let mut programs: Vec<Vec<BoxedProgram>> = Vec::with_capacity(p.nodes);
    for node in 0..p.nodes {
        let mut rng = p.node_rng(node);
        let mut queue: Vec<BoxedProgram> = Vec::with_capacity(p.txns_per_node);
        for _ in 0..p.txns_per_node {
            let nested = p.sample_nested_ops(&mut rng);
            let read_only = p.sample_read_only(&mut rng);
            let kind = if read_only {
                KIND_BST_READER
            } else {
                KIND_BST_WRITER
            };
            let ops: Vec<BstOp> = (0..nested)
                .map(|_| {
                    let v = 1 + rng.below(value_space) as i64;
                    if read_only {
                        BstOp::Contains(v)
                    } else if rng.chance(0.5) {
                        BstOp::Insert(v)
                    } else {
                        BstOp::Remove(v)
                    }
                })
                .collect();
            let summary = ObjectId(SUMMARY_BASE + rng.below(summary_count));
            let delta = if read_only { None } else { Some(1) };
            queue.push(Box::new(WithTrailer::new(
                Box::new(BstProgram::new(kind, ops, node, pool_size, p.compute)),
                summary,
                delta,
            )));
        }
        programs.push(queue);
    }
    WorkloadSource { objects, programs }
}

/// In-order traversal of the committed tree; panics on cycles. Used for
/// invariant checks (sortedness == BST property).
pub fn collect_inorder(state: &std::collections::HashMap<ObjectId, (Payload, u64)>) -> Vec<i64> {
    fn walk(
        state: &std::collections::HashMap<ObjectId, (Payload, u64)>,
        node: Option<ObjectId>,
        out: &mut Vec<i64>,
        budget: &mut usize,
    ) {
        let Some(oid) = node else { return };
        assert!(*budget > 0, "cycle suspected in tree");
        *budget -= 1;
        let (payload, _) = state
            .get(&oid)
            .unwrap_or_else(|| panic!("dangling tree link to {oid:?}"));
        let Payload::TreeNode {
            value, left, right, ..
        } = payload
        else {
            panic!("non-tree-node in tree: {payload:?}");
        };
        walk(state, *left, out, budget);
        out.push(*value);
        walk(state, *right, out, budget);
    }
    let (rootp, _) = &state[&ROOT];
    let mut out = Vec::new();
    let mut budget = state.len();
    walk(state, rootp.as_ptr(), &mut out, &mut budget);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn drive(prog: &mut BstProgram, store: &mut HashMap<ObjectId, Payload>) {
        let mut value: Option<Payload> = None;
        let mut begin = true;
        loop {
            let out = {
                let input = if begin {
                    StepInput::Begin
                } else if let Some(v) = &value {
                    StepInput::Value(v)
                } else {
                    StepInput::Ack
                };
                prog.step(input)
            };
            begin = false;
            match out {
                StepOutput::Acquire(oid, _) => {
                    value = Some(
                        store
                            .get(&oid)
                            .cloned()
                            .unwrap_or_else(|| panic!("acquired unknown object {oid:?}")),
                    );
                }
                StepOutput::WriteLocal(oid, p) => {
                    store.insert(oid, p);
                    value = None;
                }
                StepOutput::Finish => break,
                _ => value = None,
            }
        }
    }

    fn store_from(p: &WorkloadParams) -> HashMap<ObjectId, Payload> {
        generate(p).objects.into_iter().collect()
    }

    fn inorder(store: &HashMap<ObjectId, Payload>) -> Vec<i64> {
        let state: HashMap<ObjectId, (Payload, u64)> =
            store.iter().map(|(k, v)| (*k, (v.clone(), 0))).collect();
        collect_inorder(&state)
    }

    fn params() -> WorkloadParams {
        WorkloadParams {
            nodes: 2,
            objects_per_node: 8,
            txns_per_node: 4,
            ..WorkloadParams::default()
        }
    }

    #[test]
    fn initial_tree_is_sorted() {
        let store = store_from(&params());
        let v = inorder(&store);
        assert_eq!(v.len(), 16);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn insert_new_value() {
        let p = params();
        let mut store = store_from(&p);
        let mut prog = BstProgram::new(
            KIND_BST_WRITER,
            vec![BstOp::Insert(5)],
            0,
            16,
            SimDuration::from_micros(1),
        );
        drive(&mut prog, &mut store);
        let v = inorder(&store);
        assert!(v.contains(&5));
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn remove_leaf_and_internal() {
        let p = params();
        let mut store = store_from(&p);
        let before = inorder(&store);
        // Remove a value with (very likely) two children: the median.
        let target = before[before.len() / 2];
        let mut prog = BstProgram::new(
            KIND_BST_WRITER,
            vec![BstOp::Remove(target)],
            0,
            16,
            SimDuration::from_micros(1),
        );
        drive(&mut prog, &mut store);
        let after = inorder(&store);
        assert_eq!(after.len(), before.len() - 1);
        assert!(!after.contains(&target));
        assert!(after.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn remove_every_value_in_random_order() {
        let p = params();
        let mut store = store_from(&p);
        let mut values = inorder(&store);
        // Deterministic shuffle.
        let mut rng = dstm_sim::SimRng::new(5);
        rng.shuffle(&mut values);
        for v in values {
            let mut prog = BstProgram::new(
                KIND_BST_WRITER,
                vec![BstOp::Remove(v)],
                0,
                64,
                SimDuration::from_micros(1),
            );
            drive(&mut prog, &mut store);
            let now = inorder(&store);
            assert!(!now.contains(&v), "value {v} not removed");
            assert!(now.windows(2).all(|w| w[0] < w[1]), "BST property broken");
        }
        assert!(inorder(&store).is_empty());
    }

    #[test]
    fn contains_does_not_mutate() {
        let p = params();
        let mut store = store_from(&p);
        let before = inorder(&store);
        let mut prog = BstProgram::new(
            KIND_BST_READER,
            vec![BstOp::Contains(3), BstOp::Contains(4)],
            0,
            16,
            SimDuration::from_micros(1),
        );
        drive(&mut prog, &mut store);
        assert_eq!(inorder(&store), before);
    }

    #[test]
    fn insert_duplicate_is_noop() {
        let p = params();
        let mut store = store_from(&p);
        let before = inorder(&store);
        let existing = before[0];
        let mut prog = BstProgram::new(
            KIND_BST_WRITER,
            vec![BstOp::Insert(existing)],
            0,
            16,
            SimDuration::from_micros(1),
        );
        drive(&mut prog, &mut store);
        assert_eq!(inorder(&store), before);
    }

    #[test]
    fn mixed_op_sequence_preserves_invariants() {
        let p = params();
        let mut store = store_from(&p);
        let mut prog = BstProgram::new(
            KIND_BST_WRITER,
            vec![
                BstOp::Insert(1),
                BstOp::Remove(2),
                BstOp::Insert(99),
                BstOp::Contains(1),
                BstOp::Remove(99),
            ],
            0,
            16,
            SimDuration::from_micros(1),
        );
        drive(&mut prog, &mut store);
        let v = inorder(&store);
        assert!(v.contains(&1));
        assert!(!v.contains(&99));
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }
}
