//! Red/Black Tree (RB-Tree) microbenchmark (§IV-A).
//!
//! A balanced search tree over distributed `TreeNode` objects with full
//! insert rebalancing (recoloring + rotations). The program keeps a **local
//! model** of every node fetched during the descent; the CLRS insert-fixup
//! runs against that model, suspending only when it needs an *uncle* node
//! that the descent did not visit (one extra fetch per recoloring step).
//! When the fixup converges, the model is diffed against the as-fetched
//! baseline and the changed nodes (plus possibly the root pointer) become
//! transactional writes — all on already-held objects except the fetched
//! uncles.
//!
//! Rebalancing writes touch nodes high in the tree, which is what gives the
//! RB-Tree more write-write contention than the plain BST at the same op
//! mix.

use crate::params::WorkloadParams;
use dstm_sim::SimDuration;
use hyflow_dstm::program::{AccessMode, StepInput, StepOutput, TxProgram, WithTrailer};
use hyflow_dstm::{BoxedProgram, Payload, WorkloadSource};
use rts_core::{ObjectId, TxKind};
use std::collections::HashMap;

pub const KIND_RB_READER: TxKind = TxKind(50);
pub const KIND_RB_WRITER: TxKind = TxKind(51);
pub const KIND_CONTAINS: TxKind = TxKind(52);
pub const KIND_INSERT: TxKind = TxKind(53);

pub const ROOT: ObjectId = ObjectId(1);
const NODE_BASE: u64 = 2;
const COUNTER_BASE: u64 = 1_000_000;
const POOL_BASE: u64 = 2_000_000;
/// Parent-level summary/statistics objects, touched after the nested ops
/// (Fig. 1's trailing top-level access; see DESIGN.md).
const SUMMARY_BASE: u64 = 3_000_000;

/// One RB operation (inserts and lookups, per the STAMP-style RB workload).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RbOp {
    Contains(i64),
    Insert(i64),
}

impl RbOp {
    fn child_kind(self) -> TxKind {
        match self {
            RbOp::Contains(_) => KIND_CONTAINS,
            RbOp::Insert(_) => KIND_INSERT,
        }
    }

    fn value(self) -> i64 {
        match self {
            RbOp::Contains(v) | RbOp::Insert(v) => v,
        }
    }
}

/// Local view of a tree node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Tn {
    value: i64,
    left: Option<ObjectId>,
    right: Option<ObjectId>,
    red: bool,
}

impl Tn {
    fn payload(&self) -> Payload {
        Payload::TreeNode {
            value: self.value,
            left: self.left,
            right: self.right,
            red: self.red,
        }
    }

    fn from_payload(p: &Payload) -> Tn {
        let Payload::TreeNode {
            value,
            left,
            right,
            red,
        } = p
        else {
            panic!("expected tree node, got {p:?}");
        };
        Tn {
            value: *value,
            left: *left,
            right: *right,
            red: *red,
        }
    }
}

/// Outcome of one fixup pass over the local model.
enum Fixup {
    /// Need this uncle (child of `parent_hint`) fetched into the model.
    NeedUncle {
        uncle: ObjectId,
        parent_hint: ObjectId,
    },
    Done,
}

#[derive(Clone, Debug)]
enum St {
    NextOp,
    OpenAck,
    RootValue,
    Descend,
    CounterGot,
    CounterWritten,
    PoolGot,
    /// Suspended fixup: waiting for an uncle node's payload.
    UncleGot,
    /// Draining the write plan.
    PlanGot,
    CloseOp,
    Closed,
    Gap,
}

/// The RB-Tree transaction program.
#[derive(Clone, Debug)]
pub struct RbProgram {
    kind: TxKind,
    ops: Vec<RbOp>,
    counter: ObjectId,
    pool_base: u64,
    pool_size: u64,
    compute: SimDuration,
    op_idx: usize,
    st: St,
    cur: Option<ObjectId>,
    // Local model of the subtree seen so far.
    nodes: HashMap<ObjectId, Tn>,
    baseline: HashMap<ObjectId, Tn>,
    parent: HashMap<ObjectId, ObjectId>,
    root: Option<ObjectId>,
    baseline_root: Option<ObjectId>,
    /// Node the fixup is currently repairing.
    fix: Option<ObjectId>,
    /// Parent of the uncle being fetched (to index it into the model).
    pending_uncle: Option<(ObjectId, ObjectId)>,
    new_node: Option<ObjectId>,
    plan: Vec<(ObjectId, Payload)>,
}

impl RbProgram {
    pub fn new(
        kind: TxKind,
        ops: Vec<RbOp>,
        invoking_node: usize,
        pool_size: u64,
        compute: SimDuration,
    ) -> Self {
        RbProgram {
            kind,
            ops,
            counter: ObjectId(COUNTER_BASE + invoking_node as u64),
            pool_base: POOL_BASE + invoking_node as u64 * pool_size,
            pool_size,
            compute,
            op_idx: 0,
            st: St::NextOp,
            cur: None,
            nodes: HashMap::new(),
            baseline: HashMap::new(),
            parent: HashMap::new(),
            root: None,
            baseline_root: None,
            fix: None,
            pending_uncle: None,
            new_node: None,
            plan: Vec::new(),
        }
    }

    fn op(&self) -> RbOp {
        self.ops[self.op_idx]
    }

    fn close(&mut self) -> StepOutput {
        self.st = St::Closed;
        StepOutput::CloseNested
    }

    fn drain_plan(&mut self) -> StepOutput {
        match self.plan.first() {
            Some((oid, _)) => {
                let oid = *oid;
                self.st = St::PlanGot;
                StepOutput::Acquire(oid, AccessMode::Write)
            }
            None => self.close(),
        }
    }

    // -- model manipulation -------------------------------------------------

    fn set_child(&mut self, node: ObjectId, left: bool, child: Option<ObjectId>) {
        let n = self.nodes.get_mut(&node).expect("node in model");
        if left {
            n.left = child;
        } else {
            n.right = child;
        }
        if let Some(c) = child {
            self.parent.insert(c, node);
        }
    }

    fn is_left_child(&self, parent: ObjectId, child: ObjectId) -> bool {
        self.nodes[&parent].left == Some(child)
    }

    /// Replace `old`'s position under its parent (or the root) with `new`.
    fn replace_in_parent(&mut self, old: ObjectId, new: ObjectId) {
        match self.parent.get(&old).copied() {
            Some(p) => {
                let left = self.is_left_child(p, old);
                self.set_child(p, left, Some(new));
            }
            None => {
                self.root = Some(new);
                self.parent.remove(&new);
            }
        }
    }

    /// Left-rotate around `x` (x.right becomes x's parent).
    fn rotate_left(&mut self, x: ObjectId) {
        let y = self.nodes[&x].right.expect("rotate_left needs right child");
        let y_left = self.nodes[&y].left;
        self.replace_in_parent(x, y);
        self.set_child(y, true, Some(x));
        let xn = self.nodes.get_mut(&x).expect("x in model");
        xn.right = y_left;
        if let Some(c) = y_left {
            self.parent.insert(c, x);
        }
    }

    /// Right-rotate around `x` (x.left becomes x's parent).
    fn rotate_right(&mut self, x: ObjectId) {
        let y = self.nodes[&x].left.expect("rotate_right needs left child");
        let y_right = self.nodes[&y].right;
        self.replace_in_parent(x, y);
        self.set_child(y, false, Some(x));
        let xn = self.nodes.get_mut(&x).expect("x in model");
        xn.left = y_right;
        if let Some(c) = y_right {
            self.parent.insert(c, x);
        }
    }

    /// One pass of the CLRS insert-fixup over the model, starting at
    /// `self.fix`. Suspends when an unfetched uncle is needed.
    fn fixup(&mut self) -> Fixup {
        loop {
            let z = self.fix.expect("fixup target set");
            let Some(p) = self.parent.get(&z).copied() else {
                // z is the root: blacken and finish.
                self.nodes.get_mut(&z).expect("root in model").red = false;
                return Fixup::Done;
            };
            if !self.nodes[&p].red {
                return Fixup::Done;
            }
            // p is red, hence not the root, hence has a parent.
            let g = self
                .parent
                .get(&p)
                .copied()
                .expect("red node cannot be the root");
            let p_left = self.is_left_child(g, p);
            let uncle = if p_left {
                self.nodes[&g].right
            } else {
                self.nodes[&g].left
            };
            if let Some(u) = uncle {
                if !self.nodes.contains_key(&u) {
                    return Fixup::NeedUncle {
                        uncle: u,
                        parent_hint: g,
                    };
                }
                if self.nodes[&u].red {
                    // Case 1: recolor and continue from the grandparent.
                    self.nodes.get_mut(&p).expect("p").red = false;
                    self.nodes.get_mut(&u).expect("u").red = false;
                    self.nodes.get_mut(&g).expect("g").red = true;
                    self.fix = Some(g);
                    continue;
                }
            }
            // Cases 2/3: uncle black (or nil): rotate.
            let z_inner = if p_left {
                !self.is_left_child(p, z)
            } else {
                self.is_left_child(p, z)
            };
            let p_final = if z_inner {
                // Case 2: rotate p to turn the inner child outward.
                if p_left {
                    self.rotate_left(p);
                } else {
                    self.rotate_right(p);
                }
                z
            } else {
                p
            };
            self.nodes.get_mut(&p_final).expect("pivot").red = false;
            self.nodes.get_mut(&g).expect("g").red = true;
            if p_left {
                self.rotate_right(g);
            } else {
                self.rotate_left(g);
            }
            return Fixup::Done;
        }
    }

    /// Fixup finished: diff the model against the baseline into the plan.
    fn emit_plan(&mut self) -> StepOutput {
        let mut writes: Vec<(ObjectId, Payload)> = Vec::new();
        for (oid, tn) in &self.nodes {
            if self.baseline.get(oid) != Some(tn) {
                writes.push((*oid, tn.payload()));
            }
        }
        // Deterministic order (HashMap iteration is not).
        writes.sort_by_key(|(oid, _)| *oid);
        if self.root != self.baseline_root {
            writes.push((ROOT, Payload::Ptr(self.root)));
        }
        self.plan = writes;
        self.drain_plan()
    }

    fn resume_fixup(&mut self) -> StepOutput {
        match self.fixup() {
            Fixup::Done => self.emit_plan(),
            Fixup::NeedUncle { uncle, parent_hint } => {
                self.pending_uncle = Some((uncle, parent_hint));
                self.st = St::UncleGot;
                StepOutput::Acquire(uncle, AccessMode::Read)
            }
        }
    }

    fn record(&mut self, oid: ObjectId, tn: Tn, parent: Option<ObjectId>) {
        self.nodes.insert(oid, tn);
        self.baseline.insert(oid, tn);
        if let Some(p) = parent {
            self.parent.insert(oid, p);
        }
    }

    fn start_alloc(&mut self) -> StepOutput {
        self.st = St::CounterGot;
        StepOutput::Acquire(self.counter, AccessMode::Write)
    }
}

impl TxProgram for RbProgram {
    fn kind(&self) -> TxKind {
        self.kind
    }

    fn label(&self) -> &'static str {
        "rb-tree"
    }

    fn clone_box(&self) -> BoxedProgram {
        Box::new(self.clone())
    }

    fn step(&mut self, input: StepInput<'_>) -> StepOutput {
        match self.st.clone() {
            St::NextOp => {
                if self.op_idx >= self.ops.len() {
                    return StepOutput::Finish;
                }
                self.st = St::OpenAck;
                StepOutput::OpenNested(self.op().child_kind())
            }
            St::OpenAck => {
                self.nodes.clear();
                self.baseline.clear();
                self.parent.clear();
                self.plan.clear();
                self.fix = None;
                self.pending_uncle = None;
                self.new_node = None;
                self.st = St::RootValue;
                StepOutput::Acquire(ROOT, AccessMode::Read)
            }
            St::RootValue => {
                let StepInput::Value(Payload::Ptr(root)) = input else {
                    panic!("expected root pointer, got {input:?}");
                };
                self.root = *root;
                self.baseline_root = *root;
                match *root {
                    Some(oid) => {
                        self.cur = Some(oid);
                        self.st = St::Descend;
                        StepOutput::Acquire(oid, AccessMode::Read)
                    }
                    None => match self.op() {
                        RbOp::Insert(_) => self.start_alloc(),
                        RbOp::Contains(_) => self.close(),
                    },
                }
            }
            St::Descend => {
                let StepInput::Value(p) = input else {
                    panic!("expected node payload, got {input:?}");
                };
                let tn = Tn::from_payload(p);
                let oid = self.cur.expect("descending a real node");
                let parent = self.parent_of_descent(oid);
                self.record(oid, tn, parent);
                let v = self.op().value();
                if v == tn.value {
                    return self.close(); // found (contains) / duplicate (insert)
                }
                let next = if v < tn.value { tn.left } else { tn.right };
                match next {
                    Some(c) => {
                        self.parent.insert(c, oid);
                        self.cur = Some(c);
                        self.st = St::Descend;
                        StepOutput::Acquire(c, AccessMode::Read)
                    }
                    None => match self.op() {
                        RbOp::Insert(_) => self.start_alloc(),
                        RbOp::Contains(_) => self.close(),
                    },
                }
            }
            St::CounterGot => {
                let StepInput::Value(Payload::Scalar(c)) = input else {
                    panic!("expected counter, got {input:?}");
                };
                let c = *c;
                if (c as u64) >= self.pool_size {
                    return self.close();
                }
                self.new_node = Some(ObjectId(self.pool_base + c as u64));
                self.st = St::CounterWritten;
                StepOutput::WriteLocal(self.counter, Payload::Scalar(c + 1))
            }
            St::CounterWritten => {
                self.st = St::PoolGot;
                StepOutput::Acquire(self.new_node.expect("allocated"), AccessMode::Write)
            }
            St::PoolGot => {
                // Splice the new red node into the model, then rebalance.
                let new = self.new_node.expect("allocated");
                let v = self.op().value();
                let tn = Tn {
                    value: v,
                    left: None,
                    right: None,
                    red: true,
                };
                self.nodes.insert(new, tn);
                // Note: intentionally absent from `baseline`, so the diff
                // always emits the new node's write.
                match self.cur {
                    Some(leaf) if self.root.is_some() => {
                        let left = v < self.nodes[&leaf].value;
                        self.set_child(leaf, left, Some(new));
                    }
                    _ => {
                        self.root = Some(new);
                    }
                }
                self.fix = Some(new);
                self.resume_fixup()
            }
            St::UncleGot => {
                let StepInput::Value(p) = input else {
                    panic!("expected uncle payload, got {input:?}");
                };
                let (uncle, parent_hint) = self.pending_uncle.take().expect("uncle pending");
                let tn = Tn::from_payload(p);
                self.record(uncle, tn, Some(parent_hint));
                self.resume_fixup()
            }
            St::PlanGot => {
                let (oid, payload) = self.plan.remove(0);
                self.st = St::CloseOp;
                StepOutput::WriteLocal(oid, payload)
            }
            St::CloseOp => self.drain_plan(),
            St::Closed => {
                self.st = St::Gap;
                StepOutput::Compute(self.compute)
            }
            St::Gap => {
                self.op_idx += 1;
                self.st = St::NextOp;
                self.step(StepInput::Ack)
            }
        }
    }
}

impl RbProgram {
    /// The parent of `oid` as recorded during the descent (None for the
    /// descent's first node).
    fn parent_of_descent(&self, oid: ObjectId) -> Option<ObjectId> {
        self.parent.get(&oid).copied()
    }
}

/// Build a balanced RB tree: perfectly balanced BST, deepest level red.
fn build_balanced(
    values: &[i64],
    lo: usize,
    hi: usize,
    depth: usize,
    max_depth: usize,
    next_oid: &mut u64,
    out: &mut Vec<(ObjectId, Payload)>,
) -> Option<ObjectId> {
    if lo >= hi {
        return None;
    }
    let mid = (lo + hi) / 2;
    let oid = ObjectId(*next_oid);
    *next_oid += 1;
    let left = build_balanced(values, lo, mid, depth + 1, max_depth, next_oid, out);
    let right = build_balanced(values, mid + 1, hi, depth + 1, max_depth, next_oid, out);
    out.push((
        oid,
        Payload::TreeNode {
            value: values[mid],
            left,
            right,
            red: depth == max_depth && depth > 0,
        },
    ));
    Some(oid)
}

/// Build the RB-Tree workload.
pub fn generate(p: &WorkloadParams) -> WorkloadSource {
    let size = p.total_objects().min(256);
    let values: Vec<i64> = (1..=size as i64).map(|i| 2 * i).collect();
    let pool_size = (p.txns_per_node * p.max_nested_ops) as u64;
    let max_depth = (usize::BITS - (size.max(1)).leading_zeros()) as usize - 1;

    let mut objects: Vec<(ObjectId, Payload)> = Vec::new();
    let mut next_oid = NODE_BASE;
    let root = build_balanced(
        &values,
        0,
        values.len(),
        0,
        max_depth,
        &mut next_oid,
        &mut objects,
    );
    objects.push((ROOT, Payload::Ptr(root)));
    for node in 0..p.nodes {
        objects.push((ObjectId(COUNTER_BASE + node as u64), Payload::Scalar(0)));
        for k in 0..pool_size {
            objects.push((
                ObjectId(POOL_BASE + node as u64 * pool_size + k),
                Payload::TreeNode {
                    value: 0,
                    left: None,
                    right: None,
                    red: false,
                },
            ));
        }
    }

    let value_space = 2 * size as u64 + 2;
    let summary_count = (p.nodes as u64 / 2).max(2);
    for i in 0..summary_count {
        objects.push((ObjectId(SUMMARY_BASE + i), Payload::Scalar(0)));
    }

    let mut programs: Vec<Vec<BoxedProgram>> = Vec::with_capacity(p.nodes);
    for node in 0..p.nodes {
        let mut rng = p.node_rng(node);
        let mut queue: Vec<BoxedProgram> = Vec::with_capacity(p.txns_per_node);
        for _ in 0..p.txns_per_node {
            let nested = p.sample_nested_ops(&mut rng);
            let read_only = p.sample_read_only(&mut rng);
            let kind = if read_only {
                KIND_RB_READER
            } else {
                KIND_RB_WRITER
            };
            let ops: Vec<RbOp> = (0..nested)
                .map(|_| {
                    let v = 1 + rng.below(value_space) as i64;
                    if read_only {
                        RbOp::Contains(v)
                    } else {
                        RbOp::Insert(v)
                    }
                })
                .collect();
            let summary = ObjectId(SUMMARY_BASE + rng.below(summary_count));
            let delta = if read_only { None } else { Some(1) };
            queue.push(Box::new(WithTrailer::new(
                Box::new(RbProgram::new(kind, ops, node, pool_size, p.compute)),
                summary,
                delta,
            )));
        }
        programs.push(queue);
    }
    WorkloadSource { objects, programs }
}

/// Validate red-black invariants over a committed state: BST order, root
/// black, no red-red edge, equal black height on all root→nil paths.
pub fn check_rb(state: &std::collections::HashMap<ObjectId, (Payload, u64)>) -> Result<(), String> {
    fn walk(
        state: &std::collections::HashMap<ObjectId, (Payload, u64)>,
        node: Option<ObjectId>,
        lo: Option<i64>,
        hi: Option<i64>,
        budget: &mut usize,
    ) -> Result<usize, String> {
        let Some(oid) = node else { return Ok(1) };
        if *budget == 0 {
            return Err("cycle suspected".into());
        }
        *budget -= 1;
        let (payload, _) = state
            .get(&oid)
            .ok_or_else(|| format!("dangling link to {oid:?}"))?;
        let Payload::TreeNode {
            value,
            left,
            right,
            red,
        } = payload
        else {
            return Err(format!("non-tree payload at {oid:?}"));
        };
        if lo.is_some_and(|l| *value <= l) || hi.is_some_and(|h| *value >= h) {
            return Err(format!("BST order violated at {oid:?}"));
        }
        if *red {
            for c in [left, right].into_iter().flatten() {
                if let Some((Payload::TreeNode { red: cr, .. }, _)) = state.get(c) {
                    if *cr {
                        return Err(format!("red-red edge at {oid:?} -> {c:?}"));
                    }
                }
            }
        }
        let bl = walk(state, *left, lo, Some(*value), budget)?;
        let br = walk(state, *right, Some(*value), hi, budget)?;
        if bl != br {
            return Err(format!("black height mismatch at {oid:?}: {bl} vs {br}"));
        }
        Ok(bl + usize::from(!*red))
    }

    let (rootp, _) = state.get(&ROOT).ok_or("missing root pointer")?;
    let root = rootp.as_ptr();
    if let Some(r) = root {
        if let Some((Payload::TreeNode { red, .. }, _)) = state.get(&r) {
            if *red {
                return Err("root is red".into());
            }
        }
    }
    let mut budget = state.len();
    walk(state, root, None, None, &mut budget).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(prog: &mut RbProgram, store: &mut HashMap<ObjectId, Payload>) {
        let mut value: Option<Payload> = None;
        let mut begin = true;
        loop {
            let out = {
                let input = if begin {
                    StepInput::Begin
                } else if let Some(v) = &value {
                    StepInput::Value(v)
                } else {
                    StepInput::Ack
                };
                prog.step(input)
            };
            begin = false;
            match out {
                StepOutput::Acquire(oid, _) => {
                    value = Some(
                        store
                            .get(&oid)
                            .cloned()
                            .unwrap_or_else(|| panic!("acquired unknown object {oid:?}")),
                    );
                }
                StepOutput::WriteLocal(oid, p) => {
                    store.insert(oid, p);
                    value = None;
                }
                StepOutput::Finish => break,
                _ => value = None,
            }
        }
    }

    fn as_state(store: &HashMap<ObjectId, Payload>) -> HashMap<ObjectId, (Payload, u64)> {
        store.iter().map(|(k, v)| (*k, (v.clone(), 0))).collect()
    }

    fn params() -> WorkloadParams {
        WorkloadParams {
            nodes: 2,
            objects_per_node: 8,
            txns_per_node: 10,
            ..WorkloadParams::default()
        }
    }

    #[test]
    fn initial_tree_is_valid_rb() {
        for opn in [1usize, 3, 5, 8, 13] {
            let p = WorkloadParams {
                objects_per_node: opn,
                ..params()
            };
            let w = generate(&p);
            let state: HashMap<ObjectId, (Payload, u64)> = w
                .objects
                .iter()
                .map(|(k, v)| (*k, (v.clone(), 0)))
                .collect();
            check_rb(&state).unwrap_or_else(|e| panic!("size {}: {e}", p.total_objects()));
        }
    }

    #[test]
    fn insert_into_empty_tree() {
        let mut store: HashMap<ObjectId, Payload> = HashMap::new();
        store.insert(ROOT, Payload::Ptr(None));
        store.insert(ObjectId(COUNTER_BASE), Payload::Scalar(0));
        for k in 0..8 {
            store.insert(
                ObjectId(POOL_BASE + k),
                Payload::TreeNode {
                    value: 0,
                    left: None,
                    right: None,
                    red: false,
                },
            );
        }
        let mut prog = RbProgram::new(
            KIND_RB_WRITER,
            vec![RbOp::Insert(5)],
            0,
            8,
            SimDuration::from_micros(1),
        );
        drive(&mut prog, &mut store);
        let state = as_state(&store);
        check_rb(&state).unwrap();
        let (rootp, _) = &state[&ROOT];
        let root = rootp.as_ptr().expect("tree non-empty");
        let (Payload::TreeNode { value, red, .. }, _) = &state[&root] else {
            panic!("root not a node");
        };
        assert_eq!(*value, 5);
        assert!(!red, "root must be black");
    }

    #[test]
    fn ascending_inserts_stay_balanced() {
        // The classic RB stress: monotone insertion order.
        let mut store: HashMap<ObjectId, Payload> = HashMap::new();
        store.insert(ROOT, Payload::Ptr(None));
        store.insert(ObjectId(COUNTER_BASE), Payload::Scalar(0));
        let n = 64u64;
        for k in 0..n {
            store.insert(
                ObjectId(POOL_BASE + k),
                Payload::TreeNode {
                    value: 0,
                    left: None,
                    right: None,
                    red: false,
                },
            );
        }
        for v in 1..=n as i64 {
            let mut prog = RbProgram::new(
                KIND_RB_WRITER,
                vec![RbOp::Insert(v)],
                0,
                n,
                SimDuration::from_micros(1),
            );
            drive(&mut prog, &mut store);
            check_rb(&as_state(&store)).unwrap_or_else(|e| panic!("after insert {v}: {e}"));
        }
        // All n values present.
        let state = as_state(&store);
        let mut count = 0;
        let mut stack = vec![state[&ROOT].0.as_ptr()];
        while let Some(n) = stack.pop() {
            if let Some(oid) = n {
                let (Payload::TreeNode { left, right, .. }, _) = &state[&oid] else {
                    panic!()
                };
                count += 1;
                stack.push(*left);
                stack.push(*right);
            }
        }
        assert_eq!(count, 64);
    }

    #[test]
    fn random_inserts_preserve_invariants() {
        let p = params();
        let w = generate(&p);
        let mut store: HashMap<ObjectId, Payload> = w.objects.into_iter().collect();
        let mut rng = dstm_sim::SimRng::new(77);
        for i in 0..60 {
            let v = 1 + rng.below(80) as i64;
            let mut prog = RbProgram::new(
                KIND_RB_WRITER,
                vec![RbOp::Insert(v)],
                0,
                (p.txns_per_node * p.max_nested_ops) as u64,
                SimDuration::from_micros(1),
            );
            drive(&mut prog, &mut store);
            check_rb(&as_state(&store)).unwrap_or_else(|e| panic!("after insert #{i} ({v}): {e}"));
        }
    }

    #[test]
    fn contains_is_readonly() {
        let p = params();
        let w = generate(&p);
        let mut store: HashMap<ObjectId, Payload> = w.objects.into_iter().collect();
        let before = store.clone();
        let mut prog = RbProgram::new(
            KIND_RB_READER,
            vec![RbOp::Contains(4), RbOp::Contains(5), RbOp::Contains(99)],
            0,
            8,
            SimDuration::from_micros(1),
        );
        drive(&mut prog, &mut store);
        assert_eq!(store.len(), before.len());
        for (k, v) in &before {
            assert_eq!(&store[k], v);
        }
    }
}
