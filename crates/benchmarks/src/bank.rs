//! Bank — the monetary benchmark (§IV-A, after the HyFlow Bank app).
//!
//! Accounts are scalar objects. A **write** transaction transfers money:
//! each transfer is a pair of closed-nested children (withdraw, then
//! deposit — the canonical "try an alternative without aborting the
//! top-level action" shape nesting exists for). A **read** transaction
//! audits a few accounts. The invariant checked by the integration tests:
//! total balance is conserved by any interleaving.

use crate::params::WorkloadParams;
use hyflow_dstm::program::{ScriptOp, ScriptProgram};
use hyflow_dstm::{BoxedProgram, Payload, WorkloadSource};
use rts_core::{ObjectId, TxKind};

pub const KIND_TRANSFER: TxKind = TxKind(10);
pub const KIND_AUDIT: TxKind = TxKind(11);
pub const KIND_WITHDRAW: TxKind = TxKind(12);
pub const KIND_DEPOSIT: TxKind = TxKind(13);
pub const KIND_READ: TxKind = TxKind(14);

pub const INITIAL_BALANCE: i64 = 1_000;

/// Per-branch audit-log objects, written at **parent level** after the
/// nested transfers commit (the paper's Fig. 1 shape: the parent accesses
/// `z` after its nested child commits, so a conflict there risks the
/// committed children).
const LOG_BASE: u64 = 3_000_000;

fn account_oid(i: u64) -> ObjectId {
    ObjectId(1 + i)
}

fn log_oid(i: u64) -> ObjectId {
    ObjectId(LOG_BASE + i)
}

fn log_count(p: &WorkloadParams) -> u64 {
    (p.nodes as u64 / 2).max(2)
}

/// Build the Bank workload.
pub fn generate(p: &WorkloadParams) -> WorkloadSource {
    let accounts = p.total_objects() as u64;
    assert!(accounts >= 2, "bank needs at least two accounts");
    let mut objects: Vec<(ObjectId, Payload)> = (0..accounts)
        .map(|i| (account_oid(i), Payload::Scalar(INITIAL_BALANCE)))
        .collect();
    for i in 0..log_count(p) {
        objects.push((log_oid(i), Payload::Scalar(0)));
    }

    let mut programs: Vec<Vec<BoxedProgram>> = Vec::with_capacity(p.nodes);
    for node in 0..p.nodes {
        let mut rng = p.node_rng(node);
        let mut queue: Vec<BoxedProgram> = Vec::with_capacity(p.txns_per_node);
        for _ in 0..p.txns_per_node {
            let nested = p.sample_nested_ops(&mut rng);
            // Up to 10 ops per nested transfer plus the parent-level trailer.
            let mut ops = Vec::with_capacity(nested * 10 + 3);
            if p.sample_read_only(&mut rng) {
                for _ in 0..nested {
                    let a = account_oid(rng.below(accounts));
                    ops.push(ScriptOp::OpenNested(KIND_READ));
                    ops.push(ScriptOp::Read(a));
                    ops.push(ScriptOp::CloseNested);
                    ops.push(ScriptOp::Compute(p.compute));
                }
                // Parent-level read of the branch log at the end.
                ops.push(ScriptOp::Read(log_oid(rng.below(log_count(p)))));
                queue.push(Box::new(ScriptProgram::new(KIND_AUDIT, ops)));
            } else {
                for _ in 0..nested {
                    let a = rng.below(accounts);
                    let mut b = rng.below(accounts);
                    while b == a {
                        b = rng.below(accounts);
                    }
                    let amount = 1 + rng.below(100) as i64;
                    ops.push(ScriptOp::OpenNested(KIND_WITHDRAW));
                    ops.push(ScriptOp::Write(account_oid(a)));
                    ops.push(ScriptOp::AddScalar(account_oid(a), -amount));
                    ops.push(ScriptOp::CloseNested);
                    ops.push(ScriptOp::Compute(p.compute));
                    ops.push(ScriptOp::OpenNested(KIND_DEPOSIT));
                    ops.push(ScriptOp::Write(account_oid(b)));
                    ops.push(ScriptOp::AddScalar(account_oid(b), amount));
                    ops.push(ScriptOp::CloseNested);
                    ops.push(ScriptOp::Compute(p.compute));
                }
                // Parent-level audit-log update after the nested transfers.
                let log = log_oid(rng.below(log_count(p)));
                ops.push(ScriptOp::Write(log));
                ops.push(ScriptOp::AddScalar(log, 1));
                queue.push(Box::new(ScriptProgram::new(KIND_TRANSFER, ops)));
            }
        }
        programs.push(queue);
    }
    WorkloadSource { objects, programs }
}

/// Total money across a final object state — must equal
/// `accounts × INITIAL_BALANCE` forever.
pub fn total_balance(state: &std::collections::HashMap<ObjectId, (Payload, u64)>) -> i64 {
    state
        .iter()
        .filter(|(oid, _)| oid.0 < LOG_BASE)
        .map(|(_, (p, _))| match p {
            Payload::Scalar(v) => *v,
            other => panic!("non-scalar object in bank state: {other:?}"),
        })
        .sum()
}

/// The invariant target for a parameter set.
pub fn expected_total(p: &WorkloadParams) -> i64 {
    p.total_objects() as i64 * INITIAL_BALANCE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams {
            nodes: 4,
            txns_per_node: 20,
            ..WorkloadParams::default()
        }
    }

    #[test]
    fn generates_right_shapes() {
        let p = params();
        let w = generate(&p);
        assert_eq!(w.objects.len(), p.total_objects() + log_count(&p) as usize);
        assert_eq!(w.programs.len(), 4);
        assert!(w.programs.iter().all(|q| q.len() == 20));
        assert!(w
            .objects
            .iter()
            .filter(|(oid, _)| oid.0 < LOG_BASE)
            .all(|(_, pay)| *pay == Payload::Scalar(INITIAL_BALANCE)));
    }

    #[test]
    fn read_ratio_shapes_kinds() {
        let mut p = params();
        p.txns_per_node = 200;
        p.read_ratio = 0.9;
        let w = generate(&p);
        let reads: usize = w
            .programs
            .iter()
            .flatten()
            .filter(|prog| prog.kind() == KIND_AUDIT)
            .count();
        let total = 4 * 200;
        let ratio = reads as f64 / total as f64;
        assert!((0.85..0.95).contains(&ratio), "audit ratio {ratio}");
    }

    #[test]
    fn generation_is_deterministic() {
        let p = params();
        let a = generate(&p);
        let b = generate(&p);
        // Compare the kinds sequence as a proxy for full structural equality.
        let ka: Vec<_> = a.programs.iter().flatten().map(|x| x.kind()).collect();
        let kb: Vec<_> = b.programs.iter().flatten().map(|x| x.kind()).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn compute_steps_use_param() {
        let p = WorkloadParams {
            compute: dstm_sim::SimDuration::from_micros(123),
            ..params()
        };
        let w = generate(&p);
        assert!(!w.programs[0].is_empty());
    }
}
