//! The benchmark suite: one enum to dispatch the six applications, in the
//! order the paper's tables and figures list them.

use crate::params::WorkloadParams;
use hyflow_dstm::WorkloadSource;

/// The six applications of §IV-A.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    Vacation,
    Bank,
    LinkedList,
    RbTree,
    Bst,
    Dht,
}

impl Benchmark {
    /// Paper order (Table I / Fig. 6 rows).
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Vacation,
        Benchmark::Bank,
        Benchmark::LinkedList,
        Benchmark::RbTree,
        Benchmark::Bst,
        Benchmark::Dht,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Benchmark::Vacation => "Vacation",
            Benchmark::Bank => "Bank",
            Benchmark::LinkedList => "Linked List",
            Benchmark::RbTree => "RB Tree",
            Benchmark::Bst => "BST",
            Benchmark::Dht => "DHT",
        }
    }

    /// Generate the workload for this benchmark.
    pub fn generate(self, p: &WorkloadParams) -> WorkloadSource {
        match self {
            Benchmark::Vacation => crate::vacation::generate(p),
            Benchmark::Bank => crate::bank::generate(p),
            Benchmark::LinkedList => crate::list::generate(p),
            Benchmark::RbTree => crate::rbtree::generate(p),
            Benchmark::Bst => crate::bst::generate(p),
            Benchmark::Dht => crate::dht::generate(p),
        }
    }

    /// The RTS tuning `(CL threshold, queue-deadline slack %)` at each
    /// benchmark's throughput peak, found by the `ablation_cl_threshold`
    /// and `ablation_backoff` sweeps — the paper's procedure: *"At a
    /// certain point of the CL's threshold, we observe a peak point of
    /// transactional throughput. Thus ... the CL's threshold corresponding
    /// to the peak point is determined"* (§IV-A). Transactions in the
    /// traversal benchmarks hold many objects, so their carried `myCL` is
    /// intrinsically large and the peak sits at a very high threshold.
    pub fn rts_tuning(self) -> (u32, u64) {
        match self {
            Benchmark::Vacation => (32, 300),
            Benchmark::Bank => (16, 150),
            Benchmark::LinkedList => (1_000_000, 1200),
            Benchmark::RbTree => (1_000_000, 1200),
            Benchmark::Bst => (1_000_000, 150),
            Benchmark::Dht => (16, 150),
        }
    }

    /// Parse a CLI-ish name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        match name.to_ascii_lowercase().as_str() {
            "vacation" => Some(Benchmark::Vacation),
            "bank" => Some(Benchmark::Bank),
            "ll" | "list" | "linked-list" | "linkedlist" => Some(Benchmark::LinkedList),
            "rb" | "rbtree" | "rb-tree" => Some(Benchmark::RbTree),
            "bst" => Some(Benchmark::Bst),
            "dht" => Some(Benchmark::Dht),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_generate() {
        let p = WorkloadParams {
            nodes: 3,
            txns_per_node: 5,
            ..WorkloadParams::default()
        };
        for b in Benchmark::ALL {
            let w = b.generate(&p);
            assert_eq!(w.programs.len(), 3, "{}", b.label());
            assert!(!w.objects.is_empty(), "{}", b.label());
            // Object ids unique within a workload.
            let mut seen = std::collections::HashSet::new();
            for (oid, _) in &w.objects {
                assert!(seen.insert(*oid), "{}: duplicate {oid:?}", b.label());
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(
                Benchmark::from_name(b.label().replace(' ', "-").as_str())
                    .or_else(|| Benchmark::from_name(b.label().replace(' ', "").as_str())),
                Some(b)
            );
        }
        assert_eq!(Benchmark::from_name("nope"), None);
    }
}
