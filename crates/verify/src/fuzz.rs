//! The DST fuzz loop: generate perturbation schedules, run episodes,
//! shrink failures to a minimal on-disk reproducer.
//!
//! Episode `i` derives its seed and its perturbations from one master
//! seed, so a whole campaign is replayable from `(spec, base_seed)` alone.
//! Perturbation step indices are drawn inside the step space the baseline
//! run actually covers (measured by a dry run per seed), so schedules
//! land on real pushes/pops instead of dead tail indices.
//!
//! Shrinking is ddmin-lite over the perturbation list: try dropping
//! contiguous chunks (halving the chunk size down to single entries), then
//! try halving each survivor's magnitude (`extra_ns`, tie `rank`), keeping
//! any candidate that still fails. The loop re-runs the full episode per
//! candidate and is budget-bounded, so a pathological failure still
//! terminates with *some* smaller reproducer.

use crate::episode::{run_episode, run_episode_mutated, EpisodeOutcome, EpisodeSpec};
use dstm_benchmarks::Benchmark;
use dstm_sim::{Perturb, Schedule, SimRng};
use rts_core::SchedulerKind;

/// Fuzz campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    pub episodes: u64,
    pub base_seed: u64,
    /// Upper bound on perturbations per generated schedule.
    pub max_perturbations: usize,
    /// Episode re-runs the shrinker may spend per failure.
    pub shrink_budget: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            episodes: 200,
            base_seed: 0xF0CC_ED51,
            max_perturbations: 24,
            shrink_budget: 400,
        }
    }
}

/// A failed episode, after shrinking.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The schedule as generated.
    pub original: Schedule,
    /// The smallest still-failing schedule the shrinker found.
    pub shrunk: Schedule,
    /// Oracle failures of the *shrunk* schedule.
    pub violations: Vec<String>,
    /// Episode re-runs the shrinker spent.
    pub shrink_reruns: u64,
}

/// Campaign outcome: episodes run, and the first failure (shrunk) if any.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    pub episodes_run: u64,
    pub failure: Option<FuzzFailure>,
}

/// Generate episode `i`'s schedule for a campaign: seed from the master
/// seed, perturbation steps drawn within the baseline run's measured
/// push/pop space.
pub fn generate_schedule(cfg: &FuzzConfig, baseline: &EpisodeOutcome, i: u64) -> Schedule {
    let seed = dstm_sim::mix64(cfg.base_seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut rng = SimRng::new(seed);
    let n = 1 + (rng.next() as usize) % cfg.max_perturbations.max(1);
    let mut perturbations = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.next().is_multiple_of(2) {
            perturbations.push(Perturb::Delay {
                push_step: rng.next() % baseline.pushes.max(1),
                // Up to one full round trip of the paper's slowest link.
                extra_ns: rng.next() % 100_000_000,
            });
        } else {
            perturbations.push(Perturb::TieSwap {
                pop_step: rng.next() % baseline.pops.max(1),
                rank: 1 + rng.next() % 3,
            });
        }
    }
    Schedule {
        seed,
        perturbations,
    }
}

/// Run a fuzz campaign. Stops at the first failing episode, shrinks it,
/// and returns the report; `progress` is called once per episode.
pub fn fuzz(
    spec: &EpisodeSpec,
    cfg: &FuzzConfig,
    mut progress: impl FnMut(u64, &EpisodeOutcome),
) -> FuzzReport {
    fuzz_mutated(spec, cfg, &|_, _| {}, &mut progress)
}

/// [`fuzz`] with the episode-level trace-mutation hook exposed (see
/// [`run_episode_mutated`]); the hook also applies during shrinking, so a
/// seeded bug shrinks exactly like a real one.
pub fn fuzz_mutated(
    spec: &EpisodeSpec,
    cfg: &FuzzConfig,
    mutate: &dyn Fn(&Schedule, &mut hyflow_dstm::TraceLog),
    progress: &mut dyn FnMut(u64, &EpisodeOutcome),
) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..cfg.episodes {
        // Dry run with no perturbations to measure this seed's step space.
        let seed = dstm_sim::mix64(cfg.base_seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let baseline = run_episode(
            spec,
            &Schedule {
                seed,
                perturbations: Vec::new(),
            },
        );
        let schedule = generate_schedule(cfg, &baseline, i);
        let outcome = run_episode_mutated(spec, &schedule, mutate);
        report.episodes_run += 1;
        progress(i, &outcome);
        if !outcome.ok() {
            let fails = |s: &Schedule| -> bool { !run_episode_mutated(spec, s, mutate).ok() };
            let (shrunk, shrink_reruns) = shrink_schedule(&schedule, &fails, cfg.shrink_budget);
            let violations = run_episode_mutated(spec, &shrunk, mutate).violations;
            report.failure = Some(FuzzFailure {
                original: schedule,
                shrunk,
                violations,
                shrink_reruns,
            });
            return report;
        }
    }
    report
}

/// ddmin-lite: minimize `failing`'s perturbation list (then its
/// magnitudes) while `still_fails` holds, spending at most `budget`
/// episode re-runs. Returns the smallest still-failing schedule found and
/// the re-runs spent.
pub fn shrink_schedule(
    failing: &Schedule,
    still_fails: &dyn Fn(&Schedule) -> bool,
    budget: u64,
) -> (Schedule, u64) {
    let mut best = failing.clone();
    let mut spent = 0u64;
    let try_candidate = |cand: &Schedule, spent: &mut u64| -> bool {
        if *spent >= budget {
            return false;
        }
        *spent += 1;
        still_fails(cand)
    };

    // Phase 1: drop contiguous chunks, chunk size halving to 1.
    let mut chunk = best.perturbations.len().max(1).div_ceil(2);
    while chunk >= 1 && spent < budget {
        let mut reduced = false;
        let mut start = 0;
        while start < best.perturbations.len() && spent < budget {
            let end = (start + chunk).min(best.perturbations.len());
            let mut cand = best.clone();
            cand.perturbations.drain(start..end);
            if try_candidate(&cand, &mut spent) {
                best = cand;
                reduced = true;
                // Same `start` now names the next chunk; don't advance.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !reduced {
            break;
        }
        if !reduced {
            chunk /= 2;
        }
    }

    // Phase 2: halve magnitudes of the survivors toward their minimum.
    let mut changed = true;
    while changed && spent < budget {
        changed = false;
        for i in 0..best.perturbations.len() {
            loop {
                let smaller = match best.perturbations[i] {
                    Perturb::Delay {
                        push_step,
                        extra_ns,
                    } if extra_ns > 1 => Some(Perturb::Delay {
                        push_step,
                        extra_ns: extra_ns / 2,
                    }),
                    Perturb::TieSwap { pop_step, rank } if rank > 1 => Some(Perturb::TieSwap {
                        pop_step,
                        rank: rank / 2,
                    }),
                    _ => None,
                };
                let Some(smaller) = smaller else { break };
                let mut cand = best.clone();
                cand.perturbations[i] = smaller;
                if try_candidate(&cand, &mut spent) {
                    best = cand;
                    changed = true;
                } else {
                    break;
                }
                if spent >= budget {
                    break;
                }
            }
        }
    }

    (best, spent)
}

// ---------------------------------------------------------------------------
// Reproducer files
// ---------------------------------------------------------------------------

/// Render a failure as a self-contained reproducer blob: the episode spec
/// followed by the [`Schedule::to_text`] lines. `dstm-verify replay`
/// parses this back with [`parse_reproducer`].
pub fn reproducer_text(spec: &EpisodeSpec, schedule: &Schedule) -> String {
    let mut out = String::from("# dstm-verify reproducer\n");
    out.push_str(&format!(
        "benchmark {}\n",
        spec.benchmark
            .label()
            .to_ascii_lowercase()
            .replace(' ', "-")
    ));
    out.push_str(&format!("scheduler {}\n", scheduler_name(spec.scheduler)));
    out.push_str(&format!("nodes {}\n", spec.nodes));
    out.push_str(&format!("txns {}\n", spec.txns));
    out.push_str(&format!(
        "cache {}\n",
        if spec.cache { "on" } else { "off" }
    ));
    out.push_str(&format!(
        "telemetry {}\n",
        if spec.telemetry { "on" } else { "off" }
    ));
    out.push_str(&schedule.to_text());
    out
}

/// Parse [`reproducer_text`] output back into a spec + schedule.
pub fn parse_reproducer(text: &str) -> Result<(EpisodeSpec, Schedule), String> {
    let mut spec = EpisodeSpec::default();
    let mut schedule_lines = String::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let word = it.next().unwrap_or_default();
        let arg = it.next().unwrap_or_default();
        let bad = |what: &str| format!("line {}: bad {what}: `{arg}`", ln + 1);
        match word {
            "benchmark" => {
                spec.benchmark = Benchmark::from_name(arg).ok_or_else(|| bad("benchmark"))?;
            }
            "scheduler" => {
                spec.scheduler = scheduler_from_name(arg).ok_or_else(|| bad("scheduler"))?;
            }
            "nodes" => spec.nodes = arg.parse().map_err(|_| bad("node count"))?,
            "txns" => spec.txns = arg.parse().map_err(|_| bad("txn count"))?,
            "cache" => spec.cache = on_off(arg).ok_or_else(|| bad("cache flag"))?,
            "telemetry" => spec.telemetry = on_off(arg).ok_or_else(|| bad("telemetry flag"))?,
            // Everything else is the schedule's business (including its
            // own unknown-directive error).
            _ => {
                schedule_lines.push_str(raw);
                schedule_lines.push('\n');
            }
        }
    }
    let schedule = Schedule::from_text(&schedule_lines)?;
    Ok((spec, schedule))
}

fn on_off(s: &str) -> Option<bool> {
    match s {
        "on" | "true" | "1" => Some(true),
        "off" | "false" | "0" => Some(false),
        _ => None,
    }
}

/// CLI-stable scheduler name (lowercase, no punctuation surprises).
pub fn scheduler_name(s: SchedulerKind) -> &'static str {
    match s {
        SchedulerKind::Tfa => "tfa",
        SchedulerKind::TfaBackoff => "backoff",
        SchedulerKind::Rts => "rts",
        SchedulerKind::Ats => "ats",
        SchedulerKind::BiInterval => "bi-interval",
    }
}

/// Parse [`scheduler_name`] output (plus the display labels, for
/// convenience).
pub fn scheduler_from_name(name: &str) -> Option<SchedulerKind> {
    match name.to_ascii_lowercase().as_str() {
        "tfa" => Some(SchedulerKind::Tfa),
        "backoff" | "tfa+backoff" | "tfa-backoff" => Some(SchedulerKind::TfaBackoff),
        "rts" => Some(SchedulerKind::Rts),
        "ats" => Some(SchedulerKind::Ats),
        "bi-interval" | "biinterval" => Some(SchedulerKind::BiInterval),
        _ => None,
    }
}
