//! Exhaustive small-model checker for the TFA/RTS protocol.
//!
//! The model: `nodes` nodes on a complete fixed-delay network, `objects`
//! scalar objects (hash-homed as in production), and one 2-deep
//! closed-nested increment transaction on each of the first two nodes —
//! both touching **every** object, so the two parents conflict on the
//! whole footprint. Concurrency is 1 transaction per node and the
//! workload is 1 transaction per node, which keeps the reachable state
//! space finite for the real protocol while still covering fetch
//! forwarding, nested open/commit/abort, lock/validate/publish commit,
//! queue/backoff scheduling, and cache reuse.
//!
//! Two conflict-adjudication modes (see [`ModelCfg::parent_scope`]): the
//! default **child** scope keeps the model finite — the sweep provably
//! exhausts the reachable space — while the opt-in **parent** scope routes
//! conflicts through the transactional scheduler (the policies diverge:
//! RTS parks, backoff arms timers) at the cost of an unbounded retry
//! space, so it runs as a bounded exploration with the same oracles.
//!
//! Exploration is breadth-first over **delivery choices**: a state is the
//! sequence of [`ChoiceQueue`] picks that produced it, and expanding a
//! state replays its choice prefix on a freshly built system (replay *is*
//! snapshot/restore — the simulator is deterministic given the choice
//! sequence). States are deduplicated by a time-abstract structural
//! fingerprint: every node's [`protocol_fingerprint`] plus the sorted
//! multiset of undelivered message/timer hashes. Timestamps are excluded
//! throughout — `ChoiceQueue` re-stamps deliveries onto a monotone
//! virtual clock, so absolute times are schedule-dependent while protocol
//! state is not.
//!
//! Oracles, checked at every state:
//!
//! * **TFA clock monotonicity** — no node's clock ever decreases along
//!   any path (including cache fast-path grants);
//! * **single writable copy** — no object owned by two nodes;
//! * **cache freshness** — no retained copy newer than the owner's;
//! * **node-local structure** — live-tx accounting, shadow-copy
//!   ancestry, no lock held by a finished transaction.
//!
//! And at terminal states (no event left to deliver):
//!
//! * **progress** — a quiescent system must have finished every issued
//!   transaction (nothing parked forever in a scheduler queue);
//! * **commit totality + trace audit** — both transactions committed and
//!   the recorded protocol trace passes the offline `audit` battery.
//!
//! [`protocol_fingerprint`]: hyflow_dstm::Node::protocol_fingerprint

use std::collections::{HashSet, VecDeque};

use dstm_harness::traceio::audit;
use dstm_net::Topology;
use dstm_sim::SimDuration;
use dstm_sim::{ChoiceQueue, KernelEvent};
use hyflow_dstm::program::{ScriptOp, ScriptProgram};
use hyflow_dstm::{DstmConfig, Fnv64, Msg, Payload, System, SystemBuilder, Timer, WorkloadSource};
use rts_core::{ObjectId, SchedulerKind, TxKind};

/// Model axes and exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct ModelCfg {
    pub scheduler: SchedulerKind,
    pub nodes: usize,
    pub objects: usize,
    /// Run the model with the remote-read cache on (exercises the cache
    /// fast path under every interleaving).
    pub cache: bool,
    /// Adjudicate lock-busy conflicts at **parent** scope (the paper's
    /// baseline), routing them through the transactional scheduler. This
    /// makes the three policies genuinely diverge — RTS parks requesters,
    /// TFA+Backoff arms backoff timers — but a parent abort restarts the
    /// whole transaction with a fresh attempt number, so the retry loop
    /// never returns to a previously seen state and the reachable space is
    /// unbounded. Use it only as a **bounded** exploration (the report says
    /// `BOUNDED`); the default child scope keeps the model finite and the
    /// sweep exhaustive.
    pub parent_scope: bool,
    /// Stop (incomplete) after expanding this many unique states.
    pub max_states: u64,
    /// Stop (incomplete) past this choice-sequence depth.
    pub max_depth: usize,
}

impl Default for ModelCfg {
    fn default() -> Self {
        ModelCfg {
            scheduler: SchedulerKind::Rts,
            nodes: 3,
            objects: 2,
            cache: true,
            parent_scope: false,
            max_states: 500_000,
            max_depth: 4_000,
        }
    }
}

/// Exploration outcome.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Unique states expanded.
    pub explored: u64,
    /// Edges followed (choice deliveries).
    pub transitions: u64,
    /// Quiescent states reached.
    pub terminals: u64,
    /// Revisits pruned by the fingerprint set.
    pub deduped: u64,
    /// Longest choice sequence expanded.
    pub max_depth_seen: usize,
    /// Conflict coverage: the largest system-wide abort total observed in
    /// any explored state. Zero means no interleaving ever collided the
    /// two transactions — the schedulers were never actually exercised.
    pub max_aborts_seen: u64,
    /// Largest system-wide enqueue total observed in any explored state
    /// (RTS parks requesters; always zero for the TFA variants).
    pub max_enqueued_seen: u64,
    /// True iff the frontier emptied without hitting a bound — the listed
    /// state count is the *whole* reachable space of the model.
    pub complete: bool,
    pub violations: Vec<String>,
}

impl CheckReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

type ModelSystem = System<ChoiceQueue<Msg, Timer>>;

/// Build the model system: fresh, at time zero, `StartWorkload` pending.
pub fn build_model(cfg: &ModelCfg) -> ModelSystem {
    assert!(cfg.nodes >= 2, "model needs at least two nodes");
    assert!(cfg.objects >= 1, "model needs at least one object");
    let topo = Topology::complete(cfg.nodes, 5);
    let mut dstm = DstmConfig::default()
        .with_scheduler(cfg.scheduler)
        .with_txns_per_node(1);
    dstm.concurrency_per_node = 1;
    if cfg.parent_scope {
        dstm.conflict_scope = hyflow_dstm::ConflictScope::Parent;
    }
    dstm.cache = cfg.cache;
    dstm.trace_protocol = true;
    let oids: Vec<ObjectId> = (0..cfg.objects as u64).map(ObjectId).collect();
    let objects = oids.iter().map(|&o| (o, Payload::Scalar(0))).collect();
    let mut programs: Vec<Vec<hyflow_dstm::BoxedProgram>> =
        (0..cfg.nodes).map(|_| Vec::new()).collect();
    for (slot, node) in programs.iter_mut().take(2).enumerate() {
        // One 2-deep closed-nested increment per object, with a Compute
        // step inside each child. The compute matters: it turns every
        // child into a multi-event span (ComputeDone timers), so another
        // node's fetch can land *mid-transaction* and the owner-side
        // conflict path — where the three schedulers actually differ —
        // is reachable. Node 1 visits the objects in reverse so the two
        // parents' footprints collide in both orders.
        let mut ops = Vec::new();
        let mut order = oids.clone();
        if slot == 1 {
            order.reverse();
        }
        for oid in order {
            ops.push(ScriptOp::OpenNested(TxKind(11 + slot as u16)));
            ops.push(ScriptOp::Write(oid));
            ops.push(ScriptOp::AddScalar(oid, 1));
            ops.push(ScriptOp::Compute(SimDuration::from_millis(1)));
            ops.push(ScriptOp::CloseNested);
        }
        // Parent kind / child kind distinct per node so the stats table
        // treats them as different transaction classes.
        node.push(Box::new(ScriptProgram::new(TxKind(1 + slot as u16), ops)));
    }
    SystemBuilder::new(topo, dstm)
        .seed(0x5EED_C4EC)
        .build_with_queue(WorkloadSource { objects, programs }, ChoiceQueue::new())
}

/// Rebuild the state reached by a choice prefix (deterministic replay).
fn replay(cfg: &ModelCfg, choices: &[usize]) -> ModelSystem {
    let mut system = build_model(cfg);
    for &c in choices {
        system.world_mut().queue_mut().choose(c);
        let stepped = system.world_mut().step();
        debug_assert!(stepped, "replay ran out of events");
    }
    system
}

/// Time-abstract fingerprint: node protocol states + the sorted multiset
/// of undelivered events.
fn fingerprint(system: &ModelSystem) -> u64 {
    let mut h = Fnv64::new();
    for node in system.world().actors() {
        h.write_u64(node.protocol_fingerprint());
    }
    let mut events: Vec<u64> = system
        .world()
        .queue()
        .pending_events()
        .iter()
        .map(|ev| {
            let mut eh = Fnv64::new();
            match &ev.payload {
                KernelEvent::Msg { from, to, msg } => {
                    eh.write_u8(1);
                    eh.write_u64(u64::from(from.0));
                    eh.write_u64(u64::from(to.0));
                    msg.hash_into(&mut eh);
                }
                KernelEvent::Timer { on, timer, .. } => {
                    eh.write_u8(2);
                    eh.write_u64(u64::from(on.0));
                    timer.hash_into(&mut eh);
                }
            }
            eh.finish()
        })
        .collect();
    events.sort_unstable();
    h.write_u64(events.len() as u64);
    for e in events {
        h.write_u64(e);
    }
    h.finish()
}

/// The safety oracles every reachable state must satisfy. `prev_clocks`
/// are the parent state's per-node TFA clocks (`None` at the root).
fn state_oracles(
    system: &ModelSystem,
    prev_clocks: Option<&[u64]>,
    out: &mut Vec<String>,
) -> Vec<u64> {
    let clocks: Vec<u64> = system.world().actors().iter().map(|n| n.clock()).collect();
    if let Some(prev) = prev_clocks {
        for (i, (&was, &is)) in prev.iter().zip(&clocks).enumerate() {
            if is < was {
                out.push(format!("node {i} TFA clock went backwards: {was} -> {is}"));
            }
        }
    }
    // Mid-flight, a migrating object transiently has two holders (the
    // committed new owner plus the not-yet-tombstoned old one), so the
    // writable-copy invariant here is *per version*: no two nodes may hold
    // the same object at the same committed version — two committed
    // writers at one version would mean a lost update.
    let mut held: std::collections::HashMap<(ObjectId, u64), usize> =
        std::collections::HashMap::new();
    let mut newest: std::collections::HashMap<ObjectId, u64> = std::collections::HashMap::new();
    for (i, node) in system.world().actors().iter().enumerate() {
        for (&oid, owned) in node.owned_objects() {
            if let Some(prev) = held.insert((oid, owned.version), i) {
                out.push(format!(
                    "two committed writers: {oid:?} held at v{} by node {prev} and node {i}",
                    owned.version
                ));
            }
            let v = newest.entry(oid).or_insert(owned.version);
            *v = (*v).max(owned.version);
        }
    }
    // Cache freshness: no retained copy ahead of every authoritative one.
    for (i, node) in system.world().actors().iter().enumerate() {
        for (oid, copy) in node.cached_copies() {
            if let Some(&version) = newest.get(&oid) {
                if copy.version > version {
                    out.push(format!(
                        "node {i} cache ahead of owner: {oid:?} cached v{} owned v{version}",
                        copy.version
                    ));
                }
            }
        }
    }
    for node in system.world().actors() {
        node.local_invariants(out);
    }
    clocks
}

/// Breadth-first exhaustive exploration of the model under `cfg`.
pub fn check_model(cfg: &ModelCfg) -> CheckReport {
    check_model_with(cfg, |_, _| {})
}

/// [`check_model`] with a progress callback `(states_expanded,
/// frontier_len)`, called every 500 expansions.
pub fn check_model_with(cfg: &ModelCfg, mut progress: impl FnMut(u64, usize)) -> CheckReport {
    /// Stop collecting (but keep reporting a failure) past this many
    /// violations — one protocol bug tends to fail whole subtrees.
    const MAX_VIOLATIONS: usize = 20;

    struct StateRec {
        choices: Vec<usize>,
        clocks: Vec<u64>,
    }

    let mut report = CheckReport {
        complete: true,
        ..CheckReport::default()
    };
    let mut seen: HashSet<u64> = HashSet::new();
    let mut frontier: VecDeque<StateRec> = VecDeque::new();

    let root = build_model(cfg);
    let root_clocks = state_oracles(&root, None, &mut report.violations);
    seen.insert(fingerprint(&root));
    frontier.push_back(StateRec {
        choices: Vec::new(),
        clocks: root_clocks,
    });

    while let Some(rec) = frontier.pop_front() {
        if report.explored >= cfg.max_states {
            report.complete = false;
            break;
        }
        if report.violations.len() >= MAX_VIOLATIONS {
            report.complete = false;
            break;
        }
        report.explored += 1;
        report.max_depth_seen = report.max_depth_seen.max(rec.choices.len());
        if report.explored.is_multiple_of(500) {
            progress(report.explored, frontier.len());
        }

        let mut system = replay(cfg, &rec.choices);
        let (mut aborts, mut enqueued) = (0u64, 0u64);
        for node in system.world().actors() {
            aborts += node.metrics.total_aborts();
            enqueued += node.metrics.enqueued;
        }
        report.max_aborts_seen = report.max_aborts_seen.max(aborts);
        report.max_enqueued_seen = report.max_enqueued_seen.max(enqueued);
        let n = system.world().queue().num_choices();
        if n == 0 {
            report.terminals += 1;
            terminal_oracles(&mut system, &mut report);
            continue;
        }
        if rec.choices.len() >= cfg.max_depth {
            report.complete = false;
            continue;
        }

        for c in 0..n {
            report.transitions += 1;
            let mut child = replay(cfg, &rec.choices);
            child.world_mut().queue_mut().choose(c);
            let stepped = child.world_mut().step();
            debug_assert!(stepped, "enabled choice did not step");
            let clocks = state_oracles(&child, Some(&rec.clocks), &mut report.violations);
            if seen.insert(fingerprint(&child)) {
                let mut choices = rec.choices.clone();
                choices.push(c);
                frontier.push_back(StateRec { choices, clocks });
            } else {
                report.deduped += 1;
            }
        }
    }

    report
}

/// Progress + totality + offline audit at a quiescent state.
fn terminal_oracles(system: &mut ModelSystem, report: &mut CheckReport) {
    if !system.all_done() {
        report.violations.push(
            "progress violation: no event left to deliver but a node never finished \
             its workload (transaction parked forever?)"
                .into(),
        );
        return;
    }
    // Quiescent: the strict form of the writable-copy invariant applies.
    if let Err(e) = system.try_object_state() {
        report.violations.push(e);
    }
    let commits: u64 = system
        .world()
        .actors()
        .iter()
        .map(|n| n.metrics.commits)
        .sum();
    if commits != 2 {
        report.violations.push(format!(
            "terminal state committed {commits} top-level transactions, expected 2"
        ));
    }
    let trace = system.take_trace();
    let audit_report = audit(&trace);
    for v in audit_report.violations {
        report.violations.push(format!("terminal trace audit: {v}"));
    }
}
