//! One fuzz episode: a complete simulated run under a perturbed schedule,
//! followed by the full oracle battery.
//!
//! An episode is an ordinary harness cell executed on a
//! [`PerturbQueue`], so every episode is an execution the simulator could
//! have produced under different link delays and tiebreaks (see
//! `dstm_sim::perturb` for the realizability argument). After the run the
//! oracles check:
//!
//! * **liveness** — the run quiesces and every issued top-level
//!   transaction commits exactly once;
//! * **single writable copy** — [`System::try_object_state`] finds each
//!   object owned by exactly one node;
//! * **cache freshness** — no retained read copy is *newer* than the
//!   owner's authoritative version (the cache may lag, never lead);
//! * **node-local structure** — [`hyflow_dstm::Node::local_invariants`]:
//!   live-transaction accounting, shadow-copy ancestry, lock liveness;
//! * **telemetry reconciliation** — per-epoch counter deltas sum exactly
//!   to the final merged counters (no sample lost or double-counted);
//! * **offline trace oracles** — `dstm-trace`'s [`audit`] (span pairing,
//!   commit serializability, counter cross-checks) and [`analyze`]
//!   (wasted-work ledger reconciliation) both pass on the JSONL-round-
//!   tripped trace.
//!
//! The outcome carries a behavior **digest** (FNV-64 over the headline
//! counters and the full trace encoding) so replays can be asserted
//! bit-identical: same [`Schedule`] ⇒ same digest.

use dstm_benchmarks::Benchmark;
use dstm_harness::runner::{build_system_with_queue, Cell};
use dstm_harness::traceio::{analyze, audit};
use dstm_sim::{PerturbQueue, Schedule};
use hyflow_dstm::{Fnv64, SchedLabel, TraceLog};
use rts_core::SchedulerKind;

/// The fixed (schedule-independent) axes of a fuzz episode. The varying
/// part — seed and perturbation list — lives in the [`Schedule`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpisodeSpec {
    pub benchmark: Benchmark,
    pub scheduler: SchedulerKind,
    pub nodes: usize,
    pub txns: usize,
    /// Run the clock-validated remote-read cache (exercises the freshness
    /// oracle and the cache counters).
    pub cache: bool,
    /// Run the epoch sampler (exercises the reconciliation oracle).
    pub telemetry: bool,
}

impl Default for EpisodeSpec {
    fn default() -> Self {
        // Small enough for hundreds of episodes per CI minute, contended
        // enough (2 objects/node, 50% read parents) that schedules actually
        // collide transactions.
        EpisodeSpec {
            benchmark: Benchmark::Bank,
            scheduler: SchedulerKind::Rts,
            nodes: 4,
            txns: 3,
            cache: true,
            telemetry: true,
        }
    }
}

impl EpisodeSpec {
    /// The harness cell this spec runs, under `seed`. Shards are pinned to
    /// 1 so `DSTM_SHARDS` in the environment cannot change what a saved
    /// reproducer replays.
    pub fn cell(&self, seed: u64) -> Cell {
        let mut cell = Cell::new(self.benchmark, self.scheduler, self.nodes, 0.5)
            .with_txns(self.txns)
            .with_seed(seed)
            .with_cache(self.cache)
            .with_shards(1);
        if self.telemetry {
            cell = cell.with_telemetry();
        }
        cell.params.objects_per_node = 2;
        cell.dstm.trace_protocol = true;
        cell
    }
}

/// What one episode produced.
#[derive(Clone, Debug)]
pub struct EpisodeOutcome {
    /// Oracle failures, empty for a clean episode.
    pub violations: Vec<String>,
    /// FNV-64 over the headline counters and the full trace JSONL; equal
    /// digests ⇔ behaviorally identical runs.
    pub digest: u64,
    pub commits: u64,
    /// Kernel pushes/pops the run performed — the step space a schedule's
    /// perturbations can target.
    pub pushes: u64,
    pub pops: u64,
}

impl EpisodeOutcome {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run one episode under `schedule` and apply every oracle.
pub fn run_episode(spec: &EpisodeSpec, schedule: &Schedule) -> EpisodeOutcome {
    run_episode_mutated(spec, schedule, &|_, _| {})
}

/// [`run_episode`] with a trace-mutation hook applied *between* the run
/// and the offline oracles. This is the mutation-test seam: a test can
/// corrupt the recorded trace (duplicate a commit, drop an abort span) and
/// assert the oracle battery catches it and that the shrinker reduces the
/// triggering schedule — validating the fuzzer end-to-end without
/// planting a bug in the protocol itself.
pub fn run_episode_mutated(
    spec: &EpisodeSpec,
    schedule: &Schedule,
    mutate: &dyn Fn(&Schedule, &mut TraceLog),
) -> EpisodeOutcome {
    let cell = spec.cell(schedule.seed);
    let expected = (spec.nodes * spec.txns) as u64;
    let mut system = build_system_with_queue(&cell, PerturbQueue::new(schedule));
    let metrics = system.run_default();
    let pushes = system.world().queue().pushes();
    let pops = system.world().queue().pops();

    let mut violations = Vec::new();

    // Liveness: the run quiesced and nothing was lost or duplicated.
    if !system.all_done() {
        violations.push("run did not quiesce: some node never finished its workload".into());
    }
    if metrics.merged.commits != expected {
        violations.push(format!(
            "commit count {} != issued transactions {expected}",
            metrics.merged.commits
        ));
    }

    // Safety: exactly one writable copy per object, and no cached read
    // copy ahead of the authoritative version.
    match system.try_object_state() {
        Ok(state) => {
            for node in system.world().actors() {
                for (oid, copy) in node.cached_copies() {
                    match state.get(&oid) {
                        Some(&(_, version)) if copy.version > version => {
                            violations.push(format!(
                                "cache ahead of owner: {oid:?} cached at v{} but owned at v{version}",
                                copy.version
                            ));
                        }
                        Some(_) => {}
                        None => {
                            violations.push(format!("cached copy of {oid:?} which no node owns"))
                        }
                    }
                }
            }
        }
        Err(e) => violations.push(e),
    }

    // Node-local structural invariants.
    for node in system.world().actors() {
        node.local_invariants(&mut violations);
    }

    // Telemetry reconciliation: epoch deltas must sum to the final merged
    // counters. Only exact when no node's ring dropped epochs.
    if spec.telemetry {
        let reports = system.take_telemetry();
        if reports.iter().all(|r| r.dropped_epochs == 0) {
            let sum = |f: fn(&hyflow_dstm::EpochSample) -> u64| -> u64 {
                reports.iter().flat_map(|r| r.epochs.iter()).map(f).sum()
            };
            let m = &metrics.merged;
            let checks: [(&str, u64, u64); 5] = [
                ("commits", sum(|e| e.commits), m.commits),
                ("aborts", sum(|e| e.aborts), m.total_aborts()),
                ("cache_hits", sum(|e| e.cache_hits), m.cache_hits),
                ("cache_misses", sum(|e| e.cache_misses), m.cache_misses),
                (
                    "cache_invalidations",
                    sum(|e| e.cache_invalidations),
                    m.cache_invalidations,
                ),
            ];
            for (name, epochs, counter) in checks {
                if epochs != counter {
                    violations.push(format!(
                        "telemetry does not reconcile: epoch-sum {name} = {epochs}, counter = {counter}"
                    ));
                }
            }
        }
    }

    // Offline trace oracles on the JSONL round trip, with the mutation
    // hook in between (identity for real fuzzing).
    let mut trace = system.take_trace();
    if let Some(label) = SchedLabel::from_label(spec.scheduler.label()) {
        trace.push_run_info(label, spec.nodes as u64);
    }
    trace.push_summary(system.now(), &metrics.merged);
    mutate(schedule, &mut trace);
    let jsonl = trace.to_jsonl();
    match TraceLog::parse_jsonl(&jsonl) {
        Ok(parsed) => {
            let report = audit(&parsed);
            for v in report.violations {
                violations.push(format!("audit: {v}"));
            }
            let an = analyze(&parsed, 0);
            for v in an.mismatches {
                violations.push(format!("analyze: {v}"));
            }
        }
        Err(e) => violations.push(format!("trace does not round-trip through JSONL: {e}")),
    }

    let mut h = Fnv64::new();
    h.write_u64(metrics.merged.commits);
    h.write_u64(metrics.merged.total_aborts());
    h.write_u64(metrics.messages);
    h.write_u64(metrics.ended_at.0);
    h.write_bytes(jsonl.as_bytes());

    EpisodeOutcome {
        violations,
        digest: h.finish(),
        commits: metrics.merged.commits,
        pushes,
        pops,
    }
}
