//! `dstm-verify` — deterministic-simulation fuzzer and small-model
//! protocol checker.
//!
//! ```text
//! dstm-verify check  [--scheduler tfa|backoff|rts|all] [--nodes N]
//!                    [--objects K] [--no-cache] [--parent-scope]
//!                    [--max-states N] [--max-depth N]
//! dstm-verify fuzz   [--episodes N] [--seed S] [--benchmark NAME]
//!                    [--scheduler NAME] [--nodes N] [--txns N]
//!                    [--no-cache] [--no-telemetry] [--out FILE]
//! dstm-verify replay FILE
//! ```
//!
//! Exit status: 0 clean, 1 violation found (fuzz also writes the shrunk
//! reproducer to `--out`, default `verify-reproducer.txt`), 2 usage error.

use std::process::ExitCode;

use dstm_verify::{
    check_model_with, fuzz, parse_reproducer, reproducer_text, run_episode, scheduler_from_name,
    scheduler_name, CheckReport, EpisodeSpec, FuzzConfig, ModelCfg,
};
use rts_core::SchedulerKind;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage("missing subcommand");
    };
    match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "fuzz" => cmd_fuzz(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "--help" | "-h" | "help" => {
            eprint!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => usage(&format!("unknown subcommand `{other}`")),
    }
}

const USAGE: &str = "\
usage:
  dstm-verify check  [--scheduler tfa|backoff|rts|all] [--nodes N] [--objects K]
                     [--no-cache] [--parent-scope] [--max-states N] [--max-depth N]
  dstm-verify fuzz   [--episodes N] [--seed S] [--benchmark NAME] [--scheduler NAME]
                     [--nodes N] [--txns N] [--no-cache] [--no-telemetry] [--out FILE]
  dstm-verify replay FILE
";

fn usage(msg: &str) -> ExitCode {
    eprintln!("dstm-verify: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

/// Pull the value of `--flag VALUE` out of `args`, parsed by `parse`.
fn opt<T>(
    args: &[String],
    flag: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Option<T>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))?;
            return parse(v)
                .map(Some)
                .ok_or_else(|| format!("bad value for {flag}: `{v}`"));
        }
    }
    Ok(None)
}

fn has(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn cmd_check(args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<(Vec<SchedulerKind>, ModelCfg), String> {
        let mut cfg = ModelCfg::default();
        let schedulers = match opt(args, "--scheduler", |v| {
            if v == "all" {
                Some(None)
            } else {
                scheduler_from_name(v).map(Some)
            }
        })? {
            Some(Some(one)) => vec![one],
            // Default and `all`: the paper's three schedulers.
            _ => vec![
                SchedulerKind::Tfa,
                SchedulerKind::TfaBackoff,
                SchedulerKind::Rts,
            ],
        };
        if let Some(n) = opt(args, "--nodes", |v| v.parse().ok())? {
            cfg.nodes = n;
        }
        if let Some(k) = opt(args, "--objects", |v| v.parse().ok())? {
            cfg.objects = k;
        }
        if let Some(m) = opt(args, "--max-states", |v| v.parse().ok())? {
            cfg.max_states = m;
        }
        if let Some(d) = opt(args, "--max-depth", |v| v.parse().ok())? {
            cfg.max_depth = d;
        }
        cfg.cache = !has(args, "--no-cache");
        cfg.parent_scope = has(args, "--parent-scope");
        if cfg.parent_scope && !has(args, "--max-states") {
            // Parent scope is unbounded by construction; default to a cap
            // that finishes in CI time rather than the exhaustive-sweep cap.
            cfg.max_states = 20_000;
        }
        if cfg.parent_scope && !has(args, "--max-depth") {
            cfg.max_depth = 150;
        }
        Ok((schedulers, cfg))
    })();
    let (schedulers, base) = match parsed {
        Ok(p) => p,
        Err(e) => return usage(&e),
    };

    let mut failed = false;
    for s in schedulers {
        let cfg = ModelCfg {
            scheduler: s,
            ..base
        };
        println!(
            "checking {} on {} nodes x {} objects (cache {}, {} scope) ...",
            scheduler_name(s),
            cfg.nodes,
            cfg.objects,
            if cfg.cache { "on" } else { "off" },
            if cfg.parent_scope { "parent" } else { "child" }
        );
        let report = check_model_with(&cfg, |states, frontier| {
            eprintln!("  ... {states} states expanded, frontier {frontier}");
        });
        print_check_report(s, &report);
        failed |= !report.ok();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_check_report(s: SchedulerKind, r: &CheckReport) {
    println!(
        "{}: {} states, {} transitions, {} terminals, {} deduped, depth {} — {}",
        scheduler_name(s),
        r.explored,
        r.transitions,
        r.terminals,
        r.deduped,
        r.max_depth_seen,
        if r.complete {
            "state space exhausted"
        } else {
            "BOUNDED (hit a cap; coverage incomplete)"
        }
    );
    println!(
        "{}: conflict coverage: max {} aborts / {} enqueues in any explored state",
        scheduler_name(s),
        r.max_aborts_seen,
        r.max_enqueued_seen
    );
    if r.ok() {
        println!("{}: no invariant violations", scheduler_name(s));
    } else {
        for v in &r.violations {
            println!("{}: VIOLATION: {v}", scheduler_name(s));
        }
    }
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<(EpisodeSpec, FuzzConfig, String), String> {
        let mut spec = EpisodeSpec::default();
        let mut cfg = FuzzConfig::default();
        if let Some(b) = opt(args, "--benchmark", dstm_benchmarks::Benchmark::from_name)? {
            spec.benchmark = b;
        }
        if let Some(s) = opt(args, "--scheduler", scheduler_from_name)? {
            spec.scheduler = s;
        }
        if let Some(n) = opt(args, "--nodes", |v| v.parse().ok())? {
            spec.nodes = n;
        }
        if let Some(t) = opt(args, "--txns", |v| v.parse().ok())? {
            spec.txns = t;
        }
        spec.cache = !has(args, "--no-cache");
        spec.telemetry = !has(args, "--no-telemetry");
        if let Some(e) = opt(args, "--episodes", |v| v.parse().ok())? {
            cfg.episodes = e;
        }
        if let Some(s) = opt(args, "--seed", |v| v.parse().ok())? {
            cfg.base_seed = s;
        }
        let out = opt(args, "--out", |v| Some(v.to_string()))?
            .unwrap_or_else(|| "verify-reproducer.txt".to_string());
        Ok((spec, cfg, out))
    })();
    let (spec, cfg, out) = match parsed {
        Ok(p) => p,
        Err(e) => return usage(&e),
    };

    println!(
        "fuzzing {} episodes: {} / {} / {} nodes x {} txns (seed {:#x})",
        cfg.episodes,
        spec.benchmark.label(),
        scheduler_name(spec.scheduler),
        spec.nodes,
        spec.txns,
        cfg.base_seed
    );
    let report = fuzz(&spec, &cfg, |i, outcome| {
        if (i + 1) % 50 == 0 {
            eprintln!(
                "  ... episode {} ok (digest {:#018x})",
                i + 1,
                outcome.digest
            );
        }
    });
    match report.failure {
        None => {
            println!("{} episodes, no violations", report.episodes_run);
            ExitCode::SUCCESS
        }
        Some(f) => {
            println!(
                "episode {} FAILED; shrunk {} -> {} perturbations in {} reruns",
                report.episodes_run,
                f.original.perturbations.len(),
                f.shrunk.perturbations.len(),
                f.shrink_reruns
            );
            for v in &f.violations {
                println!("VIOLATION: {v}");
            }
            let blob = reproducer_text(&spec, &f.shrunk);
            match std::fs::write(&out, &blob) {
                Ok(()) => println!("reproducer written to {out} (dstm-verify replay {out})"),
                Err(e) => eprintln!("could not write reproducer {out}: {e}"),
            }
            ExitCode::FAILURE
        }
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage("replay needs a reproducer file");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dstm-verify: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let (spec, schedule) = match parse_reproducer(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dstm-verify: bad reproducer {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {} / {} / {} nodes x {} txns, seed {:#x}, {} perturbations",
        spec.benchmark.label(),
        scheduler_name(spec.scheduler),
        spec.nodes,
        spec.txns,
        schedule.seed,
        schedule.perturbations.len()
    );
    let outcome = run_episode(&spec, &schedule);
    println!(
        "digest {:#018x}, {} commits, {} pushes / {} pops",
        outcome.digest, outcome.commits, outcome.pushes, outcome.pops
    );
    if outcome.ok() {
        println!("no violations");
        ExitCode::SUCCESS
    } else {
        for v in &outcome.violations {
            println!("VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}
