//! # dstm-verify — deterministic-simulation fuzzing and small-model checking
//!
//! Two complementary verification prongs over the same simulator and
//! protocol stack the experiments run on (nothing is mocked):
//!
//! * [`episode`] + [`fuzz`] — **DST fuzzing**. Each episode is a full
//!   harness cell executed on a [`dstm_sim::PerturbQueue`], which bends
//!   message delays and delivery tiebreaks *within the space of
//!   realizable executions* according to an explicit, replayable
//!   [`dstm_sim::Schedule`]. After the run, the whole oracle battery is
//!   applied: liveness, single-writable-copy, cache freshness, node-local
//!   structural invariants, telemetry reconciliation, and the offline
//!   trace `audit`/`analyze` checks. Failing schedules shrink (ddmin-lite)
//!   to a minimal reproducer blob that `dstm-verify replay` re-executes
//!   bit-identically.
//!
//! * [`check`] — **exhaustive small-model checking**. A 3-node, 2-object,
//!   2-deep-nesting model explored breadth-first over all message/timer
//!   delivery interleavings (per-channel FIFO preserved), deduplicated by
//!   time-abstract protocol fingerprints, asserting safety at every state
//!   and progress at every quiescent state.
//!
//! The `dstm-verify` binary fronts both: `fuzz`, `check`, and `replay`
//! subcommands (see `--help`).

pub mod check;
pub mod episode;
pub mod fuzz;

pub use check::{build_model, check_model, check_model_with, CheckReport, ModelCfg};
pub use episode::{run_episode, run_episode_mutated, EpisodeOutcome, EpisodeSpec};
pub use fuzz::{
    fuzz, fuzz_mutated, generate_schedule, parse_reproducer, reproducer_text, scheduler_from_name,
    scheduler_name, shrink_schedule, FuzzConfig, FuzzFailure, FuzzReport,
};
