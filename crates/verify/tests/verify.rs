//! End-to-end tests for the two verification prongs.
//!
//! The mutation test is the load-bearing one: it plants a fault (a
//! duplicated commit record) that only manifests under perturbed
//! schedules, and asserts the fuzz loop detects it, shrinks the
//! triggering schedule to a minimal reproducer, and that the reproducer
//! text round-trips.

use dstm_sim::{Perturb, Schedule};
use dstm_verify::{
    check_model, fuzz_mutated, parse_reproducer, reproducer_text, run_episode, CheckReport,
    EpisodeSpec, FuzzConfig, ModelCfg,
};
use hyflow_dstm::ProtoEvent;
use rts_core::SchedulerKind;

// -- prong 2: small-model checker ----------------------------------------

fn assert_exhausted(cfg: &ModelCfg, report: &CheckReport) {
    assert!(
        report.complete,
        "{:?}: exploration hit a cap (explored {})",
        cfg.scheduler, report.explored
    );
    assert!(report.explored > 0);
    assert!(report.terminals > 0, "no quiescent state ever reached");
    assert!(
        report.ok(),
        "{:?}: model checker found violations: {:#?}",
        cfg.scheduler,
        report.violations
    );
}

/// Every scheduler exhausts the default 3-node / 2-object / 2-deep model
/// with zero violations. (The same sweep the CI smoke job runs via the
/// binary; kept small enough for a debug-profile test run.)
#[test]
fn check_exhausts_default_model_for_all_schedulers() {
    for scheduler in [
        SchedulerKind::Tfa,
        SchedulerKind::TfaBackoff,
        SchedulerKind::Rts,
    ] {
        let cfg = ModelCfg {
            scheduler,
            ..ModelCfg::default()
        };
        let report = check_model(&cfg);
        assert_exhausted(&cfg, &report);
        assert!(
            report.max_aborts_seen > 0,
            "{scheduler:?}: no interleaving ever produced a conflict — \
             the model is not exercising contention"
        );
    }
}

/// The cache-off model has a much larger reachable space (every read is a
/// remote fetch, and fetch retries never revisit a state), so run it as a
/// bounded sweep: the oracles must stay clean over everything explored.
#[test]
fn bounded_cache_off_model_stays_clean() {
    let cfg = ModelCfg {
        scheduler: SchedulerKind::Rts,
        cache: false,
        max_states: 4_000,
        max_depth: 120,
        ..ModelCfg::default()
    };
    let report = check_model(&cfg);
    assert!(report.ok(), "violations: {:#?}", report.violations);
    assert!(report.explored > 0);
}

/// Parent-scope adjudication is unbounded by construction (retry loops
/// never revisit a state), so a capped run must terminate via the cap,
/// still violation-free, and must actually reach the scheduler: RTS parks
/// at least one requester.
#[test]
fn bounded_parent_scope_run_reaches_the_scheduler() {
    let cfg = ModelCfg {
        scheduler: SchedulerKind::Rts,
        parent_scope: true,
        max_states: 4_000,
        max_depth: 120,
        ..ModelCfg::default()
    };
    let report = check_model(&cfg);
    assert!(report.ok(), "violations: {:#?}", report.violations);
    assert!(!report.complete, "parent scope should hit the state cap");
    assert!(report.max_aborts_seen > 0);
    assert!(
        report.max_enqueued_seen > 0,
        "RTS never enqueued a requester under parent scope"
    );
}

// -- prong 1: fuzz episodes ----------------------------------------------

fn perturbed_schedule() -> Schedule {
    Schedule {
        seed: 0xD15C_0B01,
        perturbations: vec![
            Perturb::Delay {
                push_step: 7,
                extra_ns: 1_500_000,
            },
            Perturb::TieSwap {
                pop_step: 31,
                rank: 1,
            },
            Perturb::Delay {
                push_step: 64,
                extra_ns: 250_000,
            },
        ],
    }
}

/// Same schedule ⇒ bit-identical episode, down to the trace digest.
#[test]
fn episode_replay_is_bit_identical() {
    let spec = EpisodeSpec::default();
    let schedule = perturbed_schedule();
    let a = run_episode(&spec, &schedule);
    let b = run_episode(&spec, &schedule);
    assert!(a.ok(), "violations: {:#?}", a.violations);
    assert_eq!(
        a.digest, b.digest,
        "replay diverged under the same schedule"
    );
    assert_eq!(a.commits, b.commits);
    assert_eq!((a.pushes, a.pops), (b.pushes, b.pops));
}

/// Different perturbations really change behavior (otherwise the fuzzer
/// explores nothing).
#[test]
fn perturbations_change_the_episode_digest() {
    let spec = EpisodeSpec::default();
    let base = Schedule {
        seed: 0xD15C_0B01,
        perturbations: Vec::new(),
    };
    let a = run_episode(&spec, &base);
    let b = run_episode(&spec, &perturbed_schedule());
    assert!(a.ok() && b.ok());
    assert_ne!(
        a.digest, b.digest,
        "a delayed+reordered schedule produced the exact same trace"
    );
}

/// Mutation test: plant a fault that only fires under perturbed schedules
/// (a duplicated commit record in the trace) and assert the fuzz loop
/// catches it via the offline oracles and shrinks the triggering schedule
/// to a minimal reproducer.
#[test]
fn fuzz_catches_and_shrinks_a_planted_fault() {
    let spec = EpisodeSpec::default();
    let cfg = FuzzConfig {
        episodes: 50,
        ..FuzzConfig::default()
    };
    let report = fuzz_mutated(
        &spec,
        &cfg,
        &|schedule, trace| {
            // The "bug" triggers under any perturbed schedule: duplicate
            // the first commit record, which breaks both the audit span
            // pairing and the summary cross-check.
            if !schedule.perturbations.is_empty() {
                if let Some(pos) = trace
                    .records
                    .iter()
                    .position(|r| matches!(r.ev, ProtoEvent::TxCommit { .. }))
                {
                    let dup = trace.records[pos].clone();
                    trace.records.insert(pos, dup);
                }
            }
        },
        &mut |_, _| {},
    );
    let failure = report
        .failure
        .expect("fuzz never caught the planted duplicate-commit fault");
    assert!(
        !failure.violations.is_empty(),
        "failure reported without violations"
    );
    assert!(
        failure.shrunk.perturbations.len() <= 10,
        "shrinker left {} perturbations (wanted <= 10): {:?}",
        failure.shrunk.perturbations.len(),
        failure.shrunk.perturbations
    );
    // Any non-empty perturbation list triggers the fault, so ddmin must
    // reach the 1-event minimum.
    assert_eq!(
        failure.shrunk.perturbations.len(),
        1,
        "shrinker stopped early: {:?}",
        failure.shrunk.perturbations
    );
    // The shrunk schedule still reproduces standalone (what `replay` runs).
    let outcome = dstm_verify::run_episode_mutated(&spec, &failure.shrunk, &|schedule, trace| {
        if !schedule.perturbations.is_empty() {
            if let Some(pos) = trace
                .records
                .iter()
                .position(|r| matches!(r.ev, ProtoEvent::TxCommit { .. }))
            {
                let dup = trace.records[pos].clone();
                trace.records.insert(pos, dup);
            }
        }
    });
    assert!(!outcome.ok(), "shrunk schedule no longer reproduces");
}

/// The on-disk reproducer format round-trips spec + schedule exactly.
#[test]
fn reproducer_text_round_trips() {
    let spec = EpisodeSpec {
        benchmark: dstm_benchmarks::Benchmark::Vacation,
        scheduler: SchedulerKind::TfaBackoff,
        nodes: 6,
        txns: 5,
        cache: false,
        telemetry: true,
    };
    let schedule = perturbed_schedule();
    let text = reproducer_text(&spec, &schedule);
    let (spec2, schedule2) = parse_reproducer(&text).expect("reproducer must parse");
    assert_eq!(spec, spec2);
    assert_eq!(schedule, schedule2);
    // And a reproducer with comments / blank lines still parses.
    let commented = format!("# written by a test\n\n{text}\n# trailing comment\n");
    let (spec3, schedule3) = parse_reproducer(&commented).expect("comments must be tolerated");
    assert_eq!(spec, spec3);
    assert_eq!(schedule, schedule3);
}

/// A clean fuzz sweep over a non-default cell stays clean (the CI smoke
/// configuration, miniaturized).
#[test]
fn short_clean_fuzz_sweep() {
    let spec = EpisodeSpec {
        scheduler: SchedulerKind::Tfa,
        ..EpisodeSpec::default()
    };
    let cfg = FuzzConfig {
        episodes: 30,
        ..FuzzConfig::default()
    };
    let report = dstm_verify::fuzz(&spec, &cfg, |_, _| {});
    assert!(
        report.failure.is_none(),
        "clean protocol flagged: {:#?}",
        report.failure.map(|f| f.violations)
    );
    assert_eq!(report.episodes_run, 30);
}
