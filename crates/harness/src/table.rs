//! Plain-text table rendering for the regenerated paper artifacts.

use std::fmt::Write as _;

/// A column-aligned text table (Table I, Fig. 6 summaries, ablations).
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", c, w = widths[i]);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as a Markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as CSV.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// An x-axis series plot rendered as text (Figs. 4–5: throughput vs nodes,
/// one column per scheduler).
#[derive(Clone, Debug)]
pub struct SeriesTable {
    pub title: String,
    pub x_label: String,
    pub series_labels: Vec<String>,
    /// (x, y per series)
    pub points: Vec<(u64, Vec<f64>)>,
}

impl SeriesTable {
    pub fn new<S: Into<String>>(title: S, x_label: S, series_labels: Vec<S>) -> Self {
        SeriesTable {
            title: title.into(),
            x_label: x_label.into(),
            series_labels: series_labels.into_iter().map(Into::into).collect(),
            points: Vec::new(),
        }
    }

    pub fn point(&mut self, x: u64, ys: Vec<f64>) -> &mut Self {
        assert_eq!(ys.len(), self.series_labels.len());
        self.points.push((x, ys));
        self
    }

    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            std::iter::once(self.x_label.clone())
                .chain(self.series_labels.iter().cloned())
                .collect(),
        );
        for (x, ys) in &self.points {
            let mut row = vec![x.to_string()];
            row.extend(ys.iter().map(|y| format!("{y:.2}")));
            t.row(row);
        }
        format!("{}\n{}", self.title, t.render())
    }

    /// The y values of one series by label.
    pub fn series(&self, label: &str) -> Vec<f64> {
        let idx = self
            .series_labels
            .iter()
            .position(|l| l == label)
            .unwrap_or_else(|| panic!("no series {label}"));
        self.points.iter().map(|(_, ys)| ys[idx]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["Bench", "RTS", "TFA"]);
        t.row(vec!["Vacation", "25.6%", "55.5%"]);
        t.row(vec!["DHT", "12.8%", "31.3%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Bench"));
        assert!(lines[2].starts_with("Vacation"));
        // Columns aligned: "RTS" column starts at same offset everywhere.
        let col = lines[0].find("RTS").unwrap();
        assert_eq!(&lines[2][col..col + 5], "25.6%");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn markdown_and_csv() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        assert!(t.render_markdown().contains("| a | b |"));
        assert_eq!(t.render_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn series_table() {
        let mut s = SeriesTable::new("Bank low", "nodes", vec!["RTS", "TFA"]);
        s.point(10, vec![30.0, 20.0]);
        s.point(20, vec![28.0, 17.0]);
        assert_eq!(s.series("RTS"), vec![30.0, 28.0]);
        let text = s.render();
        assert!(text.contains("Bank low"));
        assert!(text.contains("28.00"));
    }
}
