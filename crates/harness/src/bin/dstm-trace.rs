//! `dstm-trace` — offline audit and conversion of protocol-event traces.
//!
//! ```text
//! dstm-trace audit   <trace.jsonl>            # check invariants; exit 1 on violation
//! dstm-trace stats   <trace.jsonl>            # record census (split per traced run)
//! dstm-trace analyze <trace.jsonl> [--json] [--epoch-ns N]
//!                                             # contention analytics: hot objects,
//!                                             # abort chains, throughput knee;
//!                                             # exit 1 on ledger mismatch
//! dstm-trace chrome  <trace.jsonl> [out.json] # convert to Chrome trace_event JSON
//! dstm-trace demo    [out.jsonl]              # record the Fig. 3 collision, write JSONL
//! ```
//!
//! Traces are the JSONL streams written by `dstm-sweep --trace` (or any
//! caller of `TraceLog::to_jsonl`). `audit` replays the trace and checks
//! what the live counters cannot: every commit's read/write footprint is
//! consistent with a serial order, every queue-timeout abort was actually
//! enqueued, and the Table-I nested-abort split recomputed from spans
//! matches the counter-based `RunSummary` exactly. `analyze` builds the
//! object-conflict picture from abort attribution — which objects caused
//! the aborts, which transactions discarded whose work, where throughput
//! knees over — and reconciles the event-derived wasted-work ledger
//! against the live counters.

use dstm_harness::experiments::scenarios::run_collision_traced;
use dstm_harness::traceio::{analyze, audit, to_chrome_trace, trace_stats};
use hyflow_dstm::TraceLog;
use rts_core::SchedulerKind;
use std::process::ExitCode;

fn load(path: &str) -> Result<TraceLog, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    TraceLog::parse_jsonl(&text)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dstm-trace audit   <trace.jsonl>\n  dstm-trace stats   <trace.jsonl>\n  \
         dstm-trace analyze <trace.jsonl> [--json] [--epoch-ns N]\n  \
         dstm-trace chrome  <trace.jsonl> [out.json]\n  dstm-trace demo    [out.jsonl]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (Some(cmd), file) = (args.get(1), args.get(2)) else {
        return usage();
    };
    match (cmd.as_str(), file) {
        ("audit", Some(path)) => match load(path) {
            Ok(log) => {
                let report = audit(&log);
                print!("{}", report.render());
                if report.ok() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        },
        ("stats", Some(path)) => match load(path) {
            Ok(log) => {
                print!("{}", trace_stats(&log));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        },
        ("analyze", Some(path)) => {
            let mut json = false;
            let mut epoch_ns = 0u64; // 0 = analyzer default (50 ms)
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--json" => json = true,
                    "--epoch-ns" => match rest.next().map(|v| v.parse::<u64>()) {
                        Some(Ok(n)) => epoch_ns = n,
                        _ => return usage(),
                    },
                    _ => return usage(),
                }
            }
            match load(path) {
                Ok(log) => {
                    let report = analyze(&log, epoch_ns);
                    if json {
                        print!("{}", report.to_json());
                    } else {
                        print!("{}", report.render());
                    }
                    if report.ok() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(2)
                }
            }
        }
        ("chrome", Some(path)) => {
            let out_path = args
                .get(3)
                .cloned()
                .unwrap_or_else(|| format!("{}.chrome.json", path.trim_end_matches(".jsonl")));
            match load(path) {
                Ok(log) => match std::fs::write(&out_path, to_chrome_trace(&log)) {
                    Ok(()) => {
                        println!("[written to {out_path} — open in chrome://tracing or Perfetto]");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("cannot write {out_path}: {e}");
                        ExitCode::from(2)
                    }
                },
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(2)
                }
            }
        }
        ("demo", _) => {
            let out_path = args
                .get(2)
                .map(String::as_str)
                .unwrap_or("fig3_trace.jsonl");
            let (result, trace) = run_collision_traced(SchedulerKind::Rts, 6, 2);
            assert!(result.all_done, "demo scenario stalled");
            match std::fs::write(out_path, trace.to_jsonl()) {
                Ok(()) => {
                    println!(
                        "[Fig. 3 collision: {} records, {} commits — written to {out_path}]",
                        trace.records.len(),
                        result.metrics.merged.commits
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot write {out_path}: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
