//! `dstm-sweep` — run one benchmark × scheduler grid from the command line.
//!
//! ```text
//! dstm-sweep [nodes] [txns_per_node] [benchmark]
//! dstm-sweep kernel [out.json]
//! ```
//!
//! The default mode prints throughput, nested-abort rate, and speedups for
//! every (benchmark, contention, scheduler) cell — useful for quick shape
//! checks without the full figure benches.
//!
//! `kernel` mode times the host wall-clock of every Fig. 4 sweep cell under
//! both event-queue backends (the simulated results are bit-identical, so
//! this isolates kernel cost) and writes a machine-readable JSON report,
//! by default `BENCH_kernel.json`. Scale via `DSTM_SCALE=smoke|quick|full`.

use dstm_benchmarks::Benchmark;
use dstm_harness::experiments::Scale;
use dstm_harness::runner::{run_cell, Cell};
use hyflow_dstm::QueueBackend;
use rts_core::SchedulerKind;
use std::fmt::Write as _;

/// Wall-clock every Fig. 4 cell (six benchmarks × node counts × three
/// schedulers at 90% reads) under each queue backend, sequentially so the
/// timings are not polluted by sibling cells.
fn kernel_report(out_path: &str) {
    let scale = Scale::from_env();
    let schedulers = [
        SchedulerKind::Rts,
        SchedulerKind::Tfa,
        SchedulerKind::TfaBackoff,
    ];
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        for &nodes in &scale.node_counts {
            for s in schedulers {
                for backend in [QueueBackend::BinaryHeap, QueueBackend::Calendar] {
                    let cell = Cell::new(b, s, nodes, 0.9)
                        .with_txns(scale.txns_per_node)
                        .with_queue_backend(backend);
                    let t0 = std::time::Instant::now();
                    let r = run_cell(cell);
                    let wall = t0.elapsed();
                    assert!(r.completed, "{} under {s:?} stalled", b.label());
                    let wall_ns = wall.as_nanos() as u64;
                    let events = r.metrics.messages;
                    println!(
                        "{:<12} n={:<3} {:<12} {:<9} {:>9.1} ms  {:>7.0} ns/event",
                        b.label(),
                        nodes,
                        s.label(),
                        backend.label(),
                        wall_ns as f64 / 1e6,
                        wall_ns as f64 / events.max(1) as f64,
                    );
                    rows.push((b, nodes, s, backend, wall_ns, events, r));
                }
            }
        }
    }

    let mut json = String::from("{\n  \"unit\": \"ns\",\n  \"cells\": [\n");
    for (i, (b, nodes, s, backend, wall_ns, events, r)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"benchmark\": \"{}\", \"nodes\": {}, \"scheduler\": \"{}\", \
             \"backend\": \"{}\", \"wall_ns\": {}, \"events\": {}, \
             \"ns_per_event\": {:.1}, \"commits\": {}}}{}",
            b.label(),
            nodes,
            s.label(),
            backend.label(),
            wall_ns,
            events,
            *wall_ns as f64 / (*events).max(1) as f64,
            r.metrics.merged.commits,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("\n[written to {out_path}]"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("kernel") {
        let out = args
            .get(2)
            .map(String::as_str)
            .unwrap_or("BENCH_kernel.json");
        kernel_report(out);
        return;
    }
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let txns: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
    let only: Option<Benchmark> = args.get(3).and_then(|s| Benchmark::from_name(s));

    println!("dstm-sweep: {nodes} nodes, {txns} txns/node, delays 1-50 ms\n");
    for b in Benchmark::ALL {
        if only.is_some_and(|o| o != b) {
            continue;
        }
        for read_ratio in [0.9, 0.1] {
            let contention = if read_ratio > 0.5 { "low " } else { "high" };
            let mut tputs = Vec::new();
            let mut line = format!("{:<12} {contention}", b.label());
            for s in [
                SchedulerKind::Rts,
                SchedulerKind::Tfa,
                SchedulerKind::TfaBackoff,
            ] {
                let r = run_cell(Cell::new(b, s, nodes, read_ratio).with_txns(txns));
                assert!(r.completed, "{} under {s:?} stalled", b.label());
                tputs.push(r.throughput());
                line += &format!(
                    "  {}={:8.2} tx/s (nested {:.2})",
                    s.label(),
                    r.throughput(),
                    r.nested_abort_rate()
                );
            }
            line += &format!(
                "  | RTS speedup: {:.2}x vs TFA, {:.2}x vs TFA+Backoff",
                tputs[0] / tputs[1],
                tputs[0] / tputs[2]
            );
            println!("{line}");
        }
    }
}
