//! `dstm-sweep` — run one benchmark × scheduler grid from the command line.
//!
//! ```text
//! dstm-sweep [nodes] [txns_per_node] [benchmark] [--hist-out out.json]
//! dstm-sweep scenario [rts|tfa|tfa-backoff] [writers] [readers]
//! dstm-sweep kernel [out.json]
//! ```
//!
//! All modes accept `--trace <path>` / `--trace-format jsonl|chrome` (or the
//! `DSTM_TRACE` / `DSTM_TRACE_FORMAT` environment variables) to record
//! protocol events: `scenario` traces the whole scripted run, the default
//! sweep traces its first RTS low-contention cell as a representative
//! sample, and `kernel` ignores tracing (it measures the disabled path).
//!
//! The default mode prints throughput, nested-abort rate, and speedups for
//! every (benchmark, contention, scheduler) cell and writes the latency
//! histogram summaries (commit latency, queue wait, fetch RTT, retries) to
//! `BENCH_trace.json` — override with `--hist-out`.
//!
//! `scenario` mode replays the Fig. 2/3 single-object collision under the
//! given scheduler (default RTS, 6 writers, 2 readers); with `--trace` the
//! JSONL it writes is exactly what `dstm-trace audit` consumes.
//!
//! `kernel` mode times the host wall-clock of every Fig. 4 sweep cell under
//! both event-queue backends (the simulated results are bit-identical, so
//! this isolates kernel cost) and writes a machine-readable JSON report,
//! by default `BENCH_kernel.json`. Each cell carries a `"trace"` field:
//! `"off"` rows are the production path (tracing compiled in, disabled) and
//! `"on"` rows rerun the bank benchmark with event recording enabled, so
//! the sidecar documents both the zero-cost claim and the enabled-path
//! price. Scale via `DSTM_SCALE=smoke|quick|full`.

use dstm_benchmarks::Benchmark;
use dstm_harness::experiments::scenarios::{render, run_collision_traced};
use dstm_harness::experiments::Scale;
use dstm_harness::runner::{run_cell, run_cell_traced, Cell};
use dstm_harness::traceio::to_chrome_trace;
use hyflow_dstm::{HistSummary, QueueBackend, TraceLog};
use rts_core::SchedulerKind;
use std::fmt::Write as _;

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

impl TraceFormat {
    fn parse(s: &str) -> Option<TraceFormat> {
        match s {
            "jsonl" => Some(TraceFormat::Jsonl),
            "chrome" => Some(TraceFormat::Chrome),
            _ => None,
        }
    }
}

struct TraceOpts {
    path: Option<String>,
    format: TraceFormat,
}

impl TraceOpts {
    fn write(&self, trace: &TraceLog) {
        let Some(path) = &self.path else { return };
        let body = match self.format {
            TraceFormat::Jsonl => trace.to_jsonl(),
            TraceFormat::Chrome => to_chrome_trace(trace),
        };
        match std::fs::write(path, body) {
            Ok(()) => println!("[trace: {} records written to {path}]", trace.records.len()),
            Err(e) => eprintln!("could not write trace to {path}: {e}"),
        }
    }
}

/// Pull `--trace`, `--trace-format`, and `--hist-out` (with `DSTM_TRACE*`
/// env fallbacks) out of the argument list; the rest stay positional.
fn split_flags(args: &[String]) -> (Vec<String>, TraceOpts, Option<String>) {
    let mut positional = Vec::new();
    let mut trace_path = std::env::var("DSTM_TRACE").ok().filter(|s| !s.is_empty());
    let mut format_arg = std::env::var("DSTM_TRACE_FORMAT").ok();
    let mut hist_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => trace_path = it.next().cloned(),
            "--trace-format" => format_arg = it.next().cloned(),
            "--hist-out" => hist_out = it.next().cloned(),
            _ => positional.push(a.clone()),
        }
    }
    let format = match format_arg.as_deref() {
        None => TraceFormat::Jsonl,
        Some(s) => TraceFormat::parse(s).unwrap_or_else(|| {
            eprintln!("unknown trace format {s:?} (expected jsonl|chrome), using jsonl");
            TraceFormat::Jsonl
        }),
    };
    (
        positional,
        TraceOpts {
            path: trace_path,
            format,
        },
        hist_out,
    )
}

fn scheduler_from_name(s: &str) -> Option<SchedulerKind> {
    match s.to_ascii_lowercase().as_str() {
        "rts" => Some(SchedulerKind::Rts),
        "tfa" => Some(SchedulerKind::Tfa),
        "tfa-backoff" | "tfab" => Some(SchedulerKind::TfaBackoff),
        _ => None,
    }
}

/// Wall-clock every Fig. 4 cell (six benchmarks × node counts × three
/// schedulers at 90% reads) under each queue backend, sequentially so the
/// timings are not polluted by sibling cells. Bank cells are rerun with
/// protocol tracing enabled (`"trace": "on"` rows) to record the
/// enabled-path overhead next to the disabled-path baseline.
fn kernel_report(out_path: &str) {
    let scale = Scale::from_env();
    let schedulers = [
        SchedulerKind::Rts,
        SchedulerKind::Tfa,
        SchedulerKind::TfaBackoff,
    ];
    let mut rows = Vec::new();
    let mut time_cell = |cell: Cell, trace: bool| {
        let (b, nodes, s, backend) = (
            cell.benchmark,
            cell.params.nodes,
            cell.scheduler,
            cell.dstm.queue_backend,
        );
        let t0 = std::time::Instant::now();
        let r = if trace {
            run_cell_traced(cell).0
        } else {
            run_cell(cell)
        };
        let wall = t0.elapsed();
        assert!(r.completed, "{} under {s:?} stalled", b.label());
        let wall_ns = wall.as_nanos() as u64;
        let events = r.metrics.messages;
        println!(
            "{:<12} n={:<3} {:<12} {:<9} trace={:<3} {:>9.1} ms  {:>7.0} ns/event",
            b.label(),
            nodes,
            s.label(),
            backend.label(),
            if trace { "on" } else { "off" },
            wall_ns as f64 / 1e6,
            wall_ns as f64 / events.max(1) as f64,
        );
        rows.push((b, nodes, s, backend, trace, wall_ns, events, r));
    };
    for b in Benchmark::ALL {
        for &nodes in &scale.node_counts {
            for s in schedulers {
                for backend in [QueueBackend::BinaryHeap, QueueBackend::Calendar] {
                    let cell = Cell::new(b, s, nodes, 0.9)
                        .with_txns(scale.txns_per_node)
                        .with_queue_backend(backend);
                    time_cell(cell, false);
                }
            }
        }
    }
    // Enabled-path rows: bank only, binary heap, every node count.
    for &nodes in &scale.node_counts {
        for s in schedulers {
            let cell = Cell::new(Benchmark::Bank, s, nodes, 0.9).with_txns(scale.txns_per_node);
            time_cell(cell, true);
        }
    }

    let mut json = String::from("{\n  \"unit\": \"ns\",\n  \"cells\": [\n");
    for (i, (b, nodes, s, backend, trace, wall_ns, events, r)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"benchmark\": \"{}\", \"nodes\": {}, \"scheduler\": \"{}\", \
             \"backend\": \"{}\", \"trace\": \"{}\", \"wall_ns\": {}, \"events\": {}, \
             \"ns_per_event\": {:.1}, \"commits\": {}}}{}",
            b.label(),
            nodes,
            s.label(),
            backend.label(),
            if *trace { "on" } else { "off" },
            wall_ns,
            events,
            *wall_ns as f64 / (*events).max(1) as f64,
            r.metrics.merged.commits,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("\n[written to {out_path}]"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}

/// Replay the Fig. 2/3 collision under one scheduler with tracing on.
fn scenario_mode(positional: &[String], topts: &TraceOpts) {
    let scheduler = positional
        .first()
        .map(|s| {
            scheduler_from_name(s)
                .unwrap_or_else(|| panic!("unknown scheduler {s:?} (rts|tfa|tfa-backoff)"))
        })
        .unwrap_or(SchedulerKind::Rts);
    let writers: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let readers: usize = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let (result, trace) = run_collision_traced(scheduler, writers, readers);
    assert!(result.all_done, "scenario stalled");
    let title = format!(
        "collision scenario: {} writers + {} readers under {}",
        writers,
        readers,
        scheduler.label()
    );
    print!("{}", render(&title, &result));
    for (name, h) in result.metrics.merged.hist_summaries() {
        println!(
            "{name:<22} n={:<5} mean={:<12.0} p50={:<10} p95={:<10} p99={}",
            h.count, h.mean, h.p50, h.p95, h.p99
        );
    }
    topts.write(&trace);
}

type HistRow = (
    Benchmark,
    f64,
    SchedulerKind,
    [(&'static str, HistSummary); 4],
);

fn hist_sidecar(out_path: &str, rows: &[HistRow]) {
    let mut json = String::from("{\n  \"unit\": \"ns\",\n  \"cells\": [\n");
    for (i, (b, read_ratio, s, summaries)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"benchmark\": \"{}\", \"read_ratio\": {}, \"scheduler\": \"{}\"",
            b.label(),
            read_ratio,
            s.label()
        );
        for (name, h) in summaries {
            let _ = write!(
                json,
                ", \"{name}\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.count, h.mean, h.p50, h.p95, h.p99
            );
        }
        let _ = writeln!(json, "}}{}", if i + 1 == rows.len() { "" } else { "," });
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("\n[histogram summaries written to {out_path}]"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, topts, hist_out) = split_flags(&args);
    match positional.first().map(String::as_str) {
        Some("kernel") => {
            let out = positional
                .get(1)
                .map(String::as_str)
                .unwrap_or("BENCH_kernel.json");
            kernel_report(out);
            return;
        }
        Some("scenario") => {
            scenario_mode(&positional[1..], &topts);
            return;
        }
        _ => {}
    }
    let nodes: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let txns: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let only: Option<Benchmark> = positional.get(2).and_then(|s| Benchmark::from_name(s));

    println!("dstm-sweep: {nodes} nodes, {txns} txns/node, delays 1-50 ms\n");
    let mut hist_rows = Vec::new();
    let mut trace_opts = Some(&topts); // first RTS low-contention cell only
    for b in Benchmark::ALL {
        if only.is_some_and(|o| o != b) {
            continue;
        }
        for read_ratio in [0.9, 0.1] {
            let contention = if read_ratio > 0.5 { "low " } else { "high" };
            let mut tputs = Vec::new();
            let mut line = format!("{:<12} {contention}", b.label());
            for s in [
                SchedulerKind::Rts,
                SchedulerKind::Tfa,
                SchedulerKind::TfaBackoff,
            ] {
                let cell = Cell::new(b, s, nodes, read_ratio).with_txns(txns);
                let r = if s == SchedulerKind::Rts && read_ratio > 0.5 {
                    if let Some(t) = trace_opts.take().filter(|t| t.path.is_some()) {
                        let (r, trace) = run_cell_traced(cell);
                        t.write(&trace);
                        r
                    } else {
                        run_cell(cell)
                    }
                } else {
                    run_cell(cell)
                };
                assert!(r.completed, "{} under {s:?} stalled", b.label());
                tputs.push(r.throughput());
                line += &format!(
                    "  {}={:8.2} tx/s (nested {:.2})",
                    s.label(),
                    r.throughput(),
                    r.nested_abort_rate()
                );
                let summaries = r.metrics.merged.hist_summaries();
                hist_rows.push((b, read_ratio, s, summaries));
            }
            line += &format!(
                "  | RTS speedup: {:.2}x vs TFA, {:.2}x vs TFA+Backoff",
                tputs[0] / tputs[1],
                tputs[0] / tputs[2]
            );
            println!("{line}");
        }
    }
    hist_sidecar(
        hist_out.as_deref().unwrap_or("BENCH_trace.json"),
        &hist_rows,
    );
}
