//! `dstm-sweep` — run one benchmark × scheduler grid from the command line.
//!
//! ```text
//! dstm-sweep [nodes] [txns_per_node] [benchmark]
//! ```
//!
//! Prints throughput, nested-abort rate, and speedups for every
//! (benchmark, contention, scheduler) cell. Useful for quick shape checks
//! without the full figure benches.

use dstm_benchmarks::Benchmark;
use dstm_harness::runner::{run_cell, Cell};
use rts_core::SchedulerKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let txns: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
    let only: Option<Benchmark> = args.get(3).and_then(|s| Benchmark::from_name(s));

    println!("dstm-sweep: {nodes} nodes, {txns} txns/node, delays 1-50 ms\n");
    for b in Benchmark::ALL {
        if only.is_some_and(|o| o != b) {
            continue;
        }
        for read_ratio in [0.9, 0.1] {
            let contention = if read_ratio > 0.5 { "low " } else { "high" };
            let mut tputs = Vec::new();
            let mut line = format!("{:<12} {contention}", b.label());
            for s in [
                SchedulerKind::Rts,
                SchedulerKind::Tfa,
                SchedulerKind::TfaBackoff,
            ] {
                let r = run_cell(Cell::new(b, s, nodes, read_ratio).with_txns(txns));
                assert!(r.completed, "{} under {s:?} stalled", b.label());
                tputs.push(r.throughput());
                line += &format!(
                    "  {}={:8.2} tx/s (nested {:.2})",
                    s.label(),
                    r.throughput(),
                    r.nested_abort_rate()
                );
            }
            line += &format!(
                "  | RTS speedup: {:.2}x vs TFA, {:.2}x vs TFA+Backoff",
                tputs[0] / tputs[1],
                tputs[0] / tputs[2]
            );
            println!("{line}");
        }
    }
}
